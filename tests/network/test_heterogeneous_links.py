"""Tests for per-rack uplink overrides in the fabric."""

import pytest

from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.errors import ConfigurationError
from repro.network.links import FabricModel, gbps_to_bytes_per_s


class TestProfileOverrides:
    def test_uplink_for_default(self):
        bw = BandwidthProfile(rack_uplink_gbps=2.0)
        assert bw.uplink_for(0) == 2.0
        assert bw.uplink_for(7) == 2.0

    def test_uplink_for_override(self):
        bw = BandwidthProfile(
            rack_uplink_gbps=1.0, per_rack_uplink_gbps=(1.0, 0.25, 1.0)
        )
        assert bw.uplink_for(1) == 0.25
        assert bw.uplink_for(2) == 1.0
        # Racks beyond the override tuple fall back to the default.
        assert bw.uplink_for(5) == 1.0

    def test_nonpositive_override_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthProfile(per_rack_uplink_gbps=(1.0, 0.0))

    def test_list_coerced_to_tuple(self):
        bw = BandwidthProfile(per_rack_uplink_gbps=[2.0, 3.0])
        assert bw.per_rack_uplink_gbps == (2.0, 3.0)


class TestFabricHeterogeneity:
    def test_fabric_uses_overrides(self):
        topo = ClusterTopology.from_rack_sizes(
            [2, 2, 2],
            bandwidth=BandwidthProfile(
                node_nic_gbps=1.0,
                rack_uplink_gbps=1.0,
                per_rack_uplink_gbps=(1.0, 0.25, 0.5),
            ),
        )
        fabric = FabricModel(topo)
        assert fabric.rack_uplink(0).capacity == gbps_to_bytes_per_s(1.0)
        assert fabric.rack_uplink(1).capacity == gbps_to_bytes_per_s(0.25)
        assert fabric.rack_uplink(2).capacity == gbps_to_bytes_per_s(0.5)

    def test_slow_uplink_slows_cross_rack_flow(self):
        from repro.network.flow import flow_task
        from repro.network.simulator import FluidNetworkSimulator

        topo = ClusterTopology.from_rack_sizes(
            [2, 2],
            bandwidth=BandwidthProfile(
                node_nic_gbps=1.0, per_rack_uplink_gbps=(0.25, 1.0)
            ),
        )
        fabric = FabricModel(topo)
        sim = FluidNetworkSimulator(fabric)
        nic = gbps_to_bytes_per_s(1.0)
        # Out of the slow rack: bottleneck is the 0.25 Gb/s uplink.
        out_slow = sim.run([flow_task("a", fabric.path(0, 2), nic)])
        assert out_slow.makespan == pytest.approx(4.0)
        # Into the slow rack: its downlink is also 0.25 Gb/s.
        into_slow = sim.run([flow_task("b", fabric.path(2, 0), nic)])
        assert into_slow.makespan == pytest.approx(4.0)
