"""Property test: batched tie-freezing water-filling equals the serial one.

``maxmin_rates`` now freezes *all* links tied at the bottleneck share in
one iteration.  For a tied link, removing another tied link's frozen
flows scales its remaining capacity and its unfrozen-flow count by the
same fair share, so its own share is unchanged — the batched pass is
mathematically identical to one-at-a-time freezing.  This test pins the
implementations together within floating-point tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.simulator import maxmin_rates


def reference_maxmin_rates(incidence, capacities):
    """The pre-optimisation loop: freeze one bottleneck link per pass."""
    num_links, num_flows = incidence.shape
    if num_flows == 0:
        return np.zeros(0)
    rates = np.zeros(num_flows)
    unfrozen = np.ones(num_flows, dtype=bool)
    remaining = capacities.astype(np.float64).copy()
    inc = incidence.astype(np.float64)
    for _ in range(num_links + 1):
        counts = inc @ unfrozen
        contended = counts > 0
        if not contended.any():
            break
        share = np.full(num_links, np.inf)
        share[contended] = remaining[contended] / counts[contended]
        bottleneck = int(np.argmin(share))
        r = max(share[bottleneck], 0.0)
        to_freeze = incidence[bottleneck] & unfrozen
        rates[to_freeze] = r
        remaining -= r * (inc[:, to_freeze].sum(axis=1))
        np.maximum(remaining, 0.0, out=remaining)
        unfrozen &= ~to_freeze
        if not unfrozen.any():
            break
    return rates


@st.composite
def fabric_case(draw):
    num_links = draw(st.integers(1, 8))
    num_flows = draw(st.integers(0, 10))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    incidence = rng.random((num_links, num_flows)) < draw(
        st.floats(0.2, 0.9)
    )
    # Every flow must traverse at least one link.
    for f in range(num_flows):
        if not incidence[:, f].any():
            incidence[rng.integers(0, num_links), f] = True
    if draw(st.booleans()):
        # Integer capacities (often equal) force exact share ties — the
        # case where batched freezing must coincide with serial freezing.
        capacities = rng.integers(1, 4, num_links).astype(np.float64)
    else:
        capacities = rng.uniform(0.5, 100.0, num_links)
    return incidence, capacities


class TestMaxminEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(case=fabric_case())
    def test_matches_serial_reference(self, case):
        incidence, capacities = case
        got = maxmin_rates(incidence, capacities)
        want = reference_maxmin_rates(incidence, capacities)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_exact_tie_all_links_frozen_in_one_shape(self):
        """Two identical links, disjoint flows: both freeze at 0.5."""
        incidence = np.array([[True, False], [False, True]])
        capacities = np.array([0.5, 0.5])
        rates = maxmin_rates(incidence, capacities)
        np.testing.assert_allclose(rates, [0.5, 0.5])
