"""Tests for the fabric link model."""

import pytest

from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.errors import FlowError
from repro.network.links import FabricModel, gbps_to_bytes_per_s


@pytest.fixture
def fabric():
    topo = ClusterTopology.from_rack_sizes(
        [2, 2], bandwidth=BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=0.5)
    )
    return FabricModel(topo)


class TestConversion:
    def test_gbps_to_bytes(self):
        assert gbps_to_bytes_per_s(1.0) == 125e6
        assert gbps_to_bytes_per_s(8.0) == 1e9


class TestLinks:
    def test_link_count_without_core(self, fabric):
        # 4 nodes * 2 + 2 racks * 2, infinite core omitted.
        assert fabric.num_links == 12

    def test_core_link_when_finite(self):
        topo = ClusterTopology.from_rack_sizes(
            [2, 2], bandwidth=BandwidthProfile(core_gbps=10.0)
        )
        fabric = FabricModel(topo)
        assert fabric.num_links == 13
        assert any(l.name == "core" for l in fabric.links)

    def test_capacities_match_profile(self, fabric):
        uplink = fabric.rack_uplink(0)
        assert uplink.capacity == gbps_to_bytes_per_s(0.5)
        down = fabric.node_downlink(3)
        assert down.capacity == gbps_to_bytes_per_s(1.0)

    def test_link_names_unique(self, fabric):
        names = [l.name for l in fabric.links]
        assert len(names) == len(set(names))


class TestPaths:
    def test_intra_rack_path(self, fabric):
        path = fabric.path(0, 1)
        assert len(path) == 2
        names = [fabric.link(l).name for l in path]
        assert names == ["A1.n0.up", "A1.n1.down"]

    def test_cross_rack_path(self, fabric):
        path = fabric.path(0, 3)
        names = [fabric.link(l).name for l in path]
        assert names == ["A1.n0.up", "A1.uplink", "A2.downlink", "A2.n1.down"]

    def test_cross_rack_path_with_core(self):
        topo = ClusterTopology.from_rack_sizes(
            [1, 1], bandwidth=BandwidthProfile(core_gbps=4.0)
        )
        fabric = FabricModel(topo)
        names = [fabric.link(l).name for l in fabric.path(0, 1)]
        assert "core" in names

    def test_self_flow_rejected(self, fabric):
        with pytest.raises(FlowError):
            fabric.path(2, 2)
