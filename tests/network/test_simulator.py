"""Tests for the max-min fair fluid simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.errors import FlowError, SimulationError
from repro.network.flow import SimTask, flow_task, serial_task
from repro.network.links import FabricModel
from repro.network.simulator import FluidNetworkSimulator, maxmin_rates


@pytest.fixture
def fabric():
    topo = ClusterTopology.from_rack_sizes(
        [2, 2], bandwidth=BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=1.0)
    )
    return FabricModel(topo)


NIC = 125e6  # bytes/s at 1 Gb/s


class TestTaskValidation:
    def test_task_must_be_flow_xor_serial(self):
        with pytest.raises(FlowError):
            SimTask(task_id="x")
        with pytest.raises(FlowError):
            SimTask(task_id="x", path=(0,), size_bytes=1.0, resource=("cpu", 0))

    def test_flow_needs_positive_size(self):
        with pytest.raises(FlowError):
            flow_task("f", [0], 0)

    def test_serial_rejects_negative_duration(self):
        with pytest.raises(FlowError):
            serial_task("s", ("cpu", 0), -1.0)


class TestMaxMin:
    def test_single_flow_gets_full_capacity(self):
        inc = np.array([[True]])
        rates = maxmin_rates(inc, np.array([100.0]))
        assert rates[0] == 100.0

    def test_two_flows_share_equally(self):
        inc = np.array([[True, True]])
        rates = maxmin_rates(inc, np.array([100.0]))
        assert list(rates) == [50.0, 50.0]

    def test_classic_maxmin_example(self):
        """Two links: A carries f1, f2; B carries f2, f3.  cap(A)=100,
        cap(B)=300 -> f1=f2=50, f3=250."""
        inc = np.array(
            [
                [True, True, False],
                [False, True, True],
            ]
        )
        rates = maxmin_rates(inc, np.array([100.0, 300.0]))
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)
        assert rates[2] == pytest.approx(250.0)

    def test_empty(self):
        assert maxmin_rates(np.zeros((2, 0), dtype=bool), np.ones(2)).size == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 5), st.integers(0, 1000))
    def test_rates_respect_capacities(self, nlinks, nflows, seed):
        rng = np.random.default_rng(seed)
        inc = rng.random((nlinks, nflows)) < 0.6
        # every flow must traverse at least one link
        for f in range(nflows):
            if not inc[:, f].any():
                inc[rng.integers(nlinks), f] = True
        caps = rng.uniform(1.0, 100.0, nlinks)
        rates = maxmin_rates(inc, caps)
        loads = inc @ rates
        assert (loads <= caps + 1e-6).all()
        assert (rates > 0).all()


class TestSimulation:
    def test_single_flow_duration(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        result = sim.run([flow_task("f", fabric.path(0, 1), NIC)])
        assert result.makespan == pytest.approx(1.0)
        assert result.finish("f") == pytest.approx(1.0)

    def test_two_flows_into_one_sink_serialise(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            flow_task("a", fabric.path(0, 1), NIC),
            flow_task("b", fabric.path(2, 1), NIC),
        ]
        result = sim.run(tasks)
        # Both share node 1's downlink: 2 * NIC bytes through NIC speed.
        assert result.makespan == pytest.approx(2.0)

    def test_disjoint_flows_run_in_parallel(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            flow_task("a", fabric.path(0, 1), NIC),
            flow_task("b", fabric.path(2, 3), NIC),
        ]
        assert sim.run(tasks).makespan == pytest.approx(1.0)

    def test_dependency_serialises(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            flow_task("a", fabric.path(0, 1), NIC),
            flow_task("b", fabric.path(0, 1), NIC, deps=["a"]),
        ]
        result = sim.run(tasks)
        assert result.finish("a") == pytest.approx(1.0)
        assert result.finish("b") == pytest.approx(2.0)

    def test_serial_resource_fifo(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            serial_task("c1", ("cpu", 0), 1.0),
            serial_task("c2", ("cpu", 0), 1.0),
            serial_task("d1", ("cpu", 1), 0.5),
        ]
        result = sim.run(tasks)
        assert result.finish("d1") == pytest.approx(0.5)
        assert sorted(
            [result.finish("c1"), result.finish("c2")]
        ) == pytest.approx([1.0, 2.0])

    def test_mixed_pipeline(self, fabric):
        """read (serial) -> flow -> compute (serial)."""
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            serial_task("read", ("disk", 0), 0.5),
            flow_task("xfer", fabric.path(0, 1), NIC, deps=["read"]),
            serial_task("dec", ("cpu", 1), 0.25, deps=["xfer"]),
        ]
        result = sim.run(tasks)
        assert result.finish("dec") == pytest.approx(1.75)

    def test_zero_duration_serial(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        result = sim.run([serial_task("z", ("cpu", 0), 0.0)])
        assert result.finish("z") == pytest.approx(0.0)

    def test_busy_time_by_tag(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            flow_task("a", fabric.path(0, 1), NIC, tag="xfer:intra"),
            serial_task("c", ("cpu", 1), 0.5, deps=["a"], tag="compute:final"),
        ]
        result = sim.run(tasks)
        assert result.busy_time_by_tag["xfer:intra"] == pytest.approx(1.0)
        assert result.busy_time_by_tag["compute:final"] == pytest.approx(0.5)

    def test_link_bytes_recorded(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        path = fabric.path(0, 3)
        result = sim.run([flow_task("a", path, 100.0)])
        for link in path:
            assert result.link_bytes[link] == pytest.approx(100.0)

    def test_duplicate_ids_rejected(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        t = flow_task("a", fabric.path(0, 1), 1.0)
        with pytest.raises(SimulationError):
            sim.run([t, t])

    def test_unknown_dep_rejected(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        with pytest.raises(SimulationError):
            sim.run([flow_task("a", fabric.path(0, 1), 1.0, deps=["nope"])])

    def test_unknown_link_rejected(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        with pytest.raises(FlowError):
            sim.run([flow_task("a", [999], 1.0)])

    def test_dependency_cycle_stalls_cleanly(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        tasks = [
            flow_task("a", fabric.path(0, 1), 1.0, deps=["b"]),
            flow_task("b", fabric.path(0, 1), 1.0, deps=["a"]),
        ]
        with pytest.raises(SimulationError):
            sim.run(tasks)

    def test_finish_unknown_task(self, fabric):
        sim = FluidNetworkSimulator(fabric)
        result = sim.run([serial_task("z", ("cpu", 0), 0.1)])
        with pytest.raises(SimulationError):
            result.finish("missing")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_makespan_monotone_in_bandwidth(self, seed):
        """Doubling every capacity cannot slow the recovery down."""
        import random

        rng = random.Random(seed)
        slow_topo = ClusterTopology.from_rack_sizes(
            [2, 2, 2],
            bandwidth=BandwidthProfile(node_nic_gbps=1, rack_uplink_gbps=0.5),
        )
        fast_topo = ClusterTopology.from_rack_sizes(
            [2, 2, 2],
            bandwidth=BandwidthProfile(node_nic_gbps=2, rack_uplink_gbps=1.0),
        )
        def tasks_for(fabric):
            tasks = []
            for i in range(8):
                src, dst = rng.sample(range(6), 2)
                tasks.append(
                    flow_task(f"f{i}", fabric.path(src, dst), NIC * rng.uniform(0.5, 2))
                )
            return tasks

        rng_state = rng.getstate()
        slow = FluidNetworkSimulator(FabricModel(slow_topo)).run(
            tasks_for(FabricModel(slow_topo))
        )
        rng.setstate(rng_state)
        fast = FluidNetworkSimulator(FabricModel(fast_topo)).run(
            tasks_for(FabricModel(fast_topo))
        )
        assert fast.makespan <= slow.makespan + 1e-9
