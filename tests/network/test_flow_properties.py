"""Property-based tests of the fluid simulator's physical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.network.flow import flow_task, serial_task
from repro.network.links import FabricModel
from repro.network.simulator import FluidNetworkSimulator, maxmin_rates

NIC = 125e6


def random_workload(rng, fabric, num_nodes, count):
    tasks = []
    for i in range(count):
        src, dst = rng.choice(num_nodes, size=2, replace=False)
        tasks.append(
            flow_task(
                f"f{i}",
                fabric.path(int(src), int(dst)),
                float(rng.uniform(0.1, 2.0)) * NIC,
                tag="xfer",
            )
        )
    return tasks


@st.composite
def fabric_and_flows(draw):
    seed = draw(st.integers(0, 10_000))
    racks = draw(st.lists(st.integers(2, 4), min_size=2, max_size=4))
    uplink = draw(st.sampled_from([0.25, 0.5, 1.0]))
    topo = ClusterTopology.from_rack_sizes(
        racks,
        bandwidth=BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=uplink),
    )
    fabric = FabricModel(topo)
    rng = np.random.default_rng(seed)
    count = draw(st.integers(1, 12))
    return fabric, random_workload(rng, fabric, sum(racks), count)


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(fabric_and_flows())
    def test_link_bytes_equal_flow_bytes(self, fw):
        """Every byte a flow carries is accounted on each path link."""
        fabric, tasks = fw
        result = FluidNetworkSimulator(fabric).run(tasks)
        expected: dict[int, float] = {}
        for t in tasks:
            for link in t.path:
                expected[link] = expected.get(link, 0.0) + t.size_bytes
        for link, total in expected.items():
            assert result.link_bytes[link] == pytest.approx(total)

    @settings(max_examples=20, deadline=None)
    @given(fabric_and_flows())
    def test_makespan_at_least_every_bottleneck(self, fw):
        """No link can deliver its bytes faster than its capacity."""
        fabric, tasks = fw
        result = FluidNetworkSimulator(fabric).run(tasks)
        for link_id, nbytes in result.link_bytes.items():
            lower_bound = nbytes / fabric.link(link_id).capacity
            assert result.makespan >= lower_bound - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(fabric_and_flows())
    def test_makespan_at_least_any_single_flow_alone(self, fw):
        """Sharing can only slow a flow down relative to running alone."""
        fabric, tasks = fw
        result = FluidNetworkSimulator(fabric).run(tasks)
        for t in tasks:
            alone = t.size_bytes / min(
                fabric.link(l).capacity for l in t.path
            )
            assert result.finish(t.task_id) >= alone - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(fabric_and_flows())
    def test_all_flows_finish(self, fw):
        fabric, tasks = fw
        result = FluidNetworkSimulator(fabric).run(tasks)
        assert set(result.finish_times) == {t.task_id for t in tasks}
        assert result.makespan == pytest.approx(
            max(result.finish_times.values())
        )


class TestMaxMinProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 8), st.integers(2, 6))
    def test_pareto_optimality_of_waterfilling(self, seed, nlinks, nflows):
        """No flow's rate can rise without another's falling: every flow
        crosses at least one saturated link."""
        rng = np.random.default_rng(seed)
        inc = rng.random((nlinks, nflows)) < 0.5
        for f in range(nflows):
            if not inc[:, f].any():
                inc[rng.integers(nlinks), f] = True
        caps = rng.uniform(1.0, 100.0, nlinks)
        rates = maxmin_rates(inc, caps)
        loads = inc.astype(float) @ rates
        saturated = np.abs(loads - caps) < 1e-6
        for f in range(nflows):
            assert saturated[inc[:, f]].any(), f

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equal_flows_get_equal_rates(self, seed):
        """Flows with identical paths receive identical rates."""
        rng = np.random.default_rng(seed)
        nlinks = 5
        path = rng.random(nlinks) < 0.6
        if not path.any():
            path[0] = True
        inc = np.column_stack([path, path, path])
        caps = rng.uniform(1.0, 50.0, nlinks)
        rates = maxmin_rates(inc, caps)
        assert rates[0] == pytest.approx(rates[1])
        assert rates[1] == pytest.approx(rates[2])


class TestSerialResourceProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.floats(0.01, 2.0), min_size=1, max_size=8),
        st.integers(0, 100),
    )
    def test_single_resource_serializes_exactly(self, durations, seed):
        topo = ClusterTopology.from_rack_sizes([2, 2])
        fabric = FabricModel(topo)
        tasks = [
            serial_task(f"c{i}", ("cpu", 0), d)
            for i, d in enumerate(durations)
        ]
        result = FluidNetworkSimulator(fabric).run(tasks)
        assert result.makespan == pytest.approx(sum(durations), rel=1e-9)
