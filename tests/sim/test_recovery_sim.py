"""Tests for the fluid recovery-time simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.erasure.rs import RSCode
from repro.network.links import FabricModel
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.recovery_sim import RecoverySimulator, build_tasks

MB = 1 << 20


def failed_cluster(seed=0, stripes=10, k=6, m=3, uplink=1.0):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(
        [4, 3, 3, 3],
        bandwidth=BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=uplink),
    )
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestTaskConstruction:
    def test_all_dependencies_resolve(self):
        state, event = failed_cluster()
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        fabric = FabricModel(state.topology)
        tasks = build_tasks(
            state, plan, fabric, HardwareModel(state.topology), 4 * MB
        )
        ids = {t.task_id for t in tasks}
        assert len(ids) == len(tasks)
        for t in tasks:
            assert t.deps <= ids

    def test_disk_tasks_optional(self):
        state, event = failed_cluster()
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        fabric = FabricModel(state.topology)
        with_disk = build_tasks(
            state, plan, fabric, HardwareModel(state.topology), MB, include_disk=True
        )
        without = build_tasks(
            state, plan, fabric, HardwareModel(state.topology), MB, include_disk=False
        )
        assert len(without) < len(with_disk)
        assert not any(t.tag.startswith("disk") for t in without)

    def test_one_final_task_per_stripe(self):
        state, event = failed_cluster(seed=2)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        tasks = build_tasks(
            state,
            plan,
            FabricModel(state.topology),
            HardwareModel(state.topology),
            MB,
        )
        finals = [t for t in tasks if t.tag == "compute:final"]
        assert len(finals) == len(plan.stripe_plans)


class TestSimulation:
    def test_car_faster_than_rr(self):
        state, event = failed_cluster(seed=1, stripes=20)
        simulator = RecoverySimulator(state)
        times = {}
        for strat in (CarStrategy(), RandomRecoveryStrategy(rng=1)):
            sol = strat.solve(state)
            plan = plan_recovery(state, event, sol)
            times[strat.name] = simulator.simulate(plan, 4 * MB).time_per_chunk
        assert times["CAR"] < times["RR"]

    def test_time_scales_roughly_linearly_with_chunk_size(self):
        state, event = failed_cluster(seed=3)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        simulator = RecoverySimulator(state)
        t4 = simulator.simulate(plan, 4 * MB).total_time
        t16 = simulator.simulate(plan, 16 * MB).total_time
        assert t16 == pytest.approx(4 * t4, rel=0.01)

    def test_oversubscription_slows_recovery(self):
        fast_state, fast_event = failed_cluster(seed=4, uplink=1.0)
        slow_state, slow_event = failed_cluster(seed=4, uplink=0.25)
        results = {}
        for label, (state, event) in (
            ("fast", (fast_state, fast_event)),
            ("slow", (slow_state, slow_event)),
        ):
            sol = RandomRecoveryStrategy(rng=4).solve(state)
            plan = plan_recovery(state, event, sol)
            results[label] = RecoverySimulator(state).simulate(plan, 4 * MB)
        assert results["slow"].total_time >= results["fast"].total_time

    def test_timing_fields_consistent(self):
        state, event = failed_cluster(seed=5)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        timing = RecoverySimulator(state).simulate(plan, 2 * MB)
        assert timing.num_chunks == len(plan.stripe_plans)
        assert timing.total_time > 0
        assert timing.computation_time > 0
        assert timing.transmission_time > 0
        assert timing.disk_time > 0
        assert 0 <= timing.computation_ratio <= 1
        assert timing.transmission_ratio == pytest.approx(
            1 - timing.computation_ratio
        )
        assert timing.time_per_chunk == pytest.approx(
            timing.total_time / timing.num_chunks
        )

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 100))
    def test_makespan_at_least_bottleneck(self, seed):
        """The simulated makespan can never beat the busiest link."""
        state, event = failed_cluster(seed=seed, stripes=8)
        sol = RandomRecoveryStrategy(rng=seed).solve(state)
        plan = plan_recovery(state, event, sol)
        timing = RecoverySimulator(state).simulate(plan, MB)
        assert timing.total_time >= timing.transmission_time - 1e-9
