"""Structural tests of the recovery task DAG the simulator executes."""

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.network.links import FabricModel
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.recovery_sim import build_tasks

MB = 1 << 20


@pytest.fixture
def setup():
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=8).place(topo, 10, 6, 3)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=8).fail_random_node(state)
    return state, event


def tasks_for(state, event, strategy):
    solution = strategy.solve(state)
    plan = plan_recovery(state, event, solution)
    fabric = FabricModel(state.topology)
    return (
        build_tasks(state, plan, fabric, HardwareModel(state.topology), MB),
        plan,
        solution,
    )


class TestTaskGraphStructure:
    def test_each_chunk_read_once_per_stripe(self, setup):
        state, event = setup
        tasks, plan, solution = tasks_for(state, event, CarStrategy())
        reads = [t for t in tasks if t.tag == "disk:read"]
        read_ids = {t.task_id for t in reads}
        assert len(read_ids) == len(reads)  # no duplicate read tasks
        # One read per retrieved helper chunk.
        expected = sum(s.helper_count for s in solution.solutions)
        assert len(reads) == expected

    def test_partial_flow_depends_on_decode(self, setup):
        state, event = setup
        tasks, plan, _ = tasks_for(state, event, CarStrategy())
        by_id = {t.task_id: t for t in tasks}
        for t in tasks:
            if "xfer:partial" in t.task_id:
                assert len(t.deps) == 1
                (dep,) = t.deps
                assert by_id[dep].tag == "compute:partial"

    def test_final_depends_on_all_inbound(self, setup):
        state, event = setup
        tasks, plan, solution = tasks_for(state, event, CarStrategy())
        for sp, sol in zip(plan.stripe_plans, solution.solutions):
            final = next(
                t for t in tasks if t.task_id == f"s{sp.stripe_id}:final"
            )
            # One dependency per cross-rack partial plus local-fold /
            # failed-rack inbound flows.
            assert len(final.deps) >= sol.num_intact_racks

    def test_write_is_terminal(self, setup):
        state, event = setup
        tasks, plan, _ = tasks_for(state, event, RandomRecoveryStrategy(rng=8))
        dependents: dict[str, int] = {}
        for t in tasks:
            for d in t.deps:
                dependents[d] = dependents.get(d, 0) + 1
        writes = [t for t in tasks if t.tag == "disk:write"]
        assert writes
        for w in writes:
            assert w.task_id not in dependents

    def test_rr_graph_is_flat(self, setup):
        """RR: read -> flow -> final -> write, nothing else."""
        state, event = setup
        tasks, plan, _ = tasks_for(state, event, RandomRecoveryStrategy(rng=8))
        tags = {t.tag for t in tasks}
        assert "compute:partial" not in tags
        assert "compute:local" not in tags

    def test_all_resources_are_cpu_or_disk(self, setup):
        state, event = setup
        tasks, _, _ = tasks_for(state, event, CarStrategy())
        for t in tasks:
            if not t.is_flow:
                assert t.resource is not None
                assert t.resource[0] in ("cpu", "disk")
                state.topology.node(t.resource[1])  # valid node id
