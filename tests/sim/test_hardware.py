"""Tests for hardware profiles and the timing rates."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError
from repro.sim.hardware import TABLE_III_PROFILES, HardwareModel, NodeHardware


def profile(**overrides):
    base = dict(
        name="test",
        cpu_label="cpu",
        memory_gb=8,
        os_label="linux",
        disk_label="1TB",
        gf_mbps=1000.0,
        disk_read_mbps=100.0,
        disk_write_mbps=100.0,
    )
    base.update(overrides)
    return NodeHardware(**base)


class TestNodeHardware:
    def test_table_iii_has_five_racks(self):
        assert len(TABLE_III_PROFILES) == 5
        assert [p.name for p in TABLE_III_PROFILES] == ["A1", "A2", "A3", "A4", "A5"]

    def test_a1_is_the_slow_opteron(self):
        a1 = TABLE_III_PROFILES[0]
        assert "Opteron" in a1.cpu_label
        assert a1.gf_mbps < TABLE_III_PROFILES[1].gf_mbps

    def test_identical_xeon_racks(self):
        """A2 and A5 have the same CPU class in Table III."""
        assert TABLE_III_PROFILES[1].gf_mbps == TABLE_III_PROFILES[4].gf_mbps

    def test_gf_seconds_linear(self):
        p = profile()
        assert p.gf_seconds(2e6) == pytest.approx(2 * p.gf_seconds(1e6))

    def test_gf_seconds_wide_combines_faster(self):
        p = profile(combine_efficiency=0.1)
        narrow = p.gf_seconds(1e6, inputs=1)
        wide = p.gf_seconds(1e6, inputs=10)
        assert wide < narrow
        assert wide == pytest.approx(narrow / 1.9)

    def test_xor_defaults_to_4x_gf(self):
        p = profile()
        assert p.xor_mbps == 4000.0
        assert p.xor_seconds(4e6) == pytest.approx(p.gf_seconds(1e6))

    def test_disk_rates(self):
        p = profile()
        assert p.disk_read_seconds(100e6) == pytest.approx(1.0)
        assert p.disk_write_seconds(50e6) == pytest.approx(0.5)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigurationError):
            profile(gf_mbps=0)
        with pytest.raises(ConfigurationError):
            profile(disk_read_mbps=-1)

    def test_rejects_negative_efficiency(self):
        with pytest.raises(ConfigurationError):
            profile(combine_efficiency=-0.1)


class TestHardwareModel:
    def test_nodes_inherit_rack_profile(self):
        topo = ClusterTopology.from_rack_sizes([2, 2, 2])
        model = HardwareModel(topo)
        for node in topo.nodes:
            assert model.profile(node.node_id).name == f"A{node.rack_id + 1}"

    def test_profiles_cycle_for_extra_racks(self):
        topo = ClusterTopology.from_rack_sizes([1] * 7)
        model = HardwareModel(topo)
        assert model.rack_profile(5).name == "A1"
        assert model.rack_profile(6).name == "A2"

    def test_custom_profiles(self):
        topo = ClusterTopology.from_rack_sizes([2, 2])
        model = HardwareModel(topo, rack_profiles=(profile(name="X"),))
        assert model.profile(0).name == "X"
        assert model.profile(3).name == "X"

    def test_empty_profiles_rejected(self):
        topo = ClusterTopology.from_rack_sizes([2])
        with pytest.raises(ConfigurationError):
            HardwareModel(topo, rack_profiles=())
