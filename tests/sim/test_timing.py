"""Tests for the per-stripe serialized timing model."""

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.sim.timing import (
    SerialRecoveryTiming,
    StripeSerialTimingModel,
    StripeTiming,
)

MB = 1 << 20


def failed_cluster(seed=0, stripes=15, k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(
        [4, 3, 3, 3],
        bandwidth=BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=1.0),
    )
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


@pytest.fixture
def plans():
    state, event = failed_cluster(seed=1)
    car = CarStrategy().solve(state)
    rr = RandomRecoveryStrategy(rng=1).solve(state)
    return (
        state,
        plan_recovery(state, event, car),
        plan_recovery(state, event, rr),
    )


class TestSerialModel:
    def test_per_stripe_entries(self, plans):
        state, car_plan, _ = plans
        timing = StripeSerialTimingModel(state).evaluate(car_plan, 4 * MB)
        assert len(timing.stripes) == len(car_plan.stripe_plans)
        for s in timing.stripes:
            assert s.transmission > 0
            assert s.computation > 0
            assert s.total == pytest.approx(s.transmission + s.computation)

    def test_transmission_dominates(self, plans):
        """The paper's Figure 10(a) headline: transmission >> computation."""
        state, car_plan, rr_plan = plans
        model = StripeSerialTimingModel(state)
        for plan in (car_plan, rr_plan):
            timing = model.evaluate(plan, 8 * MB)
            assert timing.transmission_ratio > 0.5

    def test_car_and_rr_computation_close(self, plans):
        """Figure 10(b): CAR does not change the total decode work."""
        state, car_plan, rr_plan = plans
        model = StripeSerialTimingModel(state)
        car = model.evaluate(car_plan, 8 * MB).computation_time
        rr = model.evaluate(rr_plan, 8 * MB).computation_time
        assert 0.6 <= car / rr <= 1.4

    def test_rr_transmission_is_k_chunks_through_downlink(self):
        state, event = failed_cluster(seed=2)
        rr = RandomRecoveryStrategy(rng=2).solve(state)
        plan = plan_recovery(state, event, rr)
        timing = StripeSerialTimingModel(state).evaluate(plan, 4 * MB)
        nic = 125e6
        expected = state.code.k * 4 * MB / nic
        for s in timing.stripes:
            assert s.transmission >= expected - 1e-9

    def test_car_transmission_below_rr(self, plans):
        state, car_plan, rr_plan = plans
        model = StripeSerialTimingModel(state)
        car = model.evaluate(car_plan, 8 * MB)
        rr = model.evaluate(rr_plan, 8 * MB)
        assert car.transmission_time < rr.transmission_time

    def test_linear_in_chunk_size(self, plans):
        state, car_plan, _ = plans
        model = StripeSerialTimingModel(state)
        t1 = model.evaluate(car_plan, 4 * MB).total_time
        t2 = model.evaluate(car_plan, 8 * MB).total_time
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_ratios_sum_to_one(self, plans):
        state, car_plan, _ = plans
        timing = StripeSerialTimingModel(state).evaluate(car_plan, MB)
        assert timing.computation_ratio + timing.transmission_ratio == pytest.approx(1.0)


class TestZeroDurationGuards:
    """Ratio/average properties must not divide by zero on empty runs."""

    def test_serial_timing_empty_stripes(self):
        timing = SerialRecoveryTiming(stripes=())
        assert timing.time_per_chunk == 0.0
        assert timing.computation_ratio == 0.0
        assert timing.transmission_ratio == 1.0

    def test_serial_timing_zero_duration(self):
        timing = SerialRecoveryTiming(
            stripes=(StripeTiming(stripe_id=0, transmission=0.0,
                                  computation=0.0),)
        )
        assert timing.time_per_chunk == 0.0
        assert timing.computation_ratio == 0.0

    def test_recovery_timing_zero_chunks(self):
        from repro.sim.recovery_sim import RecoveryTiming

        timing = RecoveryTiming(
            total_time=0.0, computation_time=0.0, transmission_time=0.0,
            disk_time=0.0, num_chunks=0,
        )
        assert timing.time_per_chunk == 0.0
        assert timing.computation_ratio == 0.0

    def test_traffic_report_zero_stripes(self):
        from repro.recovery.metrics import TrafficReport

        report = TrafficReport(
            strategy="CAR", chunk_size_bytes=1, per_rack_chunks=(),
            failed_rack=0, lambda_rate=0.0, num_stripes=0,
        )
        assert report.per_stripe_chunks() == 0.0
