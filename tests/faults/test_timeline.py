"""Tests for threading fault timing into the recovery simulator."""

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultLog,
    FaultSpec,
    FaultTimeline,
    PipelineStage,
    recover_with_faults,
)
from repro.recovery import CarStrategy
from repro.sim import RecoverySimulator

CHUNK = 256


def build(seed=42, stripes=12):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def fault(kind, stripe, node, stall=0.0):
    return FaultEvent(
        kind=kind,
        stage=(PipelineStage.DISK_READ if kind is FaultKind.DISK_STALL
               else PipelineStage.CROSS_TRANSFER),
        stripe_id=stripe,
        node=node,
        rack=0,
        stall_seconds=stall,
    )


class TestFromLog:
    def test_empty_log_empty_timeline(self):
        tl = FaultTimeline.from_log(FaultLog())
        assert tl.empty
        assert tl.total_retries == 0
        assert tl.total_stall_seconds == 0.0

    def test_stalls_aggregate_per_stripe_node(self):
        log = FaultLog()
        log.record(fault(FaultKind.DISK_STALL, 1, 5, stall=2.0))
        log.record(fault(FaultKind.DISK_STALL, 1, 5, stall=3.0))
        log.record(fault(FaultKind.DISK_STALL, 2, 5, stall=1.0))
        tl = FaultTimeline.from_log(log)
        assert tl.stall_for(1, 5) == pytest.approx(5.0)
        assert tl.stall_for(2, 5) == pytest.approx(1.0)
        assert tl.stall_for(1, 6) == 0.0
        assert tl.total_stall_seconds == pytest.approx(6.0)

    def test_drops_count_per_stripe_source(self):
        log = FaultLog()
        log.record(fault(FaultKind.FLOW_DROP, 0, 3))
        log.record(fault(FaultKind.FLOW_DROP, 0, 3))
        log.record(fault(FaultKind.FLOW_DROP, 4, 7))
        tl = FaultTimeline.from_log(log)
        assert tl.retries_for(0, 3) == 2
        assert tl.retries_for(4, 7) == 1
        assert tl.retries_for(0, 7) == 0
        assert tl.total_retries == 3

    def test_crashes_do_not_perturb_timing(self):
        log = FaultLog()
        log.record(fault(FaultKind.HELPER_CRASH, 0, 3))
        assert FaultTimeline.from_log(log).empty


class TestSimulatorIntegration:
    def run_faulty(self):
        state, event = build()
        injector = FaultInjector([
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ,
                      stall_seconds=2.5, max_fires=2),
            FaultSpec(kind=FaultKind.FLOW_DROP,
                      stage=PipelineStage.CROSS_TRANSFER,
                      max_fires=3),
        ], seed=7)
        r = recover_with_faults(state, event, CarStrategy(),
                                injector=injector)
        return state, r

    def test_stalls_and_retries_land_in_total_time(self):
        state, r = self.run_faulty()
        assert r.verified
        tl = r.timeline
        assert tl.total_stall_seconds == pytest.approx(5.0)
        assert tl.total_retries == 3
        sim = RecoverySimulator(state)
        base = sim.simulate(r.final_plan, CHUNK)
        faulty = sim.simulate(r.final_plan, CHUNK, timeline=tl)
        assert base.fault_time == 0.0
        assert base.num_retries == 0
        assert faulty.num_retries == 3
        assert faulty.fault_time >= tl.total_stall_seconds
        # A stalled read serialises the whole stripe chain behind it.
        assert faulty.total_time >= base.total_time + 2.5
        assert faulty.fault_time <= faulty.total_time

    def test_retries_add_link_traffic(self):
        state, r = self.run_faulty()
        sim = RecoverySimulator(state)
        base = sim.simulate(r.final_plan, CHUNK)
        faulty = sim.simulate(r.final_plan, CHUNK, timeline=r.timeline)
        # Retransmissions move real bytes: transmission lower bound grows.
        assert faulty.transmission_time >= base.transmission_time

    def test_empty_timeline_is_identity(self):
        state, r = self.run_faulty()
        sim = RecoverySimulator(state)
        base = sim.simulate(r.final_plan, CHUNK)
        same = sim.simulate(r.final_plan, CHUNK, timeline=FaultTimeline())
        assert same.total_time == pytest.approx(base.total_time)
        assert same.fault_time == 0.0
