"""Tests for the robust executor's retry/re-plan/degrade/abort ladder."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.faults import (
    ActionKind,
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultSpec,
    PipelineStage,
    RecoveryAbort,
    RobustExecutor,
    recover_with_faults,
)
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery

CHUNK = 256


def build(seed=42, stripes=12):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestFaultFreeBehaviour:
    def test_no_injector_matches_plain_executor(self):
        state, event = build()
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        plain = PlanExecutor(state).execute(plan, solution)
        robust = RobustExecutor(state).run(event, solution, plan)
        assert robust.verified and plain.verified
        assert robust.result.cross_rack_bytes == plain.cross_rack_bytes
        assert robust.result.intra_rack_bytes == plain.intra_rack_bytes
        assert len(robust.log) == 0
        assert robust.rounds == 1
        assert robust.replans == 0
        assert not robust.degraded_to_direct
        assert robust.dead_nodes == frozenset()

    def test_checkpoint_outside_run_is_inert(self):
        state, event = build()
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        executor = RobustExecutor(
            state,
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.HELPER_CRASH,
                          stage=PipelineStage.DISK_READ, max_fires=None)
            ]),
        )
        # The PlanExecutor interface still works and injects nothing.
        result = executor.execute(plan, solution)
        assert result.verified
        assert executor.injector.history == []


class TestSeededDeterminism:
    """The ISSUE acceptance scenario: helper crash mid-transfer, seed 42."""

    @staticmethod
    def run_once():
        state, event = build(seed=42)
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.HELPER_CRASH,
                       stage=PipelineStage.INTRA_TRANSFER)],
            seed=42,
        )
        return recover_with_faults(state, event, CarStrategy(),
                                   injector=injector)

    def test_two_runs_identical(self):
        r1 = self.run_once()
        r2 = self.run_once()
        assert r1.verified and r2.verified
        assert r1.replans >= 1
        assert r1.log == r2.log
        assert len(r1.log) > 0
        assert r1.result.cross_rack_bytes == r2.result.cross_rack_bytes
        assert r1.result.intra_rack_bytes == r2.result.intra_rack_bytes
        assert sorted(r1.result.reconstructed) == sorted(
            r2.result.reconstructed
        )
        for stripe in r1.result.reconstructed:
            assert np.array_equal(
                r1.result.reconstructed[stripe],
                r2.result.reconstructed[stripe],
            )
        assert r1.dead_nodes == r2.dead_nodes

    def test_injector_reset_replays(self):
        state, event = build(seed=42)
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.HELPER_CRASH,
                       stage=PipelineStage.INTRA_TRANSFER)],
            seed=42,
        )
        r1 = recover_with_faults(state, event, CarStrategy(),
                                 injector=injector)
        history = list(injector.history)
        injector.reset()
        state2, event2 = build(seed=42)
        r2 = recover_with_faults(state2, event2, CarStrategy(),
                                 injector=injector)
        assert injector.history == history
        assert r1.log == r2.log


class TestDegradationLadder:
    def test_helper_crash_triggers_replan_and_recovers(self):
        state, event = build()
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.HELPER_CRASH,
                          stage=PipelineStage.DISK_READ)
            ]),
        )
        assert r.verified
        assert r.replans == 1
        assert not r.degraded_to_direct
        assert len(r.dead_nodes) == 1
        actions = [a.action for a in r.log.actions]
        assert ActionKind.REPLAN in actions
        # The dead helper must not serve the re-planned solution.
        (dead,) = r.dead_nodes
        for sol in r.final_solution.solutions:
            for chunk in sol.helpers:
                assert state.placement.node_of(sol.stripe_id, chunk) != dead

    def test_replan_preserves_rack_minimality_over_survivors(self):
        """Theorem 1 must hold on the degraded views, not the originals."""
        from repro.cluster.failure import degraded_view
        from repro.recovery.selector import min_racks_needed

        state, event = build()
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.HELPER_CRASH,
                          stage=PipelineStage.DISK_READ)
            ]),
        )
        assert r.replans == 1
        k = state.code.k
        for sol in r.final_solution.solutions:
            view = degraded_view(
                state.stripe_view(sol.stripe_id), r.dead_nodes,
                state.topology,
            )
            assert sol.num_intact_racks == min_racks_needed(view, k)
            assert sol.helper_count == k

    def test_delegate_crash_triggers_replan(self):
        state, event = build()
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.DELEGATE_CRASH,
                          stage=PipelineStage.PARTIAL_DECODE)
            ]),
        )
        assert r.verified
        assert r.replans == 1
        assert r.log.count(FaultKind.DELEGATE_CRASH) == 1

    def test_exhausted_replans_degrade_to_direct(self):
        state, event = build()
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.DELEGATE_CRASH,
                          stage=PipelineStage.PARTIAL_DECODE)
            ]),
            max_replans=0,
        )
        assert r.verified
        assert r.degraded_to_direct
        assert r.replans == 0
        assert not r.final_solution.aggregated
        actions = [a.action for a in r.log.actions]
        assert ActionKind.DEGRADE in actions

    def test_crash_storm_ends_in_typed_abort(self):
        state, event = build()
        with pytest.raises(RecoveryAbort) as exc_info:
            recover_with_faults(
                state, event, CarStrategy(),
                injector=FaultInjector([
                    FaultSpec(kind=FaultKind.HELPER_CRASH,
                              stage=PipelineStage.DISK_READ,
                              max_fires=None)
                ]),
            )
        abort = exc_info.value
        assert abort.dead_nodes
        assert len(abort.log.faults) == len(abort.dead_nodes)
        assert abort.log.actions[-1].action is ActionKind.ABORT


class TestTransients:
    def test_disk_stalls_waited_out_and_accounted(self):
        state, event = build()
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.DISK_STALL,
                          stage=PipelineStage.DISK_READ,
                          stall_seconds=2.0, max_fires=3)
            ]),
        )
        assert r.verified
        assert r.dead_nodes == frozenset()
        assert r.stall_seconds == pytest.approx(6.0)
        waits = [a for a in r.log.actions if a.action is ActionKind.WAIT]
        assert len(waits) == 3
        assert r.log.injected_delay_seconds == pytest.approx(6.0)

    def test_flow_drops_retried_with_backoff(self):
        state, event = build()
        backoff = BackoffPolicy(base_seconds=0.5, multiplier=2.0,
                                cap_seconds=10.0, max_attempts=4)
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.FLOW_DROP,
                          stage=PipelineStage.CROSS_TRANSFER,
                          max_fires=2)
            ]),
            backoff=backoff,
        )
        assert r.verified
        assert r.dead_nodes == frozenset()
        retries = [a for a in r.log.actions
                   if a.action is ActionKind.RETRY]
        assert len(retries) == 2
        assert r.backoff_seconds == pytest.approx(
            sum(a.wait_seconds for a in retries)
        )
        assert retries[0].wait_seconds == pytest.approx(0.5)

    def test_endless_drops_escalate_to_crash(self):
        state, event = build()
        # Find a failed-rack survivor: its raw intra-rack transfer is a
        # deterministic place to make the link permanently flaky.
        solution = CarStrategy().solve(state)
        target = None
        for sol in solution.solutions:
            for chunk in sol.chunks_from_rack(sol.failed_rack):
                target = state.placement.node_of(sol.stripe_id, chunk)
                break
            if target is not None:
                break
        assert target is not None, "scenario needs a failed-rack survivor"
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.FLOW_DROP,
                          stage=PipelineStage.INTRA_TRANSFER,
                          node=target, max_fires=None)
            ]),
            backoff=BackoffPolicy(max_attempts=2),
        )
        assert r.verified
        assert target in r.dead_nodes
        actions = [a.action for a in r.log.actions]
        assert ActionKind.ESCALATE in actions
        assert ActionKind.REPLAN in actions or ActionKind.DEGRADE in actions


class TestByteAccounting:
    def test_voided_attempt_bytes_not_double_counted(self):
        """A crashed attempt's traffic lands in wasted_*, not the result."""
        state, event = build()
        solution = CarStrategy().solve(state)
        # Target a stripe that retrieves survivors inside the failed rack:
        # its intra-rack transfers run before the crash at the partial
        # decode, so the voided attempt has non-zero traffic.
        target_stripe = None
        for sol in solution.solutions:
            if sol.uses_rack(sol.failed_rack) and sol.num_intact_racks:
                target_stripe = sol.stripe_id
                break
        assert target_stripe is not None
        r = recover_with_faults(
            state, event, CarStrategy(),
            injector=FaultInjector([
                FaultSpec(kind=FaultKind.DELEGATE_CRASH,
                          stage=PipelineStage.PARTIAL_DECODE,
                          stripe_id=target_stripe)
            ]),
        )
        assert r.verified
        assert r.wasted_intra_rack_bytes >= CHUNK
        # Completed bytes equal a clean re-execution of the final plan
        # for the stripes that ran after the re-plan; globally the
        # merged result must still verify byte-exactly per stripe.
        assert all(r.result.per_stripe_ok.values())
        assert set(r.result.reconstructed) == {
            s.stripe_id for s in solution.solutions
        }
