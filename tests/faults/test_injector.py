"""Tests for the deterministic, seedable fault injector."""

import itertools

import pytest

from repro.errors import RecoveryError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    PipelineStage,
)
from repro.faults.events import VALID_STAGES


def poll(inj, stage, stripe_id=0, node=0, rack=0, **kw):
    return inj.poll(stage, stripe_id=stripe_id, node=node, rack=rack, **kw)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kind,stage",
        [
            (kind, stage)
            for kind, stage in itertools.product(FaultKind, PipelineStage)
            if stage not in VALID_STAGES[kind]
        ],
    )
    def test_invalid_kind_stage_combo_rejected(self, kind, stage):
        with pytest.raises(RecoveryError):
            FaultSpec(kind=kind, stage=stage)

    @pytest.mark.parametrize(
        "kind,stage",
        [
            (kind, stage)
            for kind in FaultKind
            for stage in sorted(VALID_STAGES[kind])
        ],
    )
    def test_valid_kind_stage_combo_accepted(self, kind, stage):
        FaultSpec(kind=kind, stage=stage)

    def test_bad_probability(self):
        with pytest.raises(RecoveryError):
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ, probability=0.0)
        with pytest.raises(RecoveryError):
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ, probability=1.5)

    def test_bad_max_fires_and_stall(self):
        with pytest.raises(RecoveryError):
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ, max_fires=0)
        with pytest.raises(RecoveryError):
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ, stall_seconds=0.0)


class TestMatching:
    def test_stage_must_match(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ)
        ])
        assert poll(inj, PipelineStage.INTRA_TRANSFER) is None
        assert poll(inj, PipelineStage.DISK_READ) is not None

    def test_node_rack_stripe_filters(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.HELPER_CRASH,
                      stage=PipelineStage.DISK_READ,
                      node=3, rack=1, stripe_id=7, max_fires=None)
        ])
        assert poll(inj, PipelineStage.DISK_READ, node=2, rack=1,
                    stripe_id=7) is None
        assert poll(inj, PipelineStage.DISK_READ, node=3, rack=0,
                    stripe_id=7) is None
        assert poll(inj, PipelineStage.DISK_READ, node=3, rack=1,
                    stripe_id=8) is None
        event = poll(inj, PipelineStage.DISK_READ, node=3, rack=1,
                     stripe_id=7)
        assert event is not None
        assert (event.node, event.rack, event.stripe_id) == (3, 1, 7)

    def test_max_fires_budget_drains(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.FLOW_DROP,
                      stage=PipelineStage.CROSS_TRANSFER, max_fires=2)
        ])
        assert poll(inj, PipelineStage.CROSS_TRANSFER) is not None
        assert poll(inj, PipelineStage.CROSS_TRANSFER) is not None
        assert poll(inj, PipelineStage.CROSS_TRANSFER) is None
        assert inj.armed == ()

    def test_unlimited_budget(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.FLOW_DROP,
                      stage=PipelineStage.CROSS_TRANSFER, max_fires=None)
        ])
        for _ in range(10):
            assert poll(inj, PipelineStage.CROSS_TRANSFER) is not None
        assert len(inj.armed) == 1

    def test_first_matching_spec_wins(self):
        stall = FaultSpec(kind=FaultKind.DISK_STALL,
                          stage=PipelineStage.DISK_READ, stall_seconds=9.0)
        crash = FaultSpec(kind=FaultKind.HELPER_CRASH,
                          stage=PipelineStage.DISK_READ)
        inj = FaultInjector([stall, crash])
        event = poll(inj, PipelineStage.DISK_READ)
        assert event.kind is FaultKind.DISK_STALL
        assert event.stall_seconds == 9.0

    def test_history_records_fires_in_order(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.DISK_STALL,
                      stage=PipelineStage.DISK_READ, max_fires=3)
        ])
        for stripe in range(3):
            poll(inj, PipelineStage.DISK_READ, stripe_id=stripe)
        assert [e.stripe_id for e in inj.history] == [0, 1, 2]


class TestPayloadDisambiguation:
    """On shared transfer stages, who a crash hits depends on the payload."""

    def test_helper_crash_only_hits_raw_flows(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.HELPER_CRASH,
                      stage=PipelineStage.CROSS_TRANSFER, max_fires=None)
        ])
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=True) is None
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=False) is not None

    def test_delegate_crash_only_hits_partial_flows(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.DELEGATE_CRASH,
                      stage=PipelineStage.CROSS_TRANSFER, max_fires=None)
        ])
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=False) is None
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=True) is not None

    def test_flow_drop_is_payload_agnostic(self):
        inj = FaultInjector([
            FaultSpec(kind=FaultKind.FLOW_DROP,
                      stage=PipelineStage.CROSS_TRANSFER, max_fires=None)
        ])
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=True) is not None
        assert poll(inj, PipelineStage.CROSS_TRANSFER,
                    is_partial=False) is not None


class TestDeterminism:
    def probabilistic_pattern(self, inj, polls=50):
        inj.reset()
        return [
            poll(inj, PipelineStage.DISK_READ, stripe_id=i) is not None
            for i in range(polls)
        ]

    def test_same_seed_same_fire_pattern(self):
        spec = FaultSpec(kind=FaultKind.DISK_STALL,
                         stage=PipelineStage.DISK_READ,
                         probability=0.3, max_fires=None)
        a = FaultInjector([spec], seed=13)
        b = FaultInjector([spec], seed=13)
        assert self.probabilistic_pattern(a) == self.probabilistic_pattern(b)

    def test_different_seed_usually_differs(self):
        spec = FaultSpec(kind=FaultKind.DISK_STALL,
                         stage=PipelineStage.DISK_READ,
                         probability=0.5, max_fires=None)
        a = FaultInjector([spec], seed=1)
        b = FaultInjector([spec], seed=2)
        assert self.probabilistic_pattern(a) != self.probabilistic_pattern(b)

    def test_reset_replays_identically(self):
        spec = FaultSpec(kind=FaultKind.DISK_STALL,
                         stage=PipelineStage.DISK_READ,
                         probability=0.4, max_fires=10)
        inj = FaultInjector([spec], seed=99)
        first = self.probabilistic_pattern(inj)
        history = list(inj.history)
        second = self.probabilistic_pattern(inj)
        assert first == second
        assert history == inj.history
