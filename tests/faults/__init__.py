"""Tests for the fault-injection recovery subsystem."""
