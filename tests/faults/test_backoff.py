"""Tests for the capped exponential backoff schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import BackoffPolicy


class TestSchedule:
    def test_default_schedule(self):
        p = BackoffPolicy()
        assert list(p.delays()) == [0.1, 0.2, 0.4, 0.8]

    def test_cap_applies(self):
        p = BackoffPolicy(base_seconds=1.0, multiplier=10.0, cap_seconds=5.0,
                          max_attempts=4)
        assert list(p.delays()) == [1.0, 5.0, 5.0, 5.0]

    def test_first_attempt_is_base(self):
        assert BackoffPolicy(base_seconds=0.25).delay(1) == 0.25

    def test_total_budget(self):
        p = BackoffPolicy(base_seconds=1.0, multiplier=2.0, cap_seconds=100.0,
                          max_attempts=3)
        assert p.total_budget_seconds == 1.0 + 2.0 + 4.0

    def test_deterministic_no_jitter(self):
        p = BackoffPolicy()
        assert [p.delay(i) for i in range(1, 5)] == [
            p.delay(i) for i in range(1, 5)
        ]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_seconds": 0.0},
            {"base_seconds": -1.0},
            {"cap_seconds": 0.0},
            {"multiplier": 0.5},
            {"max_attempts": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay(0)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        base=st.floats(0.01, 10.0),
        mult=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 100.0),
        attempts=st.integers(1, 10),
    )
    def test_delays_monotone_and_capped(self, base, mult, cap, attempts):
        p = BackoffPolicy(base_seconds=base, multiplier=mult,
                          cap_seconds=cap, max_attempts=attempts)
        delays = list(p.delays())
        assert len(delays) == attempts
        assert all(d <= cap + 1e-12 for d in delays)
        assert all(b >= a - 1e-12 for a, b in zip(delays, delays[1:]))
        assert p.total_budget_seconds == pytest.approx(sum(delays))
