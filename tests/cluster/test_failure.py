"""Tests for failure injection."""

import random

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.errors import NoFailureError


class TestInjector:
    def test_random_failure_hits_nonempty_node(self, small_state):
        injector = FailureInjector(rng=3)
        event = injector.fail_random_node(small_state)
        assert event.lost_chunks
        assert small_state.failed_node == event.failed_node

    def test_reproducible(self, rs63, small_topology):
        events = []
        for _ in range(2):
            placement = RandomPlacementPolicy(rng=1).place(
                small_topology, 10, 6, 3
            )
            state = ClusterState(small_topology, rs63, placement)
            events.append(FailureInjector(rng=42).fail_random_node(state))
        assert events[0].failed_node == events[1].failed_node

    def test_accepts_random_instance(self, small_state):
        injector = FailureInjector(rng=random.Random(0))
        assert injector.fail_random_node(small_state).lost_chunks

    def test_explicit_node(self, small_state):
        injector = FailureInjector()
        event = injector.fail_node(small_state, 2)
        assert event.failed_node == 2

    def test_empty_cluster_rejected(self, rs63, small_topology):
        placement = RandomPlacementPolicy(rng=1).place(small_topology, 0, 6, 3)
        state = ClusterState(small_topology, rs63, placement)
        with pytest.raises(NoFailureError):
            FailureInjector(rng=1).fail_random_node(state)

    def test_candidates_store_chunks(self, small_state):
        injector = FailureInjector()
        for nid in injector.candidate_nodes(small_state):
            assert small_state.placement.chunks_on_node(nid)


class TestRackLossDrill:
    def test_fault_tolerant_placement_survives_any_rack(self, small_state):
        injector = FailureInjector()
        for rack in range(small_state.topology.num_racks):
            assert injector.simulate_rack_loss(small_state, rack)

    def test_flat_placement_can_fail_the_drill(self, rs63):
        from repro.cluster.placement import FlatPlacementPolicy

        topo = ClusterTopology.from_rack_sizes([8, 2, 2])
        placement = FlatPlacementPolicy(rng=0).place(topo, 30, 6, 3)
        state = ClusterState(topo, rs63, placement)
        injector = FailureInjector()
        # Rack 0 holds most nodes; some stripe almost surely keeps > m
        # chunks there, so the drill must report non-survival.
        assert not injector.simulate_rack_loss(state, 0)
