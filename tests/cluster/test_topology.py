"""Tests for the cluster topology model."""

import pytest

from repro.cluster.topology import BandwidthProfile, ClusterTopology, Node, Rack
from repro.errors import ConfigurationError, UnknownNodeError


class TestBandwidthProfile:
    def test_defaults(self):
        bw = BandwidthProfile()
        assert bw.node_nic_gbps == 1.0
        assert bw.core_gbps == float("inf")

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            BandwidthProfile(node_nic_gbps=0)
        with pytest.raises(ConfigurationError):
            BandwidthProfile(rack_uplink_gbps=-1)

    def test_oversubscription(self):
        bw = BandwidthProfile(node_nic_gbps=1.0, rack_uplink_gbps=0.25)
        assert bw.oversubscription == 4.0


class TestConstruction:
    def test_from_rack_sizes(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3])
        assert topo.num_racks == 3
        assert topo.num_nodes == 10
        assert topo.rack_sizes() == (4, 3, 3)

    def test_node_ids_dense_and_ordered(self):
        topo = ClusterTopology.from_rack_sizes([2, 2])
        assert [n.node_id for n in topo.nodes] == [0, 1, 2, 3]
        assert topo.rack_of(0) == 0
        assert topo.rack_of(3) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterTopology.from_rack_sizes([])

    def test_zero_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterTopology.from_rack_sizes([3, 0])

    def test_inconsistent_manual_construction_rejected(self):
        nodes = [Node(0, 0, 0)]
        racks = [Rack(0, (0,)), Rack(1, (0,))]
        with pytest.raises(ConfigurationError):
            ClusterTopology(racks, nodes)

    def test_duplicate_node_ids_rejected(self):
        nodes = [Node(0, 0, 0), Node(0, 0, 1)]
        racks = [Rack(0, (0,))]
        with pytest.raises(ConfigurationError):
            ClusterTopology(racks, nodes)


class TestQueries:
    @pytest.fixture
    def topo(self):
        return ClusterTopology.from_rack_sizes([4, 3, 3])

    def test_rack_of_unknown(self, topo):
        with pytest.raises(UnknownNodeError):
            topo.rack_of(99)

    def test_node_lookup(self, topo):
        assert topo.node(5).rack_id == 1
        with pytest.raises(UnknownNodeError):
            topo.node(-1)

    def test_rack_lookup(self, topo):
        assert topo.rack(0).size == 4
        with pytest.raises(UnknownNodeError):
            topo.rack(3)

    def test_nodes_in_rack(self, topo):
        assert topo.nodes_in_rack(0) == (0, 1, 2, 3)
        assert topo.nodes_in_rack(2) == (7, 8, 9)

    def test_peers_in_rack(self, topo):
        assert topo.peers_in_rack(0) == (1, 2, 3)

    def test_names_are_paper_style(self, topo):
        assert topo.rack(0).name == "A1"
        assert topo.node(0).name == "A1.n0"

    def test_repr(self, topo):
        assert "racks=(4, 3, 3)" in repr(topo)
