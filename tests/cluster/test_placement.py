"""Tests for chunk placement policies, including rack fault tolerance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import (
    FlatPlacementPolicy,
    Placement,
    RandomPlacementPolicy,
    RoundRobinPlacementPolicy,
)
from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError, PlacementError


@pytest.fixture
def topo():
    return ClusterTopology.from_rack_sizes([4, 3, 3, 3])


class TestPlacementObject:
    def test_queries(self, topo):
        placement = RoundRobinPlacementPolicy().place(topo, 2, 4, 3)
        assert placement.num_stripes == 2
        layout = placement.stripe_layout(0)
        assert sorted(layout) == list(range(7))
        node = placement.node_of(0, 0)
        assert (0, 0) in placement.chunks_on_node(node)
        assert placement.rack_of_chunk(0, 0) == topo.rack_of(node)

    def test_rack_counts_sum_to_stripe_width(self, topo):
        placement = RandomPlacementPolicy(rng=5).place(topo, 5, 6, 3)
        for s in range(5):
            assert sum(placement.rack_counts(s)) == 9

    def test_missing_chunk_raises(self, topo):
        placement = RoundRobinPlacementPolicy().place(topo, 1, 4, 3)
        with pytest.raises(PlacementError):
            placement.node_of(0, 7)
        with pytest.raises(PlacementError):
            placement.node_of(5, 0)

    def test_incomplete_stripe_rejected(self, topo):
        with pytest.raises(PlacementError):
            Placement(topo, 2, 1, {(0, 0): 0, (0, 1): 1})  # missing chunk 2

    def test_colocated_chunks_rejected(self, topo):
        with pytest.raises(PlacementError):
            Placement(topo, 1, 1, {(0, 0): 0, (0, 1): 0})

    def test_sparse_stripe_ids_rejected(self, topo):
        assignment = {(1, c): c for c in range(3)}
        with pytest.raises(PlacementError):
            Placement(topo, 2, 1, assignment)

    def test_iter_chunks(self, topo):
        placement = RoundRobinPlacementPolicy().place(topo, 1, 2, 1)
        assert len(list(placement.iter_chunks())) == 3


class TestRandomPolicy:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_always_rack_fault_tolerant(self, seed):
        """The paper's constraint: c_{i,j} <= m for every rack and stripe."""
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=seed).place(topo, 10, 6, 3)
        assert placement.is_rack_fault_tolerant()
        assert placement.max_rack_colocation() <= 3

    def test_accepts_random_instance(self, topo):
        policy = RandomPlacementPolicy(rng=random.Random(1))
        assert policy.place(topo, 1, 4, 3).num_stripes == 1

    def test_reproducible(self, topo):
        a = RandomPlacementPolicy(rng=7).place(topo, 5, 6, 3)
        b = RandomPlacementPolicy(rng=7).place(topo, 5, 6, 3)
        assert dict(a.iter_chunks()) == dict(b.iter_chunks())

    def test_stripe_too_wide_rejected(self, topo):
        with pytest.raises(PlacementError):
            RandomPlacementPolicy(rng=1).place(topo, 1, 12, 3)

    def test_infeasible_rack_constraint_rejected(self):
        # 2 racks, per-rack cap m=2, stripe width 6 > 2*2.
        topo = ClusterTopology.from_rack_sizes([5, 5])
        with pytest.raises(PlacementError):
            RandomPlacementPolicy(rng=1).place(topo, 1, 4, 2)

    def test_rack_tolerance_two(self):
        """rho=2: per-rack cap m//2 so any two racks can fail."""
        topo = ClusterTopology.from_rack_sizes([3, 3, 3, 3, 3])
        policy = RandomPlacementPolicy(rng=3, rack_tolerance=2)
        placement = policy.place(topo, 5, 4, 4)
        assert placement.max_rack_colocation() <= 2

    def test_rack_tolerance_infeasible(self):
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        policy = RandomPlacementPolicy(rng=3, rack_tolerance=4)
        with pytest.raises(PlacementError):
            policy.place(topo, 1, 2, 2)

    def test_invalid_rack_tolerance(self):
        with pytest.raises(ConfigurationError):
            RandomPlacementPolicy(rack_tolerance=0)

    def test_constructive_fallback(self):
        """With max_attempts=0 sampling never succeeds; the constructive
        path must still produce a valid fault-tolerant placement."""
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        policy = RandomPlacementPolicy(rng=2, max_attempts=0)
        placement = policy.place(topo, 10, 6, 3)
        assert placement.is_rack_fault_tolerant()


class TestRoundRobinPolicy:
    def test_deterministic(self, topo):
        a = RoundRobinPlacementPolicy().place(topo, 4, 6, 3)
        b = RoundRobinPlacementPolicy().place(topo, 4, 6, 3)
        assert dict(a.iter_chunks()) == dict(b.iter_chunks())

    def test_rack_fault_tolerant(self, topo):
        placement = RoundRobinPlacementPolicy().place(topo, 10, 6, 3)
        assert placement.is_rack_fault_tolerant()

    def test_every_node_used(self, topo):
        """Round-robin touches every node (the rack cap skips the same
        node repeatedly on aligned cycles, so perfect balance is not
        guaranteed — only coverage)."""
        placement = RoundRobinPlacementPolicy().place(topo, 13, 6, 3)
        counts = [
            len(placement.chunks_on_node(n.node_id)) for n in topo.nodes
        ]
        assert min(counts) >= 1
        assert sum(counts) == 13 * 9


class TestFlatPolicy:
    def test_places_all_chunks(self, topo):
        placement = FlatPlacementPolicy(rng=4).place(topo, 5, 6, 3)
        assert placement.num_stripes == 5

    def test_may_violate_rack_constraint_eventually(self):
        """Flat placement ignores the rack cap; over many stripes on a
        lopsided topology it concentrates more than m chunks per rack."""
        topo = ClusterTopology.from_rack_sizes([8, 2])
        placement = FlatPlacementPolicy(rng=0).place(topo, 50, 6, 2)
        assert placement.max_rack_colocation() > 2
