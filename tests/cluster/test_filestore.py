"""Tests for the file-level API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.filestore import FileStore
from repro.cluster.topology import ClusterTopology
from repro.erasure import LRCCode, RSCode
from repro.errors import ClusterError, ConfigurationError


@pytest.fixture
def store():
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    return FileStore(topo, RSCode(6, 3), chunk_size=64, rng=7)


class TestValidation:
    def test_requires_gf8(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        with pytest.raises(ConfigurationError):
            FileStore(topo, RSCode(6, 3, w=16))

    def test_positive_chunk_size(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        with pytest.raises(ConfigurationError):
            FileStore(topo, RSCode(6, 3), chunk_size=0)

    def test_empty_payload_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.write("x", b"")

    def test_duplicate_name_rejected(self, store):
        store.write("a", b"hello")
        with pytest.raises(ClusterError):
            store.write("a", b"world")

    def test_missing_file(self, store):
        with pytest.raises(ClusterError):
            store.stat("nope")


class TestWriteRead:
    def test_roundtrip_small(self, store):
        payload = b"the quick brown fox"
        info = store.write("fox", payload)
        assert info.size == len(payload)
        assert info.stripes == 1
        assert store.read("fox") == payload

    def test_roundtrip_multi_stripe(self, store):
        payload = bytes(range(256)) * 5  # 1280 B > 384 B/stripe
        info = store.write("big", payload)
        assert info.stripes == -(-len(payload) // store.stripe_payload)
        assert store.read("big") == payload

    def test_exact_stripe_boundary(self, store):
        payload = b"z" * store.stripe_payload
        info = store.write("exact", payload)
        assert info.stripes == 1
        assert store.read("exact") == payload

    def test_multiple_files_coexist(self, store):
        a, b = b"alpha" * 40, b"beta" * 77
        store.write("a", a)
        store.write("b", b)
        assert store.read("a") == a
        assert store.read("b") == b
        assert "a" in store and "c" not in store
        assert [f.name for f in store.files()] == ["a", "b"]

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=2000))
    def test_roundtrip_property(self, payload):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        store = FileStore(topo, RSCode(4, 3), chunk_size=32, rng=1)
        store.write("f", payload)
        assert store.read("f") == payload


class TestDegradedRead:
    def test_degraded_read_returns_payload(self, store):
        payload = bytes(range(200)) * 3
        store.write("f", payload)
        # Degrade every node in turn; reads must survive all of them.
        state = store.cluster_state()
        for node in range(state.topology.num_nodes):
            assert store.read_degraded("f", node) == payload

    def test_degraded_read_with_lrc(self):
        topo = ClusterTopology.from_rack_sizes([4, 4, 3, 3])
        store = FileStore(topo, LRCCode(k=4, l=2, g=2), chunk_size=32, rng=2)
        payload = b"locality" * 30
        store.write("f", payload)
        for node in range(topo.num_nodes):
            assert store.read_degraded("f", node) == payload


class TestClusterIntegration:
    def test_cluster_state_is_consistent(self, store):
        store.write("a", b"payload one" * 10)
        store.write("b", b"payload two" * 25)
        state = store.cluster_state()
        assert state.placement.num_stripes == store._num_stripes
        assert state.placement.is_rack_fault_tolerant()

    def test_recovery_runs_against_store(self, store):
        from repro.cluster.failure import FailureInjector
        from repro.recovery import CarStrategy, PlanExecutor, plan_recovery

        store.write("a", bytes(range(256)) * 4)
        state = store.cluster_state()
        event = FailureInjector(rng=3).fail_random_node(state)
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        assert PlanExecutor(state).execute(plan, solution).verified

    def test_scrubbing_runs_against_store(self, store):
        from repro.cluster.scrub import Scrubber

        store.write("a", b"scrub me" * 20)
        state = store.cluster_state()
        state.data.corrupt(0, 2, seed=5)
        report = Scrubber(state).scrub()
        assert report.corrupt_stripes == 1
        assert report.all_repaired
