"""Tests for scrubbing: corruption injection, detection, healing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.scrub import Scrubber
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure import LRCCode, RSCode
from repro.errors import ClusterError, UnknownChunkError


def make_state(code=None, stripes=5, seed=2):
    code = code or RSCode(4, 2)
    topo = ClusterTopology.from_rack_sizes([3, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=64, seed=seed)
    return ClusterState(topo, code, placement, data)


class TestDataStoreMutation:
    def test_corrupt_changes_bytes(self):
        state = make_state()
        original = state.data.corrupt(0, 1, seed=3)
        assert not np.array_equal(original, state.data.chunk(0, 1))

    def test_overwrite_roundtrip(self):
        state = make_state()
        original = state.data.corrupt(0, 1, seed=3)
        state.data.overwrite(0, 1, original)
        assert state.data.matches(0, 1, original)

    def test_overwrite_shape_checked(self):
        state = make_state()
        with pytest.raises(UnknownChunkError):
            state.data.overwrite(0, 1, np.zeros(3, dtype=np.uint8))


class TestDetection:
    def test_pristine_cluster_is_clean(self):
        state = make_state()
        report = Scrubber(state).scrub()
        assert report.clean_stripes == report.stripes_checked == 5
        assert not report.findings

    def test_corruption_detected(self):
        state = make_state()
        state.data.corrupt(2, 0, seed=1)
        scrubber = Scrubber(state)
        assert not scrubber.stripe_is_consistent(2)
        assert scrubber.stripe_is_consistent(1)

    def test_requires_data(self):
        code = RSCode(4, 2)
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        placement = RandomPlacementPolicy(rng=0).place(topo, 2, 4, 2)
        state = ClusterState(topo, code, placement)
        with pytest.raises(ClusterError):
            Scrubber(state)


class TestLocationAndHealing:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5), st.integers(0, 500))
    def test_single_corruption_located_exactly(self, chunk, seed):
        state = make_state(stripes=1)
        state.data.corrupt(0, chunk, seed=seed)
        assert Scrubber(state).locate_corruption(0) == chunk

    def test_heal_restores_ground_truth(self):
        state = make_state()
        pristine = state.data.corrupt(3, 4, seed=9)
        finding = Scrubber(state).heal_stripe(3)
        assert finding.repaired
        assert finding.chunk_index == 4
        assert state.data.matches(3, 4, pristine)
        assert Scrubber(state).stripe_is_consistent(3)

    def test_full_scrub_heals_everything(self):
        state = make_state()
        state.data.corrupt(0, 1, seed=1)
        state.data.corrupt(4, 5, seed=2)
        report = Scrubber(state).scrub()
        assert report.corrupt_stripes == 2
        assert report.all_repaired
        # A second pass is clean.
        second = Scrubber(state).scrub()
        assert second.clean_stripes == second.stripes_checked

    def test_double_corruption_not_isolated(self):
        """Two bad chunks in one stripe defeat single-exclusion."""
        state = make_state()
        state.data.corrupt(0, 0, seed=1)
        state.data.corrupt(0, 3, seed=2)
        finding = Scrubber(state).heal_stripe(0)
        assert finding.chunk_index is None
        assert not finding.repaired

    def test_scrub_works_for_lrc(self):
        code = LRCCode(k=4, l=2, g=2)
        state = make_state(code=code, stripes=3)
        state.data.corrupt(1, 2, seed=7)
        report = Scrubber(state).scrub()
        assert report.corrupt_stripes == 1
        assert report.all_repaired
        assert Scrubber(state).stripe_is_consistent(1)


class TestScrubMetrics:
    """Scrub passes publish their outcome into the metrics registry."""

    @staticmethod
    def counter_series(registry, name):
        metrics = registry.snapshot()["metrics"]
        if name not in metrics:
            return {}
        return {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in metrics[name]["series"]
        }

    def test_pass_and_outcomes_counted(self):
        from repro.obs.metrics import MetricsRegistry, telemetry_scope

        state = make_state()
        state.data.corrupt(1, 2, seed=9)
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            report = Scrubber(state).scrub()
        assert report.corrupt_stripes == 1
        assert self.counter_series(registry, "scrub.passes") == {(): 1}
        stripes = self.counter_series(registry, "scrub.stripes")
        assert stripes[(("outcome", "clean"),)] == report.clean_stripes
        assert stripes[(("outcome", "corrupt"),)] == 1
        findings = self.counter_series(registry, "scrub.findings")
        assert findings[(("outcome", "repaired"),)] == 1

    def test_unrepairable_counted_separately(self):
        from repro.obs.metrics import MetricsRegistry, telemetry_scope

        state = make_state()
        # Two corruptions in one stripe defeat single-exclusion location.
        state.data.corrupt(0, 0, seed=5)
        state.data.corrupt(0, 3, seed=6)
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            report = Scrubber(state).scrub()
        assert not report.all_repaired
        findings = self.counter_series(registry, "scrub.findings")
        assert findings.get((("outcome", "unrepairable"),), 0) >= 1

    def test_no_registry_no_side_effects(self):
        from repro.obs import metrics as _metrics

        assert _metrics.CURRENT is None
        state = make_state()
        state.data.corrupt(2, 1, seed=4)
        report = Scrubber(state).scrub()  # must not blow up unregistered
        assert report.all_repaired
