"""Tests for cluster state, data store, and stripe views."""

import numpy as np
import pytest

from repro.cluster.placement import RandomPlacementPolicy, RoundRobinPlacementPolicy
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import (
    NoFailureError,
    PlacementError,
    UnknownChunkError,
    UnknownNodeError,
)


class TestDataStore:
    def test_stripes_are_consistent(self, rs63):
        store = DataStore(rs63, 3, chunk_size=256, seed=1)
        for s in range(3):
            chunks = {i: store.chunk(s, i) for i in range(rs63.n)}
            # Any k chunks decode back to the stored data chunks.
            decoded = rs63.decode({i: chunks[i] for i in range(3, 9)})
            for i, buf in enumerate(decoded):
                assert np.array_equal(buf, chunks[i])

    def test_deterministic_by_seed(self, rs63):
        a = DataStore(rs63, 1, 64, seed=9)
        b = DataStore(rs63, 1, 64, seed=9)
        assert np.array_equal(a.chunk(0, 0), b.chunk(0, 0))

    def test_unknown_chunk(self, rs63):
        store = DataStore(rs63, 1, 64)
        with pytest.raises(UnknownChunkError):
            store.chunk(5, 0)

    def test_matches(self, rs63):
        store = DataStore(rs63, 1, 64)
        assert store.matches(0, 0, store.chunk(0, 0))
        assert not store.matches(0, 0, store.chunk(0, 1))

    def test_gf16_chunks(self):
        code = RSCode(3, 2, w=16)
        store = DataStore(code, 1, chunk_size=64)
        assert store.chunk(0, 0).dtype == np.uint16
        assert store.chunk(0, 0).nbytes == 64


class TestStateConstruction:
    def test_mismatched_code_rejected(self, small_topology):
        code = RSCode(6, 3)
        placement = RoundRobinPlacementPolicy().place(small_topology, 2, 4, 3)
        with pytest.raises(PlacementError):
            ClusterState(small_topology, code, placement)

    def test_mismatched_topology_rejected(self, rs63, small_topology):
        other = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RoundRobinPlacementPolicy().place(other, 2, 6, 3)
        with pytest.raises(PlacementError):
            ClusterState(small_topology, rs63, placement)

    def test_short_data_store_rejected(self, rs63, small_topology):
        placement = RoundRobinPlacementPolicy().place(small_topology, 5, 6, 3)
        data = DataStore(rs63, 2, 64)
        with pytest.raises(PlacementError):
            ClusterState(small_topology, rs63, placement, data)


class TestFailures:
    def test_fail_node_reports_lost_chunks(self, small_state):
        node = small_state.placement.node_of(0, 0)
        event = small_state.fail_node(node)
        assert event.failed_node == node
        assert (0, 0) in event.lost_chunks
        assert event.replacement_node == node
        assert event.failed_rack == small_state.topology.rack_of(node)

    def test_one_stripe_loses_at_most_one_chunk(self, small_state):
        event = small_state.fail_node(0)
        assert len(set(event.stripes)) == len(event.stripes)

    def test_double_failure_rejected(self, small_state):
        small_state.fail_node(0)
        with pytest.raises(NoFailureError):
            small_state.fail_node(1)

    def test_refailing_same_node_is_idempotent(self, small_state):
        a = small_state.fail_node(0)
        b = small_state.fail_node(0)
        assert a.lost_chunks == b.lost_chunks

    def test_heal_allows_new_failure(self, small_state):
        small_state.fail_node(0)
        small_state.heal()
        small_state.fail_node(1)

    def test_unknown_node_rejected(self, small_state):
        with pytest.raises(UnknownNodeError):
            small_state.fail_node(999)


class TestStripeView:
    def test_requires_failure(self, small_state):
        with pytest.raises(NoFailureError):
            small_state.stripe_view(0)
        with pytest.raises(NoFailureError):
            small_state.affected_stripes()

    def test_view_consistency(self, failed_state):
        for view in failed_state.views():
            # rack_counts is the survivors-per-rack histogram.
            assert sum(view.rack_counts) == failed_state.code.n - 1
            assert view.lost_chunk not in view.surviving
            assert len(view.surviving) == failed_state.code.n - 1
            assert view.failed_rack == failed_state.topology.rack_of(
                failed_state.failed_node
            )

    def test_unaffected_stripe_rejected(self, small_state):
        small_state.fail_node(0)
        unaffected = [
            s
            for s in range(small_state.placement.num_stripes)
            if s not in small_state.affected_stripes()
        ]
        if unaffected:  # layout-dependent; usually non-empty
            with pytest.raises(UnknownChunkError):
                small_state.stripe_view(unaffected[0])

    def test_chunks_in_rack(self, failed_state):
        view = failed_state.views()[0]
        topo = failed_state.topology
        for rack in range(topo.num_racks):
            chunks = view.chunks_in_rack(rack, topo)
            assert len(chunks) == view.rack_counts[rack]
            for c in chunks:
                assert topo.rack_of(view.surviving[c]) == rack

    def test_failed_rack_counts_exclude_lost_chunk(self, rs63):
        """c'_{f,j} = c_{f,j} - 1 when the failed node held a chunk (Eq. 1)."""
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=0).place(topo, 10, 6, 3)
        state = ClusterState(topo, rs63, placement)
        node = placement.node_of(0, 0)
        state.fail_node(node)
        view = state.stripe_view(0)
        f = topo.rack_of(node)
        assert view.rack_counts[f] == placement.rack_chunk_count(f, 0) - 1
