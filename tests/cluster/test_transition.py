"""Tests for the replication-to-erasure-coding transition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.cluster.transition import (
    RackAwareTransition,
    RandomTransition,
    ReplicatedStore,
)
from repro.errors import ClusterError, ConfigurationError


@pytest.fixture
def topo():
    return ClusterTopology.from_rack_sizes([4, 3, 3, 3, 3])


class TestReplicatedStore:
    def test_replicas_in_distinct_racks(self, topo):
        store = ReplicatedStore(topo, num_blocks=40, rng=1)
        for block in store.blocks:
            racks = store.replica_racks(block)
            assert len(racks) == block.replication == 3

    def test_replication_validated(self, topo):
        with pytest.raises(ConfigurationError):
            ReplicatedStore(topo, 5, replication=0)
        with pytest.raises(ConfigurationError):
            ReplicatedStore(topo, 5, replication=6)  # > 5 racks

    def test_reproducible(self, topo):
        a = ReplicatedStore(topo, 10, rng=7)
        b = ReplicatedStore(topo, 10, rng=7)
        assert [x.replica_nodes for x in a.blocks] == [
            x.replica_nodes for x in b.blocks
        ]


class TestTransitionPlans:
    def test_full_groups_only(self, topo):
        store = ReplicatedStore(topo, num_blocks=25, rng=2)
        plan = RackAwareTransition(k=6, m=3).plan(store)
        assert plan.stripes == 4  # 25 // 6

    def test_storage_reclaimed(self, topo):
        store = ReplicatedStore(topo, num_blocks=24, rng=2)
        plan = RackAwareTransition(k=6, m=3).plan(store)
        # Per stripe: 6 blocks * 2 surplus copies - 3 parities = 9.
        assert plan.storage_reclaimed_chunks == plan.stripes * 9

    def test_parity_spread_feasibility_checked(self):
        topo = ClusterTopology.from_rack_sizes([4, 4])
        store = ReplicatedStore(topo, 12, replication=2, rng=1)
        with pytest.raises(ClusterError):
            RackAwareTransition(k=4, m=2).plan(store)

    def test_invalid_km(self):
        with pytest.raises(ConfigurationError):
            RackAwareTransition(k=0, m=1)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_rack_aware_never_worse_than_random(self, seed):
        """The cited paper's claim, as an invariant."""
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3, 3])
        store = ReplicatedStore(topo, num_blocks=36, rng=seed)
        aware = RackAwareTransition(k=6, m=3).plan(store)
        blind = RandomTransition(k=6, m=3, rng=seed).plan(store)
        assert (
            aware.total_cross_rack_chunks <= blind.total_cross_rack_chunks
        )

    def test_rack_aware_strictly_better_on_average(self, topo):
        aware_total = blind_total = 0
        for seed in range(10):
            store = ReplicatedStore(topo, num_blocks=36, rng=seed)
            aware_total += RackAwareTransition(6, 3).plan(
                store
            ).total_cross_rack_chunks
            blind_total += RandomTransition(6, 3, rng=seed).plan(
                store
            ).total_cross_rack_chunks
        assert aware_total < blind_total

    def test_encoder_rack_has_most_replicas(self, topo):
        store = ReplicatedStore(topo, num_blocks=12, rng=3)
        transition = RackAwareTransition(k=6, m=3)
        plan = transition.plan(store)
        for idx, rack in enumerate(plan.encoder_racks):
            group = store.blocks[idx * 6 : (idx + 1) * 6]
            chosen_local = sum(
                1 for b in group if rack in store.replica_racks(b)
            )
            for other in range(topo.num_racks):
                other_local = sum(
                    1 for b in group if other in store.replica_racks(b)
                )
                assert chosen_local >= other_local

    def test_traffic_decomposition(self, topo):
        store = ReplicatedStore(topo, num_blocks=18, rng=4)
        plan = RackAwareTransition(k=6, m=3).plan(store)
        assert plan.total_cross_rack_chunks == (
            plan.cross_rack_block_fetches + plan.cross_rack_parity_sends
        )
        assert plan.cross_rack_parity_sends == plan.stripes * 3
