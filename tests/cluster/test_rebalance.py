"""Tests for cluster expansion and storage rebalancing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.rebalance import Rebalancer
from repro.cluster.topology import ClusterTopology
from repro.errors import ClusterError


def loads(topology, placement):
    return [
        len(placement.chunks_on_node(n.node_id)) for n in topology.nodes
    ]


class TestWithExtraNode:
    def test_ids_are_stable(self):
        topo = ClusterTopology.from_rack_sizes([3, 3])
        grown = topo.with_extra_node(0)
        assert grown.num_nodes == 7
        assert grown.rack_sizes() == (4, 3)
        # Existing ids keep their racks.
        for nid in range(6):
            assert grown.rack_of(nid) == topo.rack_of(nid)
        assert grown.rack_of(6) == 0
        assert grown.node(6).index_in_rack == 3

    def test_old_placement_valid_on_grown_topology(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3])
        placement = RandomPlacementPolicy(rng=1).place(topo, 10, 4, 3)
        grown = topo.with_extra_node(1)
        from repro.cluster.placement import Placement

        migrated = Placement(
            grown, 4, 3, dict(placement.iter_chunks())
        )
        assert migrated.is_rack_fault_tolerant()


class TestRebalancer:
    def make(self, seed=1, stripes=30):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, 6, 3)
        grown = topo.with_extra_node(2)
        from repro.cluster.placement import Placement

        placement = Placement(grown, 6, 3, dict(placement.iter_chunks()))
        return grown, placement

    def test_new_node_receives_chunks(self):
        grown, placement = self.make()
        new_node = grown.num_nodes - 1
        assert not placement.chunks_on_node(new_node)
        rebalancer = Rebalancer(grown)
        plan = rebalancer.plan(placement)
        after = rebalancer.apply(placement, plan)
        assert after.chunks_on_node(new_node)

    def test_load_spread_reaches_tolerance(self):
        grown, placement = self.make()
        rebalancer = Rebalancer(grown, tolerance=1)
        after = rebalancer.apply(placement, rebalancer.plan(placement))
        counts = loads(grown, after)
        assert max(counts) - min(counts) <= 1

    def test_constraints_preserved(self):
        grown, placement = self.make(seed=2)
        rebalancer = Rebalancer(grown)
        after = rebalancer.apply(placement, rebalancer.plan(placement))
        # Placement's constructor re-validates one-chunk-per-node; check
        # the rack cap explicitly.
        assert after.is_rack_fault_tolerant()

    def test_intra_rack_moves_preferred(self):
        """A same-rack imbalance is fixed without touching the core."""
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=3).place(topo, 30, 6, 3)
        grown = topo.with_extra_node(0)  # new node in the big rack
        from repro.cluster.placement import Placement

        placement = Placement(grown, 6, 3, dict(placement.iter_chunks()))
        plan = Rebalancer(grown).plan(placement)
        assert plan.total_moves > 0
        # Donors in rack 0 exist, so at least some moves stay in-rack.
        assert plan.intra_rack_moves > 0

    def test_total_chunk_count_invariant(self):
        grown, placement = self.make(seed=4)
        rebalancer = Rebalancer(grown)
        after = rebalancer.apply(placement, rebalancer.plan(placement))
        assert sum(loads(grown, after)) == sum(loads(grown, placement))

    def test_stale_plan_rejected(self):
        grown, placement = self.make(seed=5)
        rebalancer = Rebalancer(grown)
        plan = rebalancer.plan(placement)
        if not plan.moves:
            pytest.skip("already balanced")
        after = rebalancer.apply(placement, plan)
        with pytest.raises(ClusterError):
            rebalancer.apply(after, plan)  # chunks already moved

    def test_invalid_tolerance(self):
        grown, _ = self.make()
        with pytest.raises(ClusterError):
            Rebalancer(grown, tolerance=0)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 500))
    def test_rebalanced_cluster_still_recovers(self, seed):
        """End to end: expand, rebalance, fail a node, recover, verify."""
        from repro.cluster.state import ClusterState, DataStore
        from repro.cluster.failure import FailureInjector
        from repro.erasure import RSCode
        from repro.recovery import CarStrategy, PlanExecutor, plan_recovery

        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=seed).place(topo, 10, 6, 3)
        grown = topo.with_extra_node(seed % 4)
        from repro.cluster.placement import Placement

        placement = Placement(grown, 6, 3, dict(placement.iter_chunks()))
        rebalancer = Rebalancer(grown)
        placement = rebalancer.apply(placement, rebalancer.plan(placement))

        code = RSCode(6, 3)
        data = DataStore(code, 10, chunk_size=128, seed=seed)
        state = ClusterState(grown, code, placement, data)
        event = FailureInjector(rng=seed).fail_random_node(state)
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        assert PlanExecutor(state).execute(plan, solution).verified


class TestWithExtraNodeValidation:
    def test_invalid_rack_rejected(self):
        from repro.errors import UnknownNodeError

        topo = ClusterTopology.from_rack_sizes([2, 2])
        with pytest.raises(UnknownNodeError):
            topo.with_extra_node(5)

    def test_repeated_growth(self):
        topo = ClusterTopology.from_rack_sizes([2])
        for i in range(3):
            topo = topo.with_extra_node(0)
        assert topo.rack_sizes() == (5,)
        assert [n.node_id for n in topo.nodes] == [0, 1, 2, 3, 4]
