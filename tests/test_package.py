"""Package-level hygiene: exception hierarchy, exports, examples."""

import importlib
import pathlib
import py_compile

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if name == "ReproError" or not isinstance(cls, type):
                continue  # helpers like annotate_strategy are exported too
            assert issubclass(cls, errors.ReproError), name

    def test_dual_inheritance_for_stdlib_compat(self):
        """Key errors also subclass the stdlib types callers expect."""
        assert issubclass(errors.DivisionByZeroError, ZeroDivisionError)
        assert issubclass(errors.UnknownNodeError, KeyError)
        assert issubclass(errors.UnknownChunkError, KeyError)
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.InvalidCodeParametersError, ValueError)

    def test_branch_structure(self):
        assert issubclass(errors.SingularMatrixError, errors.CodingError)
        assert issubclass(errors.NoValidSolutionError, errors.RecoveryError)
        assert issubclass(errors.PlacementError, errors.ClusterError)
        assert issubclass(errors.FlowError, errors.SimulationError)

    def test_catching_base_class_is_sufficient(self):
        from repro.gf.field import GF8

        with pytest.raises(errors.ReproError):
            GF8.inv(0)


class TestRootExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for pkg in (
            "repro.gf",
            "repro.erasure",
            "repro.erasure.xorcodes",
            "repro.cluster",
            "repro.recovery",
            "repro.network",
            "repro.sim",
            "repro.workloads",
            "repro.analysis",
            "repro.experiments",
            "repro.io",
            "repro.cli",
        ):
            importlib.import_module(pkg)

    def test_subpackage_all_exports_resolve(self):
        for pkg_name in (
            "repro.gf",
            "repro.erasure",
            "repro.cluster",
            "repro.recovery",
            "repro.network",
            "repro.sim",
            "repro.workloads",
            "repro.analysis",
            "repro.experiments",
        ):
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"


class TestExamples:
    def test_all_examples_compile(self):
        examples = sorted(
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
        )
        assert len(examples) >= 3  # the deliverable floor; we ship more
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_examples_have_docstrings_and_main(self):
        examples = (pathlib.Path(__file__).parent.parent / "examples").glob(
            "*.py"
        )
        for path in examples:
            text = path.read_text()
            assert text.lstrip().startswith(("#!", '"""')), path.name
            assert "def main()" in text, path.name
            assert '__name__ == "__main__"' in text, path.name


class TestDocumentation:
    def test_design_and_experiments_docs_exist(self):
        root = pathlib.Path(__file__).parent.parent
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            content = (root / doc).read_text()
            assert len(content) > 1000, doc

    def test_public_modules_have_docstrings(self):
        import pkgutil

        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(
            package.__path__, prefix="repro."
        ):
            mod = importlib.import_module(info.name)
            assert mod.__doc__, f"{info.name} lacks a module docstring"
