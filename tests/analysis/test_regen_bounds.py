"""Property suite: regenerating-code repairs vs the analytic bounds.

Two families of properties, Hypothesis-driven over code parameters and
cluster seeds (mirroring the Theorem-1 brute-force suite style):

- **byte identity**: a rack-aware MSR single-node repair and a
  piggybacked-RS repair reproduce, byte for byte, what encoding placed
  on the lost node — on real numpy buffers, never on symbol counts;
- **bound compliance**: the traffic every kernel/strategy *measures*
  (packets actually shipped, chunk units actually accounted) never
  exceeds the analytic bound from :mod:`repro.analysis.bounds`, and the
  rack-aware MSR construction meets its cut-set bound with equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    piggyback_average_repair_cost,
    piggyback_data_repair_cost,
    rack_aware_msr_cross_rack,
)
from repro.cluster.failure import FailureInjector
from repro.erasure.piggyback import PiggybackRSCode, balanced_groups
from repro.erasure.regenerating import RackAwareMSRCode
from repro.experiments.configs import ALL_CFS, build_state
from repro.recovery.regenerating import (
    PiggybackStrategy,
    RackAwareMSRStrategy,
    rack_msr_params,
)


def _packets(count: int, size: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size, dtype=np.uint8) for _ in range(count)
    ]


@st.composite
def rack_msr_codes(draw):
    kbar = draw(st.integers(2, 3))
    dbar = 2 * kbar - 2
    nbar = draw(st.integers(dbar + 1, dbar + 3))
    u = draw(st.integers(1, 3))
    return RackAwareMSRCode(nbar, kbar, u)


class TestRackMSRByteIdentity:
    @settings(max_examples=25, deadline=None)
    @given(rack_msr_codes(), st.integers(0, 10_000))
    def test_repair_matches_encode(self, code, seed):
        """Every (rack, slot) repair is byte-identical to the encoded
        content, from exactly dbar cross-rack packets."""
        contents = code.encode(_packets(code.B, 64, seed))
        helper_racks = [r for r in range(code.nbar)][: code.dbar + 1]
        for failed_rack in range(code.nbar):
            helpers = [r for r in helper_racks if r != failed_rack]
            helpers = (helpers + [
                r for r in range(code.nbar)
                if r != failed_rack and r not in helpers
            ])[: code.dbar]
            for slot in range(code.u):
                symbols = {
                    h: code.repair_symbol(
                        h, failed_rack, slot, contents[h][slot]
                    )
                    for h in helpers
                }
                # Measured cross-rack traffic: one packet per helper rack.
                assert len(symbols) == code.cross_rack_repair_packets()
                rebuilt = code.repair_node(failed_rack, slot, symbols)
                for got, want in zip(rebuilt, contents[failed_rack][slot]):
                    assert np.array_equal(got, want)

    @settings(max_examples=25, deadline=None)
    @given(rack_msr_codes(), st.integers(0, 10_000))
    def test_decode_from_any_kbar_racks(self, code, seed):
        packets = _packets(code.B, 32, seed)
        contents = code.encode(packets)
        racks = {r: contents[r] for r in range(code.kbar)}
        decoded = code.decode(racks)
        for got, want in zip(decoded, packets):
            assert np.array_equal(got, want)


class TestRackMSRBoundCompliance:
    @settings(max_examples=50, deadline=None)
    @given(rack_msr_codes())
    def test_kernel_meets_cut_set_bound_with_equality(self, code):
        """Cross-rack download per repaired node == the Chen-Barg bound
        (alpha packets stored, dbar shipped)."""
        bound = rack_aware_msr_cross_rack(code.alpha, code.kbar, code.dbar)
        assert code.cross_rack_repair_packets() == pytest.approx(bound)
        assert code.cross_rack_chunk_units() == pytest.approx(
            rack_aware_msr_cross_rack(1.0, code.kbar, code.dbar)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(ALL_CFS),
        st.integers(0, 2**20),
        st.integers(5, 25),
    )
    def test_strategy_never_exceeds_bound(self, config, seed, stripes):
        """Measured per-stripe cross-rack units of the RackMSR strategy
        equal the analytic bound on every rack-aligned cluster."""
        state = build_state(
            config, seed, num_stripes=stripes,
            placement_policy="rack_aligned",
        )
        FailureInjector(rng=seed).fail_random_node(state)
        strategy = RackAwareMSRStrategy()
        solution = strategy.solve(state)
        kbar, dbar = rack_msr_params(config.num_racks)
        bound = rack_aware_msr_cross_rack(1.0, kbar, dbar)
        for sol in solution:
            measured = sum(sol.cross_rack_chunks(True).values())
            assert measured <= bound + 1e-9
            assert measured == pytest.approx(bound)


@st.composite
def piggyback_codes(draw):
    m = draw(st.integers(2, 4))
    k = draw(st.integers(m - 1, 8))
    return PiggybackRSCode(k, m)


class TestPiggybackByteIdentity:
    @settings(max_examples=25, deadline=None)
    @given(piggyback_codes(), st.integers(0, 10_000))
    def test_data_repair_matches_encode(self, code, seed):
        halves = _packets(2 * code.k, 64, seed)
        a, b = halves[: code.k], halves[code.k :]
        encoded = code.encode(a, b)
        store = {
            (i, "a"): encoded[i][0] for i in range(code.n)
        } | {
            (i, "b"): encoded[i][1] for i in range(code.n)
        }
        for i in range(code.k):
            sources = code.data_repair_sources(i)
            rebuilt_a, rebuilt_b = code.repair_data(
                i, {src: store[src] for src in sources}
            )
            assert np.array_equal(rebuilt_a, a[i])
            assert np.array_equal(rebuilt_b, b[i])

    @settings(max_examples=15, deadline=None)
    @given(piggyback_codes(), st.integers(0, 10_000))
    def test_parity_repair_matches_encode(self, code, seed):
        halves = _packets(2 * code.k, 32, seed)
        a, b = halves[: code.k], halves[code.k :]
        encoded = code.encode(a, b)
        store = {
            (i, h): encoded[i][0 if h == "a" else 1]
            for i in range(code.k)
            for h in code.HALVES
        }
        for p in range(code.k, code.n):
            got_a, got_b = code.repair_parity(p, store)
            assert np.array_equal(got_a, encoded[p][0])
            assert np.array_equal(got_b, encoded[p][1])


class TestPiggybackBoundCompliance:
    @settings(max_examples=50, deadline=None)
    @given(piggyback_codes())
    def test_source_count_matches_cost_formula(self, code):
        """Measured download (0.5 units per half) == (k + |G|) / 2 and
        always undercuts the RS baseline of k chunk units."""
        for i in range(code.k):
            sources = code.data_repair_sources(i)
            measured = 0.5 * len(sources)
            group_size = len(code.groups[code.group_of(i)])
            assert measured == pytest.approx(
                piggyback_data_repair_cost(code.k, group_size)
            )
            assert measured == pytest.approx(code.data_repair_cost(i))
            # Strict saving whenever the group is a proper subset of the
            # data set; degenerate single-group codes tie with RS.
            if group_size < code.k:
                assert measured < code.k
            else:
                assert measured == pytest.approx(float(code.k))
        assert code.average_data_repair_cost() == pytest.approx(
            piggyback_average_repair_cost(code.k, code.m)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(ALL_CFS),
        st.integers(0, 2**20),
        st.integers(5, 25),
    )
    def test_strategy_never_exceeds_bound(self, config, seed, stripes):
        """Measured cross-rack units of the Piggyback strategy never
        exceed the per-stripe analytic cost (data: (k+|G|)/2; parity: k)
        on the paper's random placements."""
        state = build_state(config, seed, num_stripes=stripes)
        FailureInjector(rng=seed).fail_random_node(state)
        solution = PiggybackStrategy().solve(state)
        groups = balanced_groups(config.k, config.m)
        for sol in solution:
            measured = sum(sol.cross_rack_chunks(False).values())
            if sol.lost_chunk < config.k:
                size = next(
                    len(g) for g in groups if sol.lost_chunk in g
                )
                bound = piggyback_data_repair_cost(config.k, size)
            else:
                bound = float(config.k)
            assert measured <= bound + 1e-9
