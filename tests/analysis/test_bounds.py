"""Tests for the cut-set bound and trade-off points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    cut_set_capacity,
    is_feasible,
    mbr_point,
    msr_point,
    tradeoff_curve,
)
from repro.errors import ConfigurationError


class TestCornerPoints:
    def test_msr_matches_pm_construction(self):
        """For d = 2k-2: alpha = B/k = k-1 with B = k(k-1); gamma = 2(k-1)
        — exactly the PM-MSR code's numbers."""
        k = 4
        B = k * (k - 1)
        pt = msr_point(B, n=10, k=k, d=2 * k - 2)
        assert pt.alpha == pytest.approx(k - 1)
        assert pt.gamma == pytest.approx(2 * (k - 1))

    def test_msr_gamma_below_rs(self):
        """MSR repairs cheaper than whole-file download for d > k."""
        pt = msr_point(12.0, n=10, k=4, d=6)
        assert pt.gamma < 12.0

    def test_mbr_alpha_equals_gamma(self):
        pt = mbr_point(12.0, n=10, k=4, d=6)
        assert pt.alpha == pt.gamma

    def test_mbr_gamma_below_msr_gamma(self):
        msr = msr_point(12.0, n=10, k=4, d=6)
        mbr = mbr_point(12.0, n=10, k=4, d=6)
        assert mbr.gamma <= msr.gamma
        assert mbr.alpha >= msr.alpha

    def test_d_equals_k_degenerates_to_rs(self):
        """With d = k the MSR point's repair equals the file size
        (no regeneration benefit) — the RS baseline."""
        pt = msr_point(12.0, n=10, k=4, d=4)
        assert pt.gamma == pytest.approx(12.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            msr_point(1.0, n=4, k=4, d=4)  # k must be <= n-1
        with pytest.raises(ConfigurationError):
            msr_point(1.0, n=10, k=4, d=3)  # d >= k


class TestCutSet:
    def test_capacity_formula(self):
        # k=2, d=3, alpha=2, beta=1: min(2,3) + min(2,2) = 4
        assert cut_set_capacity(2.0, 1.0, k=2, d=3) == pytest.approx(4.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            cut_set_capacity(-1.0, 1.0, k=2, d=3)

    def test_corner_points_are_feasible_and_tight(self):
        B, n, k, d = 12.0, 10, 4, 6
        for pt in (msr_point(B, n, k, d), mbr_point(B, n, k, d)):
            assert is_feasible(B, pt.alpha, pt.gamma, k, d)
            # Shrinking either coordinate by 5 % breaks feasibility.
            assert not is_feasible(B, pt.alpha * 0.95, pt.gamma * 0.95, k, d)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 6),
        st.integers(0, 4),
        st.floats(1.0, 50.0),
    )
    def test_msr_always_feasible(self, k, extra_d, file_size):
        d = k + extra_d
        n = d + 2
        pt = msr_point(file_size, n, k, d)
        assert is_feasible(file_size, pt.alpha, pt.gamma, k, d)


class TestCurve:
    def test_endpoints_are_corners(self):
        B, n, k, d = 12.0, 10, 4, 6
        curve = tradeoff_curve(B, n, k, d, points=5)
        msr = msr_point(B, n, k, d)
        mbr = mbr_point(B, n, k, d)
        assert curve[0].alpha == pytest.approx(msr.alpha)
        assert curve[-1].alpha == pytest.approx(mbr.alpha)
        assert curve[0].gamma == pytest.approx(msr.gamma, rel=1e-6)
        assert curve[-1].gamma == pytest.approx(mbr.gamma, rel=1e-6)

    def test_gamma_monotone_decreasing_in_alpha(self):
        curve = tradeoff_curve(12.0, 10, 4, 6, points=8)
        gammas = [p.gamma for p in curve]
        for a, b in zip(gammas, gammas[1:]):
            assert b <= a + 1e-6

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            tradeoff_curve(1.0, 10, 4, 6, points=1)


class TestLandscape:
    def test_landscape_shape(self):
        from repro.analysis.landscape import repair_landscape
        from repro.experiments.configs import CFS1

        rows = repair_landscape(CFS1, runs=2, num_stripes=20)
        by_scheme = {r.scheme: r for r in rows}
        rr = by_scheme["RS + RR"]
        car = by_scheme["RS + CAR"]
        # CAR reduces cross-rack traffic at equal total/overhead.
        assert car.cross_rack_chunks < rr.cross_rack_chunks
        assert car.total_chunks == rr.total_chunks
        # LRC: zero cross-rack with aligned groups, more storage.
        lrc = next(r for r in rows if r.scheme.startswith("LRC"))
        assert lrc.cross_rack_chunks == 0.0
        assert lrc.storage_overhead > car.storage_overhead
        # MSR: total repair traffic 2 chunks.
        msr = next(r for r in rows if r.scheme.startswith("PM-MSR"))
        assert msr.total_chunks == pytest.approx(2.0)

    def test_landscape_validates_lrc_groups(self):
        from repro.analysis.landscape import repair_landscape
        from repro.experiments.configs import CFS1

        with pytest.raises(ConfigurationError):
            repair_landscape(CFS1, lrc_groups=3)  # 3 does not divide 4
