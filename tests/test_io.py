"""Tests for JSON serialization of experiment artefacts."""

import pytest

from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.errors import ConfigurationError
from repro.io import (
    load_json,
    placement_from_dict,
    placement_to_dict,
    save_json,
    topology_from_dict,
    topology_to_dict,
    trace_from_dict,
    trace_to_dict,
    traffic_report_to_dict,
)
from repro.workloads.traces import FailureTraceGenerator


class TestTopology:
    def test_roundtrip_default_bandwidth(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3])
        back = topology_from_dict(topology_to_dict(topo))
        assert back.rack_sizes() == topo.rack_sizes()
        assert back.bandwidth == topo.bandwidth

    def test_roundtrip_finite_core(self):
        topo = ClusterTopology.from_rack_sizes(
            [2, 2],
            bandwidth=BandwidthProfile(
                node_nic_gbps=10, rack_uplink_gbps=2.5, core_gbps=40
            ),
        )
        back = topology_from_dict(topology_to_dict(topo))
        assert back.bandwidth.core_gbps == 40

    def test_infinite_core_round_trips_as_null(self):
        topo = ClusterTopology.from_rack_sizes([2, 2])
        data = topology_to_dict(topo)
        assert data["bandwidth"]["core_gbps"] is None
        assert topology_from_dict(data).bandwidth.core_gbps == float("inf")

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            topology_from_dict({"kind": "placement"})

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            topology_from_dict({"kind": "topology", "rack_sizes": [2]})


class TestPlacement:
    def test_roundtrip(self):
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=5).place(topo, 6, 6, 3)
        back = placement_from_dict(placement_to_dict(placement))
        assert dict(back.iter_chunks()) == dict(placement.iter_chunks())
        assert (back.k, back.m) == (6, 3)
        assert back.is_rack_fault_tolerant()

    def test_json_serializable(self, tmp_path):
        import json

        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        placement = RandomPlacementPolicy(rng=1).place(topo, 2, 3, 2)
        text = json.dumps(placement_to_dict(placement))
        back = placement_from_dict(json.loads(text))
        assert dict(back.iter_chunks()) == dict(placement.iter_chunks())

    def test_tampered_assignment_revalidated(self):
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        placement = RandomPlacementPolicy(rng=1).place(topo, 1, 3, 2)
        data = placement_to_dict(placement)
        data["assignment"] = data["assignment"][:-1]  # drop a chunk
        from repro.errors import PlacementError

        with pytest.raises(PlacementError):
            placement_from_dict(data)


class TestTrace:
    def test_roundtrip(self):
        trace = FailureTraceGenerator(5, mtbf_hours=50, seed=3).generate(300)
        back = trace_from_dict(trace_to_dict(trace))
        assert back.events == trace.events
        assert back.horizon_hours == trace.horizon_hours

    def test_wrong_kind(self):
        with pytest.raises(ConfigurationError):
            trace_from_dict({"kind": "topology"})


class TestFiles:
    def test_save_load(self, tmp_path):
        topo = ClusterTopology.from_rack_sizes([2, 2, 2])
        path = tmp_path / "topo.json"
        save_json(path, topology_to_dict(topo))
        back = topology_from_dict(load_json(path))
        assert back.rack_sizes() == (2, 2, 2)


class TestReportExport:
    def test_traffic_report_export(self):
        from repro.recovery.metrics import TrafficReport

        report = TrafficReport(
            strategy="CAR",
            chunk_size_bytes=1024,
            per_rack_chunks=(0, 2, 1),
            failed_rack=0,
            lambda_rate=1.33,
            num_stripes=3,
        )
        data = traffic_report_to_dict(report)
        assert data["total_bytes"] == 3 * 1024
        assert data["per_rack_chunks"] == [0, 2, 1]
        import json

        json.dumps(data)  # must be JSON-clean
