"""CLI durability commands: scrub, durable, resume, validate_journal."""

import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import validate_journal  # noqa: E402  (tools/ is not a package)


class TestParser:
    def test_new_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["durable", "j.jsonl", "--crash-after", "5",
             "--strategy", "direct", "--config", "CFS2"]
        )
        assert args.experiment == "durable"
        assert args.path == "j.jsonl"
        assert args.crash_after == 5
        assert args.strategy == "direct"
        assert args.config == "CFS2"

    @pytest.mark.parametrize("command", ["durable", "resume"])
    def test_journal_path_is_required(self, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command])
        assert excinfo.value.code == 2


class TestScrubCommand:
    def test_scrub_reports_and_heals(self, capsys):
        rc = main(["scrub", "--stripes", "10", "--corrupt", "2",
                   "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "checked : 10 stripes" in out
        assert "all repaired: yes" in out
        assert "scrub.passes=1" in out
        assert "scrub.findings=2" in out

    def test_scrub_clean_cluster(self, capsys):
        rc = main(["scrub", "--stripes", "6", "--corrupt", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "corrupt : 0" in out


class TestDurableCommands:
    def test_crash_then_resume_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        rc = main(["durable", journal, "--seed", "4", "--stripes", "8",
                   "--crash-after", "7"])
        out = capsys.readouterr().out
        assert rc == 3
        assert "coordinator crashed after 7 journal records" in out
        assert f"repro-car resume {journal}" in out

        rc = main(["resume", journal])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified: yes" in out
        assert "(resumed)" in out

    def test_uninterrupted_durable_run(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        rc = main(["durable", journal, "--seed", "4", "--stripes", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified: yes" in out
        assert "0 replayed" in out

    def test_crash_during_resume_exits_3(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["durable", journal, "--seed", "4", "--stripes", "8",
                     "--crash-after", "6"]) == 3
        capsys.readouterr()
        assert main(["resume", journal, "--crash-after", "2"]) == 3
        capsys.readouterr()
        assert main(["resume", journal]) == 0
        assert "verified: yes" in capsys.readouterr().out


class TestValidateJournalTool:
    def test_ok_on_complete_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        main(["durable", journal, "--seed", "4", "--stripes", "6"])
        capsys.readouterr()
        rc = validate_journal.main([journal])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out and "complete" in out

    def test_ok_on_crashed_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        main(["durable", journal, "--seed", "4", "--stripes", "8",
              "--crash-after", "7"])
        capsys.readouterr()
        rc = validate_journal.main([journal])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crashed" in out and "pending" in out

    def test_invalid_on_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 1, "rec": "mystery"}\n{"seq": 2}\n')
        rc = validate_journal.main([str(bad)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "INVALID" in err

    def test_usage_error(self, capsys):
        assert validate_journal.main([]) == 2
        assert "usage" in capsys.readouterr().err
