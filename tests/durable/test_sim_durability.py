"""Durability costs (journal appends, checksum verifies) in sim time."""

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.network.links import FabricModel
from repro.recovery.baselines import CarStrategy
from repro.recovery.planner import plan_recovery
from repro.sim import DurabilityCostModel, RecoverySimulator
from repro.sim.hardware import HardwareModel
from repro.sim.recovery_sim import build_tasks

MB = 1 << 20


def failed_cluster(seed=0, stripes=8):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, 6, 3)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def planned(seed=0):
    state, event = failed_cluster(seed)
    solution = CarStrategy().solve(state)
    return state, plan_recovery(state, event, solution)


class TestCostModel:
    def test_verify_cost_scales_with_bytes(self):
        model = DurabilityCostModel()
        assert model.verify_seconds(4 * MB) == pytest.approx(
            4 * MB / model.checksum_bytes_per_second
        )
        assert model.commit_seconds(4 * MB) == pytest.approx(
            model.journal_append_seconds + model.verify_seconds(4 * MB)
        )

    def test_task_graph_gains_durable_tasks(self):
        state, plan = planned()
        fabric = FabricModel(state.topology)
        hardware = HardwareModel(state.topology)
        plain = build_tasks(state, plan, fabric, hardware, MB)
        durable = build_tasks(
            state, plan, fabric, hardware, MB,
            durability=DurabilityCostModel(),
        )
        plain_tags = {t.tag for t in plain}
        durable_tags = {t.tag for t in durable}
        assert not any(tag.startswith("durable") for tag in plain_tags)
        assert "durable:journal" in durable_tags
        assert "durable:verify" in durable_tags
        # Every stripe pays one intent and one commit append.
        journal_tasks = [t for t in durable if t.tag == "durable:journal"]
        assert len(journal_tasks) == 2 * len(plan.stripe_plans)


class TestSimulatedTiming:
    def test_durability_time_is_charged(self):
        state, plan = planned()
        plain = RecoverySimulator(state).simulate(plan, MB)
        durable = RecoverySimulator(
            state, durability=DurabilityCostModel()
        ).simulate(plan, MB)
        assert plain.durability_time == 0.0
        assert durable.durability_time > 0.0
        assert durable.total_time > plain.total_time

    def test_durability_time_deterministic(self):
        state, plan = planned()
        model = DurabilityCostModel()
        a = RecoverySimulator(state, durability=model).simulate(plan, MB)
        b = RecoverySimulator(state, durability=model).simulate(plan, MB)
        assert a.durability_time == b.durability_time
        assert a.total_time == b.total_time

    def test_costless_model_adds_no_time(self):
        state, plan = planned()
        free = DurabilityCostModel(
            journal_append_seconds=0.0,
            checksum_bytes_per_second=float("inf"),
        )
        plain = RecoverySimulator(state).simulate(plan, MB)
        durable = RecoverySimulator(state, durability=free).simulate(
            plan, MB
        )
        assert durable.durability_time == 0.0
        assert durable.total_time == pytest.approx(plain.total_time)
