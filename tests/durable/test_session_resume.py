"""RecoverySession: run, crash, resume — and the runner-level helpers."""

import numpy as np
import pytest

from repro.durable.journal import JournalReplay, RecoveryJournal
from repro.durable.session import RecoverySession
from repro.errors import CoordinatorCrashError, JournalError
from repro.experiments.configs import CFS1
from repro.experiments.runner import (
    resume_durable_recovery,
    run_durable_recovery,
)
from repro.recovery import CarStrategy, RandomRecoveryStrategy

from tests.durable.conftest import build_failed_cluster


def session_for(state, event, path, **kwargs):
    return RecoverySession(state, event, CarStrategy(), path, **kwargs)


class TestUninterruptedRun:
    def test_run_produces_verified_complete_journal(self, failed_cluster,
                                                    tmp_path):
        state, event = failed_cluster
        path = tmp_path / "j.jsonl"
        out = session_for(state, event, path).run()
        assert out.verified
        assert set(out.executed) == set(state.affected_stripes())
        assert out.replayed == ()
        replay = JournalReplay.load(path)
        assert replay.complete
        assert set(replay.committed) == set(out.executed)
        # Ground truth: every committed payload matches the lost chunk.
        for stripe, lost in event.lost_chunks:
            assert state.data.matches(
                stripe, lost, replay.committed_chunk(stripe)
            )

    def test_live_equals_logical_without_crashes(self, failed_cluster,
                                                 tmp_path):
        state, event = failed_cluster
        out = session_for(state, event, tmp_path / "j.jsonl").run()
        assert out.live_cross_rack_bytes == out.cross_rack_bytes
        assert out.live_intra_rack_bytes == out.intra_rack_bytes

    def test_header_is_self_describing(self, failed_cluster, tmp_path):
        state, event = failed_cluster
        path = tmp_path / "j.jsonl"
        session_for(state, event, path,
                    session_meta={"config": "CFS2", "seed": 7}).run()
        header = JournalReplay.load(path).session
        assert header["strategy"] == "CarStrategy"
        assert header["failed_node"] == event.failed_node
        assert header["chunk_size"] == state.data.chunk_size
        assert header["config"] == "CFS2"
        assert header["seed"] == 7


class TestCrashAndResume:
    def test_resume_is_byte_identical_to_uninterrupted(self, tmp_path):
        state, event = build_failed_cluster()
        base = session_for(state, event, tmp_path / "base.jsonl").run()

        state2, event2 = build_failed_cluster()
        path = tmp_path / "crashed.jsonl"
        with pytest.raises(CoordinatorCrashError):
            session_for(state2, event2, path,
                        crash_after_records=8).run()
        out = session_for(state2, event2, path).resume()
        assert out.verified
        assert set(out.replayed) | set(out.executed) == set(base.executed)
        assert set(out.reconstructed) == set(base.reconstructed)
        for stripe in base.reconstructed:
            assert np.array_equal(out.reconstructed[stripe],
                                  base.reconstructed[stripe])
        # Logical traffic of the whole session matches the baseline:
        # committed stripes charge once, from their commit records.
        assert out.cross_rack_bytes == base.cross_rack_bytes
        assert out.intra_rack_bytes == base.intra_rack_bytes

    def test_replayed_stripes_ship_no_new_traffic(self, tmp_path):
        state, event = build_failed_cluster()
        path = tmp_path / "j.jsonl"
        # Crash late enough that at least one stripe committed.
        crashed = None
        for crash_at in range(5, 40):
            state, event = build_failed_cluster()
            try:
                session_for(state, event, path,
                            crash_after_records=crash_at).run()
            except CoordinatorCrashError:
                if JournalReplay.load(path).committed:
                    crashed = crash_at
                    break
            else:
                pytest.skip("journal too short to crash mid-commit")
        assert crashed is not None
        replay = JournalReplay.load(path)
        committed = set(replay.committed)
        state2, event2 = build_failed_cluster()
        out = session_for(state2, event2, path).resume()
        assert committed <= set(out.replayed)
        # Live traffic covers only the pending stripes, so it is
        # strictly below the logical whole-session figure.
        assert out.live_cross_rack_bytes < out.cross_rack_bytes

    def test_resume_of_complete_journal_replays_everything(self,
                                                           failed_cluster,
                                                           tmp_path):
        state, event = failed_cluster
        path = tmp_path / "j.jsonl"
        base = session_for(state, event, path).run()
        out = session_for(state, event, path).resume()
        assert out.verified
        assert out.executed == ()
        assert set(out.replayed) == set(base.executed)
        assert out.live_cross_rack_bytes == 0
        for stripe in base.reconstructed:
            assert np.array_equal(out.reconstructed[stripe],
                                  base.reconstructed[stripe])

    def test_resume_is_itself_crash_resumable(self, tmp_path):
        state, event = build_failed_cluster()
        path = tmp_path / "j.jsonl"
        with pytest.raises(CoordinatorCrashError):
            session_for(state, event, path, crash_after_records=6).run()
        # The resume crashes too; the next resume finishes the job.
        state2, event2 = build_failed_cluster()
        with pytest.raises(CoordinatorCrashError):
            session_for(state2, event2, path,
                        crash_after_records=4).resume()
        state3, event3 = build_failed_cluster()
        out = session_for(state3, event3, path).resume()
        assert out.verified
        replay = JournalReplay.load(path)
        assert replay.complete
        assert sum(1 for r in replay.records if r["rec"] == "resume") == 2

    def test_resume_with_mismatched_strategy_fails(self, tmp_path):
        state, event = build_failed_cluster()
        path = tmp_path / "j.jsonl"
        with pytest.raises(CoordinatorCrashError):
            session_for(state, event, path, crash_after_records=6).run()
        # A strategy that no longer covers the pending stripes must be
        # rejected, not silently produce a partial recovery.
        from repro.recovery.solution import MultiStripeSolution

        class DroppingStrategy(CarStrategy):
            def solve(self, state):
                full = super().solve(state)
                return MultiStripeSolution(
                    list(full.solutions)[1:],
                    num_racks=full.num_racks,
                    aggregated=full.aggregated,
                )

        state2, event2 = build_failed_cluster()
        bad = RecoverySession(state2, event2, DroppingStrategy(), path)
        with pytest.raises(JournalError, match="pending stripes"):
            bad.resume()


class TestRunnerHelpers:
    def test_run_then_resume_across_rebuilt_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        base = run_durable_recovery(CFS1, tmp_path / "base.jsonl",
                                    seed=3, num_stripes=6)
        with pytest.raises(CoordinatorCrashError):
            run_durable_recovery(CFS1, path, seed=3, num_stripes=6,
                                 crash_after_records=7)
        # resume_durable_recovery rebuilds the cluster purely from the
        # journal header — nothing is shared with the crashed run.
        out = resume_durable_recovery(path)
        assert out.verified
        assert set(out.reconstructed) == set(base.reconstructed)
        for stripe in base.reconstructed:
            assert np.array_equal(out.reconstructed[stripe],
                                  base.reconstructed[stripe])

    def test_direct_strategy_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with pytest.raises(CoordinatorCrashError):
            run_durable_recovery(CFS1, path, seed=5, num_stripes=6,
                                 strategy="direct", crash_after_records=6)
        out = resume_durable_recovery(path)
        assert out.verified
        header = JournalReplay.load(path).session
        assert header["strategy_label"] == "direct"
        assert header["strategy"] == RandomRecoveryStrategy.__name__

    def test_resume_rejects_non_self_describing_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RecoveryJournal(path)
        journal.begin_session({"stripes": [0]})
        journal.stripe_intent(0, aggregated=True, lost_chunk=1)
        journal.close()
        with pytest.raises(JournalError, match="self-describing"):
            resume_durable_recovery(path)

    def test_unknown_strategy_label_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown durable"):
            run_durable_recovery(CFS1, tmp_path / "j.jsonl",
                                 strategy="quantum")
