"""Chunk checksums and journal payload round trips."""

import numpy as np
import pytest

from repro.durable import chunk_checksum, decode_payload, encode_payload
from repro.errors import JournalError


class TestChunkChecksum:
    def test_deterministic_and_content_sensitive(self):
        buf = np.arange(256, dtype=np.uint8)
        assert chunk_checksum(buf) == chunk_checksum(buf.copy())
        flipped = buf.copy()
        flipped[17] ^= 1
        assert chunk_checksum(flipped) != chunk_checksum(buf)

    def test_bytes_and_array_agree(self):
        buf = np.arange(64, dtype=np.uint8)
        assert chunk_checksum(buf) == chunk_checksum(buf.tobytes())

    def test_non_contiguous_array(self):
        buf = np.arange(128, dtype=np.uint8)[::2]
        assert chunk_checksum(buf) == chunk_checksum(
            np.ascontiguousarray(buf)
        )

    def test_fits_in_uint32(self):
        checksum = chunk_checksum(np.zeros(16, dtype=np.uint8))
        assert 0 <= checksum <= 0xFFFFFFFF


class TestPayloadRoundTrip:
    def test_round_trip_is_byte_identical(self):
        rng = np.random.default_rng(3)
        buf = rng.integers(0, 256, size=512, dtype=np.uint8)
        out = decode_payload(encode_payload(buf))
        assert out.dtype == buf.dtype
        assert np.array_equal(out, buf)

    def test_decoded_buffer_is_writable(self):
        buf = np.arange(32, dtype=np.uint8)
        out = decode_payload(encode_payload(buf))
        out[0] ^= 0xFF  # frombuffer alone would be read-only

    def test_tampered_payload_is_rejected(self):
        record = encode_payload(np.arange(64, dtype=np.uint8))
        tampered = dict(record, checksum=record["checksum"] ^ 1)
        with pytest.raises(JournalError, match="checksum mismatch"):
            decode_payload(tampered)

    @pytest.mark.parametrize("breakage", [
        {"payload": "!!not base64!!"},
        {"dtype": "no-such-dtype"},
        {"payload": None},
    ], ids=["bad-base64", "bad-dtype", "none-payload"])
    def test_malformed_record_is_rejected(self, breakage):
        record = dict(encode_payload(np.arange(8, dtype=np.uint8)),
                      **breakage)
        with pytest.raises(JournalError, match="malformed"):
            decode_payload(record)

    def test_missing_key_is_rejected(self):
        record = encode_payload(np.arange(8, dtype=np.uint8))
        del record["checksum"]
        with pytest.raises(JournalError, match="malformed"):
            decode_payload(record)
