"""Crash-at-every-point: kill the coordinator at each record boundary.

The exhaustive version of the resume contract.  For each strategy the
uninterrupted run writes N journal records; we then re-run the whole
recovery N times, crashing after record 1, 2, ..., N, resuming (as many
times as it takes — a resume can itself land on the crash boundary
again), and demand:

- the final reconstruction is byte-identical to the uninterrupted run;
- the journal validates and ends complete;
- the cross-rack transfers actually shipped never exceed the
  uninterrupted count by more than one stripe's worth per crash (only
  the stripe in flight when the crash hit is re-shipped).
"""

import numpy as np
import pytest

from repro.durable.journal import JournalReplay
from repro.durable.session import RecoverySession
from repro.errors import CoordinatorCrashError
from repro.recovery import CarStrategy, RandomRecoveryStrategy

from tests.durable.conftest import build_failed_cluster

SEED = 7
STRIPES = 5


def make_strategy(name):
    return CarStrategy() if name == "car" else RandomRecoveryStrategy(
        rng=SEED
    )


def run_to_completion(path, strategy_name, crash_after):
    """One crashed run plus however many resumes it takes.

    ``crash_after`` applies to the *first* incarnation only; resumes run
    crash-free (each crash point is exercised by its own parameter).
    Returns (result, crashes).
    """
    crashes = 0
    state, event = build_failed_cluster(seed=SEED, stripes=STRIPES)
    session = RecoverySession(
        state, event, make_strategy(strategy_name), path,
        crash_after_records=crash_after,
    )
    try:
        return session.run(), crashes
    except CoordinatorCrashError:
        crashes += 1
    state, event = build_failed_cluster(seed=SEED, stripes=STRIPES)
    session = RecoverySession(
        state, event, make_strategy(strategy_name), path
    )
    return session.resume(), crashes


def baseline(strategy_name, tmp_path):
    state, event = build_failed_cluster(seed=SEED, stripes=STRIPES)
    path = tmp_path / "base.jsonl"
    out = RecoverySession(
        state, event, make_strategy(strategy_name), path
    ).run()
    replay = JournalReplay.load(path)
    per_stripe_cross = {}
    for r in replay.records:
        if r["rec"] == "stage" and r["stage"] == "cross_transfer":
            per_stripe_cross[r["stripe_id"]] = (
                per_stripe_cross.get(r["stripe_id"], 0) + 1
            )
    return out, len(replay.records), replay.total_cross_transfers, (
        max(per_stripe_cross.values()) if per_stripe_cross else 0
    )


@pytest.mark.parametrize("strategy_name", ["car", "direct"])
def test_crash_at_every_record_boundary(strategy_name, tmp_path):
    base, n_records, base_cross, max_stripe_cross = baseline(
        strategy_name, tmp_path
    )
    assert base.verified
    for crash_after in range(1, n_records + 1):
        path = tmp_path / f"crash{crash_after}.jsonl"
        out, crashes = run_to_completion(path, strategy_name, crash_after)
        assert out.verified, f"crash point {crash_after} not verified"
        assert set(out.replayed) | set(out.executed) == set(base.executed)
        for stripe, buf in base.reconstructed.items():
            assert np.array_equal(out.reconstructed[stripe], buf), (
                f"crash point {crash_after}: stripe {stripe} bytes differ"
            )
        # Logical accounting matches the uninterrupted run exactly.
        assert out.cross_rack_bytes == base.cross_rack_bytes, (
            f"crash point {crash_after}"
        )
        replay = JournalReplay.load(path)
        assert replay.complete
        # The traffic bound: at most one in-flight stripe re-ships.
        assert replay.total_cross_transfers <= (
            base_cross + crashes * max_stripe_cross
        ), f"crash point {crash_after} overshipped"
