"""End-to-end in-flight integrity: corruption detected before decode."""

import numpy as np
import pytest

from repro.errors import IntegrityError
from repro.faults import (
    ActionKind,
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultSpec,
    InjectedCrashError,
    PipelineStage,
    RecoveryAbort,
    recover_with_faults,
)
from repro.obs.metrics import MetricsRegistry, telemetry_scope
from repro.obs.tracer import Tracer
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery
from repro.recovery.baselines import RandomRecoveryStrategy

from tests.durable.conftest import build_failed_cluster

CORRUPT_STAGES = [PipelineStage.INTRA_TRANSFER, PipelineStage.CROSS_TRANSFER]


class CorruptingExecutor(PlanExecutor):
    """A plain executor whose network flips one bit in every payload."""

    def __init__(self, state, **kwargs):
        super().__init__(state, verify_integrity=True, **kwargs)
        self.transmissions = 0

    def _transmit(self, stage, buf, **kwargs):
        self.transmissions += 1
        corrupted = np.array(buf, copy=True)
        corrupted.flat[0] ^= 1
        return corrupted


class TestPlainExecutorIntegrity:
    def test_default_executor_skips_verification(self, failed_cluster):
        state, event = failed_cluster
        assert PlanExecutor(state).verify_integrity is False

    def test_corruption_is_fatal_without_fault_layer(self, failed_cluster):
        state, event = failed_cluster
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        executor = CorruptingExecutor(state)
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            executor.execute(plan, solution)
        # Detection happened on the very first corrupt receipt — no
        # corrupt buffer ever reached a decode.
        assert executor.transmissions == 1

    def test_clean_network_verifies_everywhere(self, failed_cluster):
        state, event = failed_cluster
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            result = PlanExecutor(
                state, verify_integrity=True
            ).execute(plan, solution)
        assert result.verified
        metrics = registry.snapshot()["metrics"]
        verified = sum(
            s["value"] for s in metrics["integrity.verified"]["series"]
        )
        assert verified > 0
        assert "integrity.corruptions" not in metrics


@pytest.mark.parametrize("stage", CORRUPT_STAGES,
                         ids=[s.value for s in CORRUPT_STAGES])
@pytest.mark.parametrize("strategy_name", ["car", "direct"])
class TestRobustCorruptionLadder:
    def run(self, stage, strategy_name, max_fires, tracer=None):
        state, event = build_failed_cluster()
        strategy = (CarStrategy() if strategy_name == "car"
                    else RandomRecoveryStrategy(rng=7))
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.IN_FLIGHT_CORRUPT, stage=stage,
                       max_fires=max_fires)],
            seed=5,
        )
        result = recover_with_faults(
            state, event, strategy,
            injector=injector,
            backoff=BackoffPolicy(max_attempts=3),
            tracer=tracer,
        )
        return state, event, injector, result

    def test_single_corruption_is_detected_and_retried(self, stage,
                                                       strategy_name):
        tracer = Tracer(clock=lambda: 0.0)
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            state, event, injector, r = self.run(
                stage, strategy_name, max_fires=1, tracer=tracer
            )
        if not injector.history:
            pytest.skip(f"{stage.value} unreachable under {strategy_name}")
        assert r.verified
        for stripe, lost in event.lost_chunks:
            assert state.data.matches(
                stripe, lost, r.result.reconstructed[stripe]
            )
        # The injected fault surfaced as telemetry, and the ladder's
        # answer was a retransmission.
        names = [e["name"] for e in tracer.events if e["type"] == "event"]
        assert "fault.corrupt" in names
        assert "action.retry" in names
        metrics = registry.snapshot()["metrics"]
        corruptions = sum(
            s["value"]
            for s in metrics["integrity.corruptions"]["series"]
        )
        assert corruptions >= 1
        retries = [a for a in r.log.actions
                   if a.action is ActionKind.RETRY]
        assert retries and "retransmit" in retries[0].detail

    def test_unbounded_corruption_terminates_typed(self, stage,
                                                   strategy_name):
        # A corrupt-everything network must end in a typed terminal
        # state — escalation then replan around the "bad" node, or a
        # full abort — never wrong bytes.
        try:
            state, event, injector, r = self.run(
                stage, strategy_name, max_fires=None
            )
        except RecoveryAbort as abort:
            assert abort.log.actions[-1].action is ActionKind.ABORT
            return
        if not injector.history:
            pytest.skip(f"{stage.value} unreachable under {strategy_name}")
        assert r.verified
        assert ActionKind.ESCALATE in {a.action for a in r.log.actions}
        for stripe, lost in event.lost_chunks:
            assert state.data.matches(
                stripe, lost, r.result.reconstructed[stripe]
            )


class TestCorruptFaultSpec:
    def test_corrupt_only_valid_at_transfer_stages(self):
        from repro.faults.events import VALID_STAGES

        assert VALID_STAGES[FaultKind.IN_FLIGHT_CORRUPT] == frozenset(
            {PipelineStage.INTRA_TRANSFER, PipelineStage.CROSS_TRANSFER}
        )
        with pytest.raises(Exception):
            FaultSpec(kind=FaultKind.IN_FLIGHT_CORRUPT,
                      stage=PipelineStage.DISK_READ)

    def test_escalation_error_pickles(self):
        import pickle

        from repro.faults.events import FaultEvent

        event = FaultEvent(
            kind=FaultKind.IN_FLIGHT_CORRUPT,
            stage=PipelineStage.CROSS_TRANSFER,
            stripe_id=1, node=2, rack=0, attempt=3,
        )
        err = InjectedCrashError(event)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.event.kind is FaultKind.IN_FLIGHT_CORRUPT
        assert clone.event.node == 2
