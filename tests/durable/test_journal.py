"""Write-ahead journal: record schema, torn lines, crash injection."""

import json

import numpy as np
import pytest

from repro.durable.journal import (
    RECORD_TYPES,
    JournalReplay,
    RecoveryJournal,
    read_journal,
    validate_journal_records,
)
from repro.errors import CoordinatorCrashError, JournalError
from repro.obs.metrics import MetricsRegistry, telemetry_scope


def write_minimal(path, stripes=(0, 1), commit=(0,)):
    """A hand-driven journal: session, intents, commits, end."""
    journal = RecoveryJournal(path)
    journal.begin_session({"stripes": list(stripes)})
    for s in stripes:
        journal.stripe_intent(s, aggregated=True, lost_chunk=2)
    for s in commit:
        journal.stage(s, "cross_transfer", node=1, rack=1, chunk=3,
                      is_partial=True)
        journal.stripe_commit(
            s, np.arange(16, dtype=np.uint8), lost_chunk=2, ok=True,
            cross_rack_bytes=16, intra_rack_bytes=32,
            bytes_computed_by_node={4: 16},
        )
    journal.end_session(committed=len(commit))
    return journal


class TestJournalWriting:
    def test_seq_is_contiguous_and_validates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        records = read_journal(path)
        assert [r["seq"] for r in records] == list(range(1, len(records) + 1))
        assert validate_journal_records(records) == len(records)
        assert {r["rec"] for r in records} <= RECORD_TYPES

    def test_session_header_must_come_first(self, tmp_path):
        journal = RecoveryJournal(tmp_path / "j.jsonl")
        journal.begin_session({"stripes": [0]})
        with pytest.raises(JournalError, match="first record"):
            journal.begin_session({"stripes": [0]})

    def test_end_session_closes_without_truncating(self, tmp_path):
        # Regression: close() then end_session() used to reopen with
        # mode "w" and wipe every earlier record.
        path = tmp_path / "j.jsonl"
        journal = RecoveryJournal(path)
        journal.begin_session({"stripes": [0]})
        journal.stripe_intent(0, aggregated=True, lost_chunk=1)
        journal.close()
        journal.end_session(committed=0)
        records = read_journal(path)
        assert [r["rec"] for r in records] == ["session", "intent", "end"]

    def test_append_mode_continues_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RecoveryJournal(path)
        journal.begin_session({"stripes": [0, 1]})
        journal.stripe_intent(0, aggregated=True, lost_chunk=1)
        journal.close()
        resumed = RecoveryJournal(path, append=True)
        resumed.resume_marker(replayed=[], pending=[0, 1])
        resumed.close()
        records = read_journal(path)
        assert records[-1]["rec"] == "resume"
        assert records[-1]["seq"] == 3

    def test_append_to_missing_journal_fails(self, tmp_path):
        journal = RecoveryJournal(tmp_path / "none.jsonl", append=True)
        with pytest.raises(JournalError):
            journal.resume_marker(replayed=[], pending=[])

    def test_records_counted_in_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            write_minimal(tmp_path / "j.jsonl")
        series = registry.snapshot()["metrics"]["journal.records"]["series"]
        by_rec = {s["labels"]["rec"]: s["value"] for s in series}
        assert by_rec["session"] == 1
        assert by_rec["commit"] == 1
        assert by_rec["end"] == 1


class TestCrashInjection:
    def test_crash_fires_after_nth_record(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RecoveryJournal(path, crash_after_records=2)
        journal.begin_session({"stripes": [0]})
        with pytest.raises(CoordinatorCrashError) as excinfo:
            journal.stripe_intent(0, aggregated=True, lost_chunk=1)
        assert excinfo.value.records_written == 2
        # The record that triggered the crash IS durable.
        assert [r["rec"] for r in read_journal(path)] == ["session", "intent"]

    def test_crash_threshold_must_be_positive(self, tmp_path):
        with pytest.raises(JournalError):
            RecoveryJournal(tmp_path / "j.jsonl", crash_after_records=0)

    def test_crash_error_survives_pickle(self, tmp_path):
        import pickle

        journal = RecoveryJournal(tmp_path / "j.jsonl",
                                  crash_after_records=1)
        with pytest.raises(CoordinatorCrashError) as excinfo:
            journal.begin_session({"stripes": []})
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.records_written == 1
        assert str(clone) == str(excinfo.value)


class TestReadJournal:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        whole = read_journal(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "rec": "end", "commi')  # died mid-write
        assert read_journal(path) == whole

    def test_malformed_interior_line_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        lines = path.read_text().splitlines()
        lines.insert(1, "garbage not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="malformed record on line 2"):
            read_journal(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            read_journal(tmp_path / "absent.jsonl")


class TestValidation:
    def rewrite(self, path, mutate):
        records = read_journal(path)
        mutate(records)
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        return records

    def test_empty_journal_invalid(self):
        with pytest.raises(JournalError, match="empty"):
            validate_journal_records([])

    def test_seq_gap_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        records = self.rewrite(
            path, lambda rs: rs[2].__setitem__("seq", 99)
        )
        with pytest.raises(JournalError, match="seq"):
            validate_journal_records(records)

    def test_unknown_record_type_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        records = self.rewrite(
            path, lambda rs: rs[1].__setitem__("rec", "mystery")
        )
        with pytest.raises(JournalError, match="unknown record type"):
            validate_journal_records(records)

    def test_commit_without_intent_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)

        def orphan(rs):
            for r in rs:
                if r["rec"] == "commit":
                    r["stripe_id"] = 77

        records = self.rewrite(path, orphan)
        with pytest.raises(JournalError, match="without a prior intent"):
            validate_journal_records(records)

    def test_corrupted_commit_payload_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)

        def corrupt(rs):
            for r in rs:
                if r["rec"] == "commit":
                    r["checksum"] ^= 1

        records = self.rewrite(path, corrupt)
        with pytest.raises(JournalError, match="checksum mismatch"):
            validate_journal_records(records)

    def test_end_commit_count_mismatch_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path)
        records = self.rewrite(
            path, lambda rs: rs[-1].__setitem__("committed", 5)
        )
        with pytest.raises(JournalError, match="claims 5 commits"):
            validate_journal_records(records)


class TestJournalReplay:
    def test_committed_pending_and_chunks(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path, stripes=(0, 1, 2), commit=(0, 2))
        replay = JournalReplay.load(path)
        assert set(replay.committed) == {0, 2}
        assert replay.pending == (1,)
        assert not replay.complete  # stripe 1 never committed
        assert np.array_equal(
            replay.committed_chunk(0), np.arange(16, dtype=np.uint8)
        )
        with pytest.raises(JournalError, match="no commit record"):
            replay.committed_chunk(1)

    def test_complete_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path, stripes=(0, 1), commit=(0, 1))
        replay = JournalReplay.load(path)
        assert replay.complete
        assert replay.pending == ()
        assert replay.session["stripes"] == [0, 1]

    def test_cross_transfer_accounting(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_minimal(path, stripes=(0, 1, 2), commit=(0, 2))
        replay = JournalReplay.load(path)
        # One cross_transfer stage record per committed stripe here.
        assert replay.total_cross_transfers == 2
        assert replay.uncommitted_cross_transfers == 0
