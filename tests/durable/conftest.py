"""Shared builders for the durable-recovery test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode

CHUNK = 96


def build_failed_cluster(seed=7, stripes=6, chunk=CHUNK):
    """A small CFS2-like cluster with real data and one failed node."""
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=random.Random(seed)).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=chunk, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


@pytest.fixture
def failed_cluster():
    return build_failed_cluster()
