"""Property-based resume idempotence under arbitrary crash chains.

Hypothesis drives a *chain* of coordinator crashes: the first
incarnation crashes after c1 records, the resume after c2 more, and so
on, with a final crash-free resume.  Whatever the chain, the session
must converge to the uninterrupted run's bytes, and the cross-rack
transfers actually shipped may exceed the uninterrupted count by at
most one in-flight stripe per crash.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.journal import JournalReplay
from repro.durable.session import RecoverySession
from repro.errors import CoordinatorCrashError
from repro.recovery import CarStrategy

from tests.durable.conftest import build_failed_cluster

STRIPES = 4
CHUNK = 64

#: seed -> (result, journal record count, cross transfers, max per-stripe
#: cross transfers) of the uninterrupted run, computed once per seed.
_BASELINES: dict[int, tuple] = {}


def fresh_session(seed, path, crash_after=None):
    state, event = build_failed_cluster(seed=seed, stripes=STRIPES,
                                        chunk=CHUNK)
    return state, RecoverySession(
        state, event, CarStrategy(), path, crash_after_records=crash_after
    )


def baseline(seed, tmp_dir):
    if seed not in _BASELINES:
        path = tmp_dir / f"base{seed}.jsonl"
        _, session = fresh_session(seed, path)
        out = session.run()
        replay = JournalReplay.load(path)
        per_stripe = {}
        for r in replay.records:
            if r["rec"] == "stage" and r["stage"] == "cross_transfer":
                per_stripe[r["stripe_id"]] = (
                    per_stripe.get(r["stripe_id"], 0) + 1
                )
        _BASELINES[seed] = (
            out,
            len(replay.records),
            replay.total_cross_transfers,
            max(per_stripe.values(), default=0),
        )
    return _BASELINES[seed]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=7),
    crash_points=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=3
    ),
)
def test_crash_chain_converges_byte_identical(seed, crash_points,
                                              tmp_path_factory):
    tmp_dir = tmp_path_factory.mktemp("chain")
    base, _, base_cross, max_stripe_cross = baseline(seed, tmp_dir)
    path = tmp_dir / "j.jsonl"

    crashes = 0
    out = None
    for step, crash_after in enumerate([*crash_points, None]):
        _, session = fresh_session(seed, path, crash_after=crash_after)
        try:
            out = session.run() if step == 0 else session.resume()
            break
        except CoordinatorCrashError:
            crashes += 1
    else:
        # Every incarnation crashed; one clean resume must finish.
        _, session = fresh_session(seed, path)
        out = session.resume()

    assert out.verified
    assert set(out.replayed) | set(out.executed) == set(base.executed)
    for stripe, buf in base.reconstructed.items():
        assert np.array_equal(out.reconstructed[stripe], buf)
    assert out.cross_rack_bytes == base.cross_rack_bytes
    replay = JournalReplay.load(path)
    assert replay.complete
    assert replay.total_cross_transfers <= (
        base_cross + crashes * max_stripe_cross
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=7),
       crash_after=st.integers(min_value=1, max_value=30))
def test_single_crash_resume_idempotent(seed, crash_after,
                                        tmp_path_factory):
    """Resume twice from the same journal: identical results, no extra
    traffic the second time (the journal is already complete)."""
    tmp_dir = tmp_path_factory.mktemp("idem")
    path = tmp_dir / "j.jsonl"
    _, session = fresh_session(seed, path, crash_after=crash_after)
    try:
        session.run()
    except CoordinatorCrashError:
        pass
    _, session1 = fresh_session(seed, path)
    first = session1.resume()
    _, session2 = fresh_session(seed, path)
    second = session2.resume()
    assert first.verified and second.verified
    assert second.live_cross_rack_bytes == 0  # pure replay
    assert set(second.replayed) == (
        set(first.replayed) | set(first.executed)
    )
    for stripe, buf in first.reconstructed.items():
        assert np.array_equal(second.reconstructed[stripe], buf)
