"""Tests for the balance-aware (warm-start) initialisation ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy


def failed_cluster(seed=0, stripes=60, racks=(4, 3, 3, 3), k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    FailureInjector(rng=seed).fail_random_node(state)
    return state


class TestWarmStart:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_same_traffic_as_cold_start(self, seed):
        """Tie-breaking never changes the per-stripe minimum d_j."""
        state = failed_cluster(seed=seed)
        cold = CarStrategy(warm_start=False).solve(state)
        warm = CarStrategy(warm_start=True).solve(state)
        assert (
            warm.total_cross_rack_traffic() == cold.total_cross_rack_traffic()
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_final_lambda_no_worse(self, seed):
        state = failed_cluster(seed=seed)
        cold = CarStrategy(warm_start=False).solve(state)
        warm = CarStrategy(warm_start=True).solve(state)
        # Both converge to near-balanced; warm start must not end worse
        # than cold by more than one substitution's worth of traffic.
        assert warm.load_balancing_rate() <= cold.load_balancing_rate() + 0.1

    def test_fewer_substitutions_on_average(self):
        """The point of the warm start: Algorithm 2 has less to fix."""
        cold_total = warm_total = 0
        for seed in range(10):
            state = failed_cluster(seed=seed)
            cold = CarStrategy(warm_start=False, iterations=200)
            cold.solve(state)
            warm = CarStrategy(warm_start=True, iterations=200)
            warm.solve(state)
            cold_total += cold.last_trace.substitutions
            warm_total += warm.last_trace.substitutions
        assert warm_total < cold_total

    def test_warm_initial_lambda_already_low(self):
        """The warm start's *initial* λ beats the cold start's."""
        improvements = 0
        for seed in range(10):
            state = failed_cluster(seed=seed)
            cold = CarStrategy(warm_start=False)
            cold.solve(state)
            warm = CarStrategy(warm_start=True)
            warm.solve(state)
            if (
                warm.last_trace.initial_lambda
                < cold.last_trace.initial_lambda
            ):
                improvements += 1
        assert improvements >= 7  # strictly better almost always

    def test_warm_start_composes_with_history(self):
        state = failed_cluster(seed=5)
        baseline = [10, 0, 0, 0]
        strategy = CarStrategy(
            warm_start=True, baseline_traffic=baseline
        )
        solution = strategy.solve(state)
        assert solution.aggregated
        assert strategy.name == "CAR-history"
