"""Equivalence suite: the streaming executor vs the eager path.

The contract under test is absolute: for any cluster, strategy, window
size, worker count, and telemetry configuration, `execute_streaming`
produces an :class:`ExecutionResult` byte-identical to `execute` — same
rebuilt bytes, same verdicts, same traffic and compute accounting, same
metric counters, and (for durable sessions) a journal that resumes
identically after a crash mid-window.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.durable.journal import JournalReplay, validate_journal_records
from repro.durable.session import RecoverySession
from repro.erasure.rs import RSCode
from repro.errors import (
    ConfigurationError,
    CoordinatorCrashError,
    PlanError,
    UnknownChunkError,
)
from repro.faults.injector import FaultInjector
from repro.io_shm import SharedChunkStore
from repro.obs import metrics as _metrics
from repro.obs.tracer import Tracer
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.executor import PlanExecutor
from repro.recovery.planner import plan_recovery, plan_recovery_streaming
from repro.recovery.streaming import (
    REPAIR_GROUP_CACHE,
    execute_parallel,
    repair_signature,
    windows,
)


def failed_cluster(seed=0, stripes=14, k=6, m=3, chunk_size=64):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=chunk_size, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def strategy_for(name, seed):
    return CarStrategy() if name == "car" else RandomRecoveryStrategy(rng=seed)


def assert_identical(a, b):
    """Two ExecutionResults agree field-for-field, byte-for-byte."""
    assert a.per_stripe_ok == b.per_stripe_ok
    assert set(a.reconstructed) == set(b.reconstructed)
    for sid in a.reconstructed:
        assert np.array_equal(a.reconstructed[sid], b.reconstructed[sid])
    assert a.cross_rack_bytes == b.cross_rack_bytes
    assert a.intra_rack_bytes == b.intra_rack_bytes
    assert a.bytes_computed_by_node == b.bytes_computed_by_node


class TestStreamingEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 200),
        window=st.sampled_from([1, 2, 3, 7, 64]),
        strat=st.sampled_from(["car", "direct"]),
        pipelined=st.booleans(),
        batch=st.booleans(),
    )
    def test_streaming_matches_eager(self, seed, window, strat, pipelined,
                                     batch):
        state, event = failed_cluster(seed=seed)
        sol = strategy_for(strat, seed).solve(state)
        plan = plan_recovery(state, event, sol)
        eager = PlanExecutor(state).execute(plan, sol)
        streamed = PlanExecutor(state).execute_streaming(
            plan, sol, window=window, pipelined=pipelined, batch=batch
        )
        assert eager.verified
        assert_identical(eager, streamed)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), window=st.sampled_from([1, 5, 64]))
    def test_streaming_plan_matches_eager_plan(self, seed, window):
        state, event = failed_cluster(seed=seed)
        sol = CarStrategy().solve(state)
        eager = PlanExecutor(state).execute(
            plan_recovery(state, event, sol), sol
        )
        splan = plan_recovery_streaming(state, event, sol)
        streamed = PlanExecutor(state).execute_streaming(splan, window=window)
        assert_identical(eager, streamed)

    @pytest.mark.parametrize("strat", ["car", "direct"])
    @pytest.mark.parametrize("use_shm", [True, False])
    def test_workers_match_eager(self, strat, use_shm):
        state, event = failed_cluster(seed=7, stripes=20)
        sol = strategy_for(strat, 7).solve(state)
        plan = plan_recovery(state, event, sol)
        eager = PlanExecutor(state).execute(plan, sol)
        streamed = PlanExecutor(state).execute_streaming(
            plan, sol, window=6, workers=2, shm=use_shm
        )
        assert_identical(eager, streamed)

    def test_sink_receives_every_stripe_and_result_stays_lean(self):
        state, event = failed_cluster(seed=3)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        eager = PlanExecutor(state).execute(plan, sol)
        got = {}
        streamed = PlanExecutor(state).execute_streaming(
            plan, sol, window=4,
            sink=lambda sid, buf, ok: got.__setitem__(sid, buf),
        )
        assert not streamed.reconstructed  # handed off, not retained
        assert streamed.per_stripe_ok == eager.per_stripe_ok
        for sid, buf in eager.reconstructed.items():
            assert np.array_equal(got[sid], buf)

    def test_telemetry_counters_and_spans_match_eager(self):
        state, event = failed_cluster(seed=9, stripes=20)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)

        def run(fn):
            with _metrics.telemetry_scope(_metrics.MetricsRegistry()) as reg:
                tracer = Tracer()
                fn(tracer)
                return reg.snapshot()["metrics"], tracer

        me, te = run(lambda t: PlanExecutor(state, t).execute(plan, sol))
        ms, ts = run(
            lambda t: PlanExecutor(state, t).execute_streaming(
                plan, sol, window=4
            )
        )
        # Checkpoint and stripe counters are label-for-label identical;
        # GF kernel counters agree on totals (batching regroups the
        # series but must move exactly the same bytes).
        assert me["exec.stage.checkpoints"] == ms["exec.stage.checkpoints"]
        assert me["exec.stripes"] == ms["exec.stripes"]

        def gf_total(metrics, name):
            return sum(s["value"] for s in metrics[name]["series"])

        assert gf_total(me, "gf.kernel.bytes") == gf_total(
            ms, "gf.kernel.bytes"
        )
        stripe = lambda tr: [
            e for e in tr.events if e.get("name") == "exec.stripe"
        ]
        assert len(stripe(te)) == len(stripe(ts))
        names = {e.get("name") for e in ts.events}
        assert "exec.stream.aggregate" in names
        assert "exec.stream.ship" in names

    def test_repair_group_cache_is_a_named_metric(self):
        state, event = failed_cluster(seed=5)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        PlanExecutor(state).execute_streaming(plan, sol, window=4)
        reg = _metrics.MetricsRegistry()
        caches = reg.snapshot(include_caches=True)["caches"]
        assert "exec.repair_groups" in caches
        stats = caches["exec.repair_groups"]
        assert stats["hits"] + stats["misses"] > 0


class TestStreamingValidation:
    def test_window_must_be_positive(self):
        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        with pytest.raises(PlanError):
            PlanExecutor(state).execute_streaming(plan, sol, window=0)

    def test_eager_plan_requires_solution(self):
        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        with pytest.raises(PlanError):
            PlanExecutor(state).execute_streaming(plan)

    def test_streaming_plan_rejects_solution_argument(self):
        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        splan = plan_recovery_streaming(state, event, sol)
        with pytest.raises(PlanError):
            PlanExecutor(state).execute_streaming(splan, sol)

    def test_streaming_plan_is_single_shot(self):
        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        splan = plan_recovery_streaming(state, event, sol)
        PlanExecutor(state).execute_streaming(splan, window=4)
        with pytest.raises(PlanError):
            PlanExecutor(state).execute_streaming(splan, window=4)

    def test_workers_refuse_journal_and_integrity(self, tmp_path):
        from repro.durable.journal import RecoveryJournal

        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        journal = RecoveryJournal(tmp_path / "j.jsonl")
        journal.begin_session({"stripes": []})
        ex = PlanExecutor(state, journal=journal)
        with pytest.raises(ConfigurationError):
            ex.execute_streaming(plan, sol, workers=2)
        journal.close()
        ex = PlanExecutor(state, verify_integrity=True)
        with pytest.raises(ConfigurationError):
            ex.execute_streaming(plan, sol, workers=2)

    def test_streaming_session_refuses_fault_injector(self, tmp_path):
        state, event = failed_cluster(seed=1)
        with pytest.raises(ConfigurationError):
            RecoverySession(
                state, event, CarStrategy(), tmp_path / "j.jsonl",
                injector=FaultInjector(seed=1), streaming=True,
            )


class TestStreamingDurability:
    def test_uninterrupted_streaming_session_matches_eager(self, tmp_path):
        state, event = failed_cluster(seed=11, stripes=18)
        eager = RecoverySession(
            state, event, CarStrategy(), tmp_path / "e.jsonl"
        ).run()
        streamed = RecoverySession(
            state, event, CarStrategy(), tmp_path / "s.jsonl",
            streaming=True, window=5,
        ).run()
        assert streamed.verified
        assert streamed.per_stripe_ok == eager.per_stripe_ok
        for sid, buf in eager.reconstructed.items():
            assert np.array_equal(streamed.reconstructed[sid], buf)
        assert streamed.cross_rack_bytes == eager.cross_rack_bytes
        assert streamed.intra_rack_bytes == eager.intra_rack_bytes
        assert streamed.bytes_computed_by_node == eager.bytes_computed_by_node
        # The journal the streaming path wrote is structurally valid.
        validate_journal_records(
            JournalReplay.load(tmp_path / "s.jsonl").records
        )

    @settings(max_examples=8, deadline=None)
    @given(
        crash_after=st.integers(5, 80),
        window=st.sampled_from([1, 3, 7]),
    )
    def test_crash_mid_window_then_resume_is_byte_identical(
        self, crash_after, window
    ):
        import tempfile

        state, event = failed_cluster(seed=13, stripes=18)
        eager = PlanExecutor(state).execute(
            plan_recovery(state, event, sol := CarStrategy().solve(state)),
            sol,
        )
        with tempfile.TemporaryDirectory() as td:
            jp = os.path.join(td, "crash.jsonl")
            session = RecoverySession(
                state, event, CarStrategy(), jp,
                streaming=True, window=window,
                crash_after_records=crash_after,
            )
            try:
                out = session.run()
            except CoordinatorCrashError:
                # Resume until the session completes (resume itself is
                # fault-free: crash_after_records applies per session
                # object, and we build a fresh one).
                out = RecoverySession(
                    state, event, CarStrategy(), jp,
                    streaming=True, window=window,
                ).resume()
            assert out.verified
            assert out.per_stripe_ok == eager.per_stripe_ok
            for sid, buf in eager.reconstructed.items():
                assert np.array_equal(out.reconstructed[sid], buf)
            # Whole-session accounting also matches the uninterrupted
            # run: committed stripes charge once, from their records.
            assert out.cross_rack_bytes == eager.cross_rack_bytes
            assert out.intra_rack_bytes == eager.intra_rack_bytes

    def test_streaming_journal_resumes_on_eager_path(self, tmp_path):
        state, event = failed_cluster(seed=17, stripes=18)
        jp = tmp_path / "x.jsonl"
        with pytest.raises(CoordinatorCrashError):
            RecoverySession(
                state, event, CarStrategy(), jp,
                streaming=True, window=4, crash_after_records=25,
            ).run()
        out = RecoverySession(state, event, CarStrategy(), jp).resume()
        assert out.verified


class TestSharedChunkStore:
    def test_round_trip_and_views(self):
        state, _ = failed_cluster(seed=2, stripes=6)
        with SharedChunkStore.from_datastore(state.data) as shared:
            store = shared.store()
            assert store.num_stripes == state.data.num_stripes
            assert store.chunk_size == state.data.chunk_size
            for stripe in range(state.data.num_stripes):
                for idx in range(state.code.k + state.code.m):
                    assert np.array_equal(
                        store.chunk(stripe, idx),
                        state.data.chunk(stripe, idx),
                    )
                    assert store.matches(
                        stripe, idx, state.data.chunk(stripe, idx)
                    )

    def test_attach_maps_same_bytes(self):
        state, _ = failed_cluster(seed=2, stripes=4)
        shared = SharedChunkStore.from_datastore(state.data)
        try:
            attached = SharedChunkStore.attach(shared.handle)
            try:
                assert np.array_equal(
                    attached.store().chunk(0, 0), state.data.chunk(0, 0)
                )
            finally:
                attached.close()
        finally:
            shared.close()

    def test_views_are_read_only(self):
        state, _ = failed_cluster(seed=2, stripes=4)
        with SharedChunkStore.from_datastore(state.data) as shared:
            buf = shared.store().chunk(0, 0)
            with pytest.raises(ValueError):
                buf[0] = 1

    def test_unknown_chunk_raises(self):
        state, _ = failed_cluster(seed=2, stripes=4)
        with SharedChunkStore.from_datastore(state.data) as shared:
            store = shared.store()
            with pytest.raises(UnknownChunkError):
                store.chunk(99, 0)
            with pytest.raises(UnknownChunkError):
                store.chunk(0, 99)

    def test_close_is_idempotent(self):
        state, _ = failed_cluster(seed=2, stripes=4)
        shared = SharedChunkStore.from_datastore(state.data)
        shared.close()
        shared.close()  # no-op
        shared.unlink()  # alias, also a no-op now


class TestStreamingHelpers:
    def test_windows_partition_in_order(self):
        chunks = list(windows(iter(range(10)), 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_repair_signature_batches_equal_repairs(self):
        state, _ = failed_cluster(seed=4)
        sol = CarStrategy().solve(state)
        for s in sol.solutions:
            assert repair_signature(s, True) == repair_signature(s, True)
        a, b = sol.solutions[0], sol.solutions[1]
        if (a.lost_chunk, a.helpers) != (b.lost_chunk, b.helpers):
            assert repair_signature(a, False) != repair_signature(b, False)

    def test_execute_parallel_requires_plain_executor(self, tmp_path):
        from repro.durable.journal import RecoveryJournal

        state, event = failed_cluster(seed=1)
        journal = RecoveryJournal(tmp_path / "j.jsonl")
        journal.begin_session({"stripes": []})
        ex = PlanExecutor(state, journal=journal)
        with pytest.raises(ConfigurationError):
            execute_parallel(
                ex, iter(()), True, 0, window=4, workers=2, batch=True,
                shm=None,
            )
        journal.close()
