"""Property-based checks of Theorem 1 against exhaustive search.

The sorted-prefix rule computes ``d_j`` in O(r log r); these tests
compare it with brute force over *all* rack subsets on hundreds of
random stripe layouts, and check every materialised solution supplies
exactly ``k`` chunks.
"""

import itertools

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.state import StripeView
from repro.cluster.topology import ClusterTopology
from repro.recovery.selector import (
    CarSelector,
    build_solution,
    iter_valid_rack_sets,
    min_racks_needed,
)


def make_view(rack_counts, failed_rack=0):
    """A synthetic view with ``rack_counts[i]`` survivors in rack ``i``."""
    topo = ClusterTopology.from_rack_sizes([max(1, c) for c in rack_counts])
    surviving = {}
    chunk = 0
    for rack, count in enumerate(rack_counts):
        nodes = topo.nodes_in_rack(rack)
        for i in range(count):
            surviving[chunk] = nodes[i]
            chunk += 1
    view = StripeView(
        stripe_id=0,
        lost_chunk=sum(rack_counts),
        surviving=surviving,
        rack_counts=tuple(rack_counts),
        failed_rack=failed_rack,
    )
    return view, topo


def brute_force_min_racks(view: StripeView, k: int) -> int:
    """Smallest intact-rack subset that, with the local survivors,
    reaches ``k`` chunks — by trying every subset size in order."""
    local = view.rack_counts[view.failed_rack]
    intact = [
        c
        for rack, c in enumerate(view.rack_counts)
        if rack != view.failed_rack
    ]
    for d in range(len(intact) + 1):
        for combo in itertools.combinations(intact, d):
            if local + sum(combo) >= k:
                return d
    raise AssertionError("caller must ensure feasibility")


@st.composite
def feasible_views(draw):
    num_racks = draw(st.integers(2, 6))
    counts = [draw(st.integers(0, 6)) for _ in range(num_racks)]
    failed_rack = draw(st.integers(0, num_racks - 1))
    k = draw(st.integers(1, 12))
    assume(sum(counts) >= k)
    view, topo = make_view(counts, failed_rack=failed_rack)
    return view, topo, k


class TestTheorem1Properties:
    @settings(max_examples=200, deadline=None)
    @given(feasible_views())
    def test_d_j_matches_brute_force(self, case):
        view, _, k = case
        assert min_racks_needed(view, k) == brute_force_min_racks(view, k)

    @settings(max_examples=200, deadline=None)
    @given(feasible_views())
    def test_every_valid_rack_set_supplies_k_chunks(self, case):
        view, topo, k = case
        d = min_racks_needed(view, k)
        rack_sets = list(iter_valid_rack_sets(view, k))
        assert rack_sets, "at least one valid rack set must exist"
        local = view.rack_counts[view.failed_rack]
        for rack_set in rack_sets:
            assert len(rack_set) == d
            available = local + sum(view.rack_counts[r] for r in rack_set)
            assert available >= k
            sol = build_solution(view, rack_set, k, topo)
            assert sol.helper_count == k
            assert sol.num_intact_racks == d
            # Helpers must be real survivors on real nodes.
            for chunk in sol.helpers:
                assert chunk in view.surviving

    @settings(max_examples=200, deadline=None)
    @given(feasible_views())
    def test_initial_solution_is_minimal_and_complete(self, case):
        view, topo, k = case
        selector = CarSelector(topo, k)
        sol = selector.initial_solution(view)
        assert sol.helper_count == k
        assert sol.num_intact_racks == brute_force_min_racks(view, k)
        assert set(sol.helpers) <= set(view.surviving)
        # No solution over any rack subset can touch fewer intact racks.
        for d in range(sol.num_intact_racks):
            local = view.rack_counts[view.failed_rack]
            intact = [
                c
                for rack, c in enumerate(view.rack_counts)
                if rack != view.failed_rack
            ]
            assert all(
                local + sum(combo) < k
                for combo in itertools.combinations(intact, d)
            )
