"""Tests for the Algorithm 2 greedy load balancer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import RecoveryError
from repro.recovery.balancer import BalanceTrace, GreedyLoadBalancer
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution


def failed_cluster(seed=0, stripes=30, racks=(4, 3, 3, 3), k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    from repro.cluster.failure import FailureInjector

    FailureInjector(rng=seed).fail_random_node(state)
    return state


def initial_solution(state):
    selector = CarSelector(state.topology, state.code.k)
    views = state.views()
    return (
        {v.stripe_id: v for v in views},
        MultiStripeSolution(
            [selector.initial_solution(v) for v in views],
            num_racks=state.topology.num_racks,
            aggregated=True,
        ),
        selector,
    )


class TestTrace:
    def test_lambda_after_clamps(self):
        trace = BalanceTrace(lambdas=[1.5, 1.2, 1.0])
        assert trace.lambda_after(0) == 1.5
        assert trace.lambda_after(2) == 1.0
        assert trace.lambda_after(99) == 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(RecoveryError):
            BalanceTrace().lambda_after(0)

    def test_initial_final(self):
        trace = BalanceTrace(lambdas=[1.5, 1.0])
        assert trace.initial_lambda == 1.5
        assert trace.final_lambda == 1.0


class TestBalancer:
    def test_rejects_unaggregated(self):
        state = failed_cluster()
        views, initial, selector = initial_solution(state)
        direct = MultiStripeSolution(
            initial.solutions, num_racks=initial.num_racks, aggregated=False
        )
        with pytest.raises(RecoveryError):
            GreedyLoadBalancer().balance(views, direct, selector)

    def test_negative_budget_rejected(self):
        with pytest.raises(RecoveryError):
            GreedyLoadBalancer(iterations=-1)

    def test_zero_iterations_is_identity(self):
        state = failed_cluster()
        views, initial, selector = initial_solution(state)
        balanced, trace = GreedyLoadBalancer(iterations=0).balance(
            views, initial, selector
        )
        assert balanced is initial
        assert trace.substitutions == 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_total_traffic_invariant(self, seed):
        """Balancing only moves traffic between racks; the total (and
        therefore the per-stripe minimum d_j) never changes."""
        state = failed_cluster(seed=seed)
        views, initial, selector = initial_solution(state)
        balanced, _ = GreedyLoadBalancer(iterations=50).balance(
            views, initial, selector
        )
        assert (
            balanced.total_cross_rack_traffic()
            == initial.total_cross_rack_traffic()
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_max_rack_traffic_monotone_nonincreasing(self, seed):
        """The paper's Equation 8 guarantee."""
        state = failed_cluster(seed=seed)
        views, initial, selector = initial_solution(state)
        balancer = GreedyLoadBalancer(iterations=1)
        current = initial
        prev_max = max(current.traffic_by_rack())
        for _ in range(20):
            nxt, trace = balancer.balance(views, current, selector)
            cur_max = max(nxt.traffic_by_rack())
            assert cur_max <= prev_max
            if trace.substitutions == 0:
                break
            prev_max = cur_max
            current = nxt

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_lambda_never_worse_than_initial(self, seed):
        state = failed_cluster(seed=seed)
        views, initial, selector = initial_solution(state)
        balanced, trace = GreedyLoadBalancer(iterations=50).balance(
            views, initial, selector
        )
        assert (
            balanced.load_balancing_rate()
            <= initial.load_balancing_rate() + 1e-12
        )
        assert trace.lambdas[0] == pytest.approx(
            initial.load_balancing_rate()
        )
        assert trace.lambdas[-1] == pytest.approx(
            balanced.load_balancing_rate()
        )

    def test_converges_and_reports_iteration(self):
        state = failed_cluster(seed=1, stripes=40)
        views, initial, selector = initial_solution(state)
        balanced, trace = GreedyLoadBalancer(iterations=200).balance(
            views, initial, selector
        )
        assert trace.converged_at is not None
        assert trace.substitutions == trace.converged_at

    def test_per_stripe_solutions_stay_minimal(self):
        state = failed_cluster(seed=2)
        views, initial, selector = initial_solution(state)
        balanced, _ = GreedyLoadBalancer(iterations=50).balance(
            views, initial, selector
        )
        for sol in balanced.solutions:
            view = views[sol.stripe_id]
            assert sol.num_intact_racks == selector.min_racks(view)
            assert sol.helper_count == state.code.k

    def test_missing_view_raises(self):
        state = failed_cluster(seed=3)
        views, initial, selector = initial_solution(state)
        incomplete = {k: v for k, v in list(views.items())[:1]}
        # Only fails if a substitution is attempted on a missing stripe;
        # force many iterations to make it likely, and accept clean
        # convergence otherwise.
        try:
            GreedyLoadBalancer(iterations=50).balance(
                incomplete, initial, selector
            )
        except RecoveryError:
            pass
