"""Tests for the bandwidth-aware (weighted) balancer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import ConfigurationError, RecoveryError
from repro.recovery.balancer import GreedyLoadBalancer
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution
from repro.recovery.weighted import (
    BandwidthAwareBalancer,
    drain_times,
)


def setup(seed=0, stripes=40, racks=(4, 3, 3, 3), k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    FailureInjector(rng=seed).fail_random_node(state)
    selector = CarSelector(topo, k)
    views = {v.stripe_id: v for v in state.views()}
    initial = MultiStripeSolution(
        [selector.initial_solution(v) for v in views.values()],
        num_racks=topo.num_racks,
        aggregated=True,
    )
    return state, views, initial, selector


class TestDrainTimes:
    def test_basic(self):
        assert drain_times([4, 2], [2.0, 1.0]) == [2.0, 2.0]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            drain_times([1], [1.0, 2.0])

    def test_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            drain_times([1, 1], [1.0, 0.0])


class TestValidation:
    def test_capacity_count_checked(self):
        state, views, initial, selector = setup()
        balancer = BandwidthAwareBalancer([1.0, 1.0])  # wrong count
        with pytest.raises(ConfigurationError):
            balancer.balance(views, initial, selector)

    def test_rejects_unaggregated(self):
        state, views, initial, selector = setup()
        direct = MultiStripeSolution(
            initial.solutions, num_racks=initial.num_racks, aggregated=False
        )
        balancer = BandwidthAwareBalancer([1.0] * initial.num_racks)
        with pytest.raises(RecoveryError):
            balancer.balance(views, direct, selector)

    def test_negative_iterations(self):
        with pytest.raises(ConfigurationError):
            BandwidthAwareBalancer([1.0], iterations=-1)


class TestUniformCapacitiesMatchAlgorithm2:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_same_final_max_traffic(self, seed):
        """With equal capacities the weighted rule is Equation 8, so the
        achieved maximum per-rack traffic matches Algorithm 2's."""
        state, views, initial, selector = setup(seed=seed)
        uniform = BandwidthAwareBalancer(
            [1.0] * initial.num_racks, iterations=100
        )
        weighted_out, _ = uniform.balance(views, initial, selector)
        plain_out, _ = GreedyLoadBalancer(iterations=100).balance(
            views, initial, selector
        )
        assert max(weighted_out.traffic_by_rack()) == max(
            plain_out.traffic_by_rack()
        )


class TestHeterogeneous:
    CAPS = [1.0, 0.25, 1.0, 1.0]  # rack A2 has a quarter-speed uplink

    def test_max_drain_monotone(self):
        state, views, initial, selector = setup(seed=3)
        balancer = BandwidthAwareBalancer(self.CAPS, iterations=100)
        _, trace = balancer.balance(views, initial, selector)
        for a, b in zip(trace.max_drain_times, trace.max_drain_times[1:]):
            assert b <= a + 1e-9
        assert trace.final <= trace.initial

    def test_total_traffic_invariant(self):
        state, views, initial, selector = setup(seed=4)
        balancer = BandwidthAwareBalancer(self.CAPS, iterations=100)
        out, _ = balancer.balance(views, initial, selector)
        assert (
            out.total_cross_rack_traffic()
            == initial.total_cross_rack_traffic()
        )

    def test_slow_rack_gets_less_traffic_than_unweighted(self):
        """The point of the extension: the quarter-speed uplink ends up
        carrying fewer chunks than under capacity-blind balancing."""
        results = {}
        for label, balancer in (
            ("plain", GreedyLoadBalancer(iterations=100)),
            ("weighted", BandwidthAwareBalancer(self.CAPS, iterations=100)),
        ):
            state, views, initial, selector = setup(seed=5)
            if state.topology.rack_of(state.failed_node) == 1:
                pytest.skip("failed rack is the slow rack for this seed")
            out, _ = balancer.balance(views, initial, selector)
            results[label] = out.traffic_by_rack()
        assert results["weighted"][1] <= results["plain"][1]

    def test_weighted_beats_plain_on_drain_time(self):
        improvements = 0
        for seed in range(8):
            state, views, initial, selector = setup(seed=seed)
            if state.topology.rack_of(state.failed_node) == 1:
                continue
            plain_out, _ = GreedyLoadBalancer(iterations=100).balance(
                views, initial, selector
            )
            weighted_out, _ = BandwidthAwareBalancer(
                self.CAPS, iterations=100
            ).balance(views, initial, selector)
            intact = [
                r for r in range(4) if r != weighted_out.failed_rack
            ]
            plain_drain = max(
                drain_times(plain_out.traffic_by_rack(), self.CAPS)[r]
                for r in intact
            )
            weighted_drain = max(
                drain_times(weighted_out.traffic_by_rack(), self.CAPS)[r]
                for r in intact
            )
            assert weighted_drain <= plain_drain + 1e-9
            if weighted_drain < plain_drain - 1e-9:
                improvements += 1
        assert improvements > 0
