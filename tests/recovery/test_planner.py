"""Tests for recovery-plan construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.planner import plan_recovery


def failed_cluster(seed=0, stripes=15, racks=(4, 3, 3, 3), k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestAggregatedPlan:
    def test_plan_traffic_matches_solution(self):
        state, event = failed_cluster()
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        assert plan.cross_rack_chunks() == sol.total_cross_rack_traffic()
        assert (
            plan.cross_rack_by_rack(state.topology.num_racks)
            == sol.traffic_by_rack()
        )

    def test_one_partial_flow_per_intact_rack(self):
        state, event = failed_cluster(seed=1)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for sp, s in zip(plan.stripe_plans, sol.solutions):
            partials = [t for t in sp.transfers if t.is_partial]
            assert len(partials) == s.num_intact_racks
            # Every partial ends at the replacement node.
            assert all(t.dst_node == event.replacement_node for t in partials)

    def test_delegates_hold_a_retrieved_chunk(self):
        state, event = failed_cluster(seed=2)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for sp, s in zip(plan.stripe_plans, sol.solutions):
            for rack, delegate in sp.delegates.items():
                assert state.topology.rack_of(delegate) == rack
                held = {
                    c
                    for (stripe, c) in state.placement.chunks_on_node(delegate)
                    if stripe == sp.stripe_id
                }
                assert held & set(s.chunks_from_rack(rack))

    def test_intra_rack_flows_stay_in_rack(self):
        state, event = failed_cluster(seed=3)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for t in plan.all_transfers():
            if not t.cross_rack:
                assert t.src_rack == t.dst_rack
            assert t.src_node != t.dst_node

    def test_compute_kinds(self):
        state, event = failed_cluster(seed=4)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for sp in plan.stripe_plans:
            kinds = [c.kind for c in sp.compute]
            assert kinds.count("final") == 1
            assert all(k in ("partial", "local", "final") for k in kinds)
            final = next(c for c in sp.compute if c.kind == "final")
            assert final.node == event.replacement_node

    def test_partial_inputs_sum_to_k(self):
        state, event = failed_cluster(seed=5)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for sp in plan.stripe_plans:
            total = sum(
                c.input_chunks
                for c in sp.compute
                if c.kind in ("partial", "local")
            )
            assert total == state.code.k


class TestDirectPlan:
    def test_every_helper_flows_to_replacement(self):
        state, event = failed_cluster(seed=6)
        sol = RandomRecoveryStrategy(rng=6).solve(state)
        plan = plan_recovery(state, event, sol)
        for sp in plan.stripe_plans:
            assert len(sp.transfers) == state.code.k
            assert all(
                t.dst_node == event.replacement_node for t in sp.transfers
            )
            assert not sp.delegates

    def test_traffic_matches_solution(self):
        state, event = failed_cluster(seed=7)
        sol = RandomRecoveryStrategy(rng=7).solve(state)
        plan = plan_recovery(state, event, sol)
        assert plan.cross_rack_chunks() == sol.total_cross_rack_traffic()

    def test_final_decode_covers_all_helpers(self):
        state, event = failed_cluster(seed=8)
        sol = RandomRecoveryStrategy(rng=8).solve(state)
        plan = plan_recovery(state, event, sol)
        for sp, s in zip(plan.stripe_plans, sol.solutions):
            (final,) = sp.compute
            assert final.kind == "final"
            assert final.input_chunks == state.code.k
            assert final.chunks == s.helpers


class TestPlanInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_intra_plus_cross_counts(self, seed):
        """Every retrieved chunk is moved at most once as raw data, and
        aggregated plans ship exactly d_j partials per stripe."""
        state, event = failed_cluster(seed=seed)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        for sp, s in zip(plan.stripe_plans, sol.solutions):
            raw = [t for t in sp.transfers if not t.is_partial]
            # Raw flows never cross racks under aggregation.
            assert all(not t.cross_rack for t in raw)
            moved = {t.chunk_index for t in raw}
            assert len(moved) == len(raw)  # no chunk moved twice
            assert moved <= set(s.helpers)
