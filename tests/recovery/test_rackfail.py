"""Tests for whole-rack failure recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    RandomPlacementPolicy,
)
from repro.cluster.placement import FlatPlacementPolicy
from repro.erasure import RSCode
from repro.errors import NoValidSolutionError
from repro.recovery.rackfail import RackRecovery


def make_state(seed=0, stripes=12, k=6, m=3, racks=(4, 3, 3, 3), policy=None):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    policy = policy or RandomPlacementPolicy(rng=seed)
    placement = policy.place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=128, seed=seed)
    return ClusterState(topo, code, placement, data)


class TestSolve:
    def test_every_rack_recoverable(self):
        """The placement constraint's whole purpose."""
        state = make_state(seed=1)
        recovery = RackRecovery(state)
        for rack in range(state.topology.num_racks):
            solution = recovery.solve(rack)
            for s in solution.stripes:
                assert s.helper_count == state.code.k
                assert rack not in s.racks_accessed

    def test_lost_chunks_bounded_by_m(self):
        state = make_state(seed=2)
        solution = RackRecovery(state).solve(0)
        for s in solution.stripes:
            assert 1 <= len(s.lost_chunks) <= state.code.m

    def test_replacements_valid(self):
        state = make_state(seed=3)
        solution = RackRecovery(state).solve(1)
        for s in solution.stripes:
            layout = state.placement.stripe_layout(s.stripe_id)
            for lost, node in s.replacements.items():
                assert state.topology.rack_of(node) != 1
                assert node not in layout.values()
            # Replacement nodes are pairwise distinct within a stripe.
            assert len(set(s.replacements.values())) == len(s.replacements)

    def test_min_rack_count(self):
        """The rack set is a greedy minimum: removing its smallest rack
        leaves fewer than k helpers."""
        state = make_state(seed=4)
        solution = RackRecovery(state).solve(2)
        for s in solution.stripes:
            sizes = sorted(
                (len(v) for v in s.helpers_by_rack.values()), reverse=True
            )
            if len(sizes) > 1:
                assert sum(sizes[:-1]) < state.code.k

    def test_flat_placement_can_fail(self):
        """Without the rack constraint, rack loss can be unrecoverable."""
        state = make_state(
            seed=0,
            stripes=40,
            racks=(8, 3, 2),
            policy=FlatPlacementPolicy(rng=0),
        )
        with pytest.raises(NoValidSolutionError):
            RackRecovery(state).solve(0)


class TestTraffic:
    def test_aggregation_saves(self):
        state = make_state(seed=5)
        solution = RackRecovery(state).solve(0)
        agg = solution.total_cross_rack_chunks(aggregated=True)
        direct = solution.total_cross_rack_chunks(aggregated=False)
        assert agg < direct

    def test_aggregated_traffic_formula(self):
        state = make_state(seed=6)
        solution = RackRecovery(state).solve(1)
        expected = sum(
            len(s.racks_accessed) * len(s.lost_chunks)
            for s in solution.stripes
        )
        assert solution.total_cross_rack_chunks(True) == expected

    def test_lost_chunk_count(self):
        state = make_state(seed=7)
        solution = RackRecovery(state).solve(0)
        expected = sum(
            state.placement.rack_chunk_count(0, s)
            for s in range(state.placement.num_stripes)
        )
        assert solution.lost_chunk_count == expected


class TestExecute:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 200))
    def test_byte_exact_for_every_rack(self, seed):
        state = make_state(seed=seed, stripes=8)
        recovery = RackRecovery(state)
        for rack in range(state.topology.num_racks):
            solution = recovery.solve(rack)
            assert recovery.execute(solution), (seed, rack)

    def test_execute_requires_data(self):
        code = RSCode(4, 2)
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        placement = RandomPlacementPolicy(rng=0).place(topo, 3, 4, 2)
        state = ClusterState(topo, code, placement)
        recovery = RackRecovery(state)
        solution = recovery.solve(0)
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            recovery.execute(solution)
