"""Tests for the regenerating-code recovery strategies.

Strategy-level behaviour of :class:`RackAwareMSRStrategy` and
:class:`PiggybackStrategy`: parameter derivation, weighted solutions,
planner volume accounting, :class:`StrategyError` naming (including the
``__init_subclass__`` annotation of foreign errors), and factory
pickling for the parallel experiment driver.
"""

import pickle

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import Placement
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import (
    NoValidSolutionError,
    RecoveryError,
    StrategyError,
    annotate_strategy,
)
from repro.experiments.configs import CFS1, CFS2, build_state
from repro.experiments.factories import PiggybackFactory, RackMSRFactory
from repro.recovery.baselines import RecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.recovery.regenerating import (
    PiggybackStrategy,
    RackAwareMSRStrategy,
    rack_msr_params,
)
from repro.recovery.solution import WeightedStripeSolution


def aligned_failed_state(config=CFS1, seed=0, stripes=12):
    state = build_state(
        config, seed, num_stripes=stripes, placement_policy="rack_aligned"
    )
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestRackMsrParams:
    @pytest.mark.parametrize(
        "racks,expected", [(3, (2, 2)), (4, (2, 2)), (5, (3, 4)), (7, (4, 6))]
    )
    def test_derivation(self, racks, expected):
        assert rack_msr_params(racks) == expected

    def test_too_few_racks(self):
        with pytest.raises(StrategyError) as exc:
            rack_msr_params(2)
        assert exc.value.strategy == "RackMSR"
        assert "[RackMSR]" in str(exc.value)


class TestRackAwareMSRStrategy:
    def test_per_stripe_units_equal_bound(self):
        state, _ = aligned_failed_state()
        strategy = RackAwareMSRStrategy()
        solution = strategy.solve(state)
        kbar, dbar = strategy.last_params
        expected = dbar / (kbar - 1)
        for sol in solution:
            assert isinstance(sol, WeightedStripeSolution)
            units = sol.cross_rack_chunks(True)
            assert len(units) == dbar
            assert sum(units.values()) == pytest.approx(expected)
            assert sol.failed_rack not in units

    def test_helpers_balanced_across_racks(self):
        state, _ = aligned_failed_state(config=CFS2, seed=3, stripes=30)
        solution = RackAwareMSRStrategy().solve(state)
        assert solution.load_balancing_rate() == pytest.approx(1.0)

    def test_explicit_kbar_respected(self):
        state, _ = aligned_failed_state(config=CFS2, seed=1)
        strategy = RackAwareMSRStrategy(kbar=2)
        strategy.solve(state)
        assert strategy.last_params == (2, 2)

    def test_kbar_below_two_rejected(self):
        with pytest.raises(StrategyError) as exc:
            RackAwareMSRStrategy(kbar=1)
        assert exc.value.strategy == "RackMSR"

    def test_kbar_too_large_for_topology(self):
        # CFS1 has 3 racks; kbar=3 needs dbar=4 helper racks.
        state, _ = aligned_failed_state()
        with pytest.raises(StrategyError) as exc:
            RackAwareMSRStrategy(kbar=3).solve(state)
        assert "helper racks" in str(exc.value)
        assert exc.value.strategy == "RackMSR"

    def test_too_few_survivor_racks(self):
        # Concentrate a stripe on two of three racks: after losing a
        # node of the first, only one intact rack holds survivors —
        # below dbar=2.
        code = RSCode(2, 2)
        topo = ClusterTopology.from_rack_sizes([2, 2, 2])
        placement = Placement(
            topo, 2, 2, {(0, 0): 0, (0, 1): 1, (0, 2): 2, (0, 3): 3}
        )
        cluster = ClusterState(topo, code, placement)
        cluster.fail_node(0)
        with pytest.raises(StrategyError) as exc:
            RackAwareMSRStrategy().solve(cluster)
        assert exc.value.strategy == "RackMSR"
        assert "rack-aligned" in str(exc.value)


class TestPiggybackStrategy:
    def test_data_repair_costs_half_chunks(self):
        state, _ = aligned_failed_state(seed=2)
        solution = PiggybackStrategy().solve(state)
        k = state.code.k
        for sol in solution:
            total = sum(sol.cross_rack_chunks(False).values())
            # Never worse than RS's k chunk units, even counting the
            # failed rack's free intra-rack halves.
            assert total <= k + 1e-9
            if sol.lost_chunk < k:
                assert total < k

    def test_m_below_two_rejected(self):
        code = RSCode(4, 1)
        topo = ClusterTopology.from_rack_sizes([1, 1, 1, 1, 1])
        placement = Placement(
            topo, 4, 1, {(0, c): c for c in range(5)}
        )
        state = ClusterState(topo, code, placement)
        state.fail_node(0)
        with pytest.raises(StrategyError) as exc:
            PiggybackStrategy().solve(state)
        assert exc.value.strategy == "Piggyback"
        assert "m >= 2" in str(exc.value)


class TestPlannerVolumes:
    @pytest.mark.parametrize(
        "strategy", [RackAwareMSRStrategy(), PiggybackStrategy()],
        ids=["rackmsr", "piggyback"],
    )
    def test_plan_volume_matches_solution_units(self, strategy):
        state, event = aligned_failed_state(seed=4)
        solution = strategy.solve(state)
        plan = plan_recovery(state, event, solution)
        expected = sum(
            sum(s.cross_rack_chunks(solution.aggregated).values())
            for s in solution
        )
        assert plan.cross_rack_volume() == pytest.approx(expected)

    def test_volume_by_rack_matches_solution(self):
        state, event = aligned_failed_state(seed=6)
        solution = RackAwareMSRStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        num_racks = state.topology.num_racks
        per_rack = [0.0] * num_racks
        for s in solution:
            for rack, units in s.cross_rack_chunks(True).items():
                per_rack[rack] += units
        got = plan.cross_rack_volume_by_rack(num_racks)
        assert got == pytest.approx(per_rack)


class TestWeightedSolutionValidation:
    def _kwargs(self, **overrides):
        base = dict(
            stripe_id=0,
            lost_chunk=0,
            failed_rack=0,
            chunks_by_rack={1: (1, 2), 2: (3,)},
            rack_units={1: 0.5, 2: 0.5},
        )
        base.update(overrides)
        return base

    def test_valid(self):
        sol = WeightedStripeSolution(**self._kwargs())
        assert sol.cross_rack_chunks(True) == {1: 0.5, 2: 0.5}
        assert sol.cross_rack_chunks(False) == {1: 0.5, 2: 0.5}

    def test_failed_rack_cannot_ship(self):
        with pytest.raises(RecoveryError):
            WeightedStripeSolution(**self._kwargs(rack_units={0: 1.0, 1: 0.5}))

    def test_units_require_retrieved_chunks(self):
        with pytest.raises(RecoveryError):
            WeightedStripeSolution(**self._kwargs(rack_units={3: 0.5}))

    def test_negative_units_rejected(self):
        with pytest.raises(RecoveryError):
            WeightedStripeSolution(**self._kwargs(rack_units={1: -0.5}))


class TestStrategyErrorPlumbing:
    def test_strategy_error_pickles(self):
        err = StrategyError("boom", strategy="RackMSR")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.strategy == "RackMSR"
        assert "[RackMSR]" in str(clone)

    def test_annotate_strategy_adds_note_once(self):
        err = NoValidSolutionError("nope")
        annotate_strategy(err, "Foo")
        annotate_strategy(err, "Bar")  # first annotation wins
        assert err.strategy == "Foo"
        assert getattr(err, "__notes__", []) == ["strategy: Foo"]

    def test_subclass_hook_annotates_foreign_errors(self):
        class Exploding(RecoveryStrategy):
            name = "Exploding"
            aggregated = False

            def solve(self, state):
                raise NoValidSolutionError("nothing to do")

        state, _ = aligned_failed_state()
        with pytest.raises(NoValidSolutionError) as exc:
            Exploding().solve(state)
        assert exc.value.strategy == "Exploding"
        assert getattr(exc.value, "__notes__", []) == ["strategy: Exploding"]


class TestFactories:
    @pytest.mark.parametrize(
        "factory,cls",
        [
            (RackMSRFactory(), RackAwareMSRStrategy),
            (PiggybackFactory(), PiggybackStrategy),
        ],
        ids=["rackmsr", "piggyback"],
    )
    def test_pickle_and_build(self, factory, cls):
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone(seed=1), cls)

    def test_rackmsr_factory_forwards_kbar(self):
        strategy = RackMSRFactory(kbar=2)(seed=0)
        assert strategy.kbar == 2
