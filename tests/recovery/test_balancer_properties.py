"""Property-based checks of Algorithm 2 on random clusters.

On hundreds of random placements, balancing must (a) never increase
λ at any iteration, (b) terminate within its budget, and (c) leave
every per-stripe solution valid: ``k`` real survivors, the failed
rack's free local reads untouched, Theorem-1 minimality preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.balancer import GreedyLoadBalancer
from repro.recovery.selector import CarSelector, min_racks_needed
from repro.recovery.solution import MultiStripeSolution


@st.composite
def failed_clusters(draw):
    seed = draw(st.integers(0, 10_000))
    num_racks = draw(st.integers(3, 5))
    racks = [draw(st.integers(3, 4)) for _ in range(num_racks)]
    k, m = draw(st.sampled_from([(4, 2), (6, 3)]))
    stripes = draw(st.integers(2, 12))
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(racks)
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    FailureInjector(rng=seed).fail_random_node(state)
    return state


def unbalanced_start(state):
    selector = CarSelector(state.topology, state.code.k)
    views = {v.stripe_id: v for v in state.views()}
    initial = MultiStripeSolution(
        [selector.initial_solution(v) for v in views.values()],
        num_racks=state.topology.num_racks,
        aggregated=True,
    )
    return views, initial, selector


class TestAlgorithm2Properties:
    @settings(max_examples=200, deadline=None)
    @given(failed_clusters())
    def test_lambda_never_increases(self, state):
        views, initial, selector = unbalanced_start(state)
        balanced, trace = GreedyLoadBalancer().balance(
            views, initial, selector
        )
        assert trace.lambdas[0] >= initial.load_balancing_rate() - 1e-9
        for before, after in zip(trace.lambdas, trace.lambdas[1:]):
            assert after <= before + 1e-9
        assert balanced.load_balancing_rate() <= (
            initial.load_balancing_rate() + 1e-9
        )

    @settings(max_examples=200, deadline=None)
    @given(failed_clusters())
    def test_terminates_within_budget(self, state):
        views, initial, selector = unbalanced_start(state)
        balancer = GreedyLoadBalancer(iterations=50)
        _, trace = balancer.balance(views, initial, selector)
        # One λ sample per iteration actually run, plus the initial one.
        assert len(trace.lambdas) <= 50 + 1
        if trace.converged_at is not None:
            assert trace.converged_at <= 50

    @settings(max_examples=200, deadline=None)
    @given(failed_clusters())
    def test_solutions_stay_valid(self, state):
        views, initial, selector = unbalanced_start(state)
        k = state.code.k
        initial_by_stripe = {s.stripe_id: s for s in initial.solutions}
        balanced, _ = GreedyLoadBalancer().balance(views, initial, selector)
        assert {s.stripe_id for s in balanced.solutions} == set(views)
        for sol in balanced.solutions:
            view = views[sol.stripe_id]
            # Exactly k real survivors.
            assert sol.helper_count == k
            assert set(sol.helpers) <= set(view.surviving)
            # Substitution swaps intact racks only: the failed rack's
            # free intra-rack reads are untouched.
            start = initial_by_stripe[sol.stripe_id]
            assert sol.chunks_from_rack(sol.failed_rack) == (
                start.chunks_from_rack(start.failed_rack)
            )
            # Theorem-1 minimality (d_j) is preserved by every swap.
            assert sol.num_intact_racks == min_racks_needed(view, k)
