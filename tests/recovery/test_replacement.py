"""Tests for replacement-node selection policies."""

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.errors import RecoveryError
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery
from repro.recovery.replacement import (
    LeastLoadedReplacementPolicy,
    SameNodeReplacementPolicy,
    SameRackReplacementPolicy,
    eligible_replacements,
    with_replacement,
)


def failed_cluster(seed=0, stripes=3, k=4, m=2, racks=(4, 4, 4)):
    """Few stripes so alternative replacements exist."""
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=64, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestEligibility:
    def test_failed_node_always_eligible(self):
        state, event = failed_cluster()
        assert event.failed_node in eligible_replacements(state, event)

    def test_eligible_nodes_hold_no_affected_chunks(self):
        state, event = failed_cluster()
        affected = set(event.stripes)
        for node in eligible_replacements(state, event):
            if node == event.failed_node:
                continue
            held = {s for s, _ in state.placement.chunks_on_node(node)}
            assert not held & affected

    def test_with_replacement_preserves_failure_fields(self):
        state, event = failed_cluster()
        other = with_replacement(event, 99)
        assert other.replacement_node == 99
        assert other.failed_node == event.failed_node
        assert other.lost_chunks == event.lost_chunks


class TestPolicies:
    def test_same_node(self):
        state, event = failed_cluster()
        chosen = SameNodeReplacementPolicy().apply(state, event)
        assert chosen.replacement_node == event.failed_node

    def test_same_rack_prefers_rack_peer(self):
        found_peer = False
        for seed in range(12):
            state, event = failed_cluster(seed=seed)
            chosen = SameRackReplacementPolicy(rng=1).apply(state, event)
            if chosen.replacement_node != event.failed_node:
                assert (
                    state.topology.rack_of(chosen.replacement_node)
                    == event.failed_rack
                )
                found_peer = True
        assert found_peer  # at 3 stripes some seed yields a free peer

    def test_least_loaded_picks_minimum(self):
        state, event = failed_cluster(seed=1)
        chosen = LeastLoadedReplacementPolicy().apply(state, event)
        loads = {
            n: len(state.placement.chunks_on_node(n))
            for n in eligible_replacements(state, event)
        }
        assert loads[chosen.replacement_node] == min(loads.values())

    def test_apply_rejects_ineligible(self):
        state, event = failed_cluster(seed=2)

        class BadPolicy(SameNodeReplacementPolicy):
            def choose(self, state, event):
                # Any node holding an affected chunk (not the failed one).
                stripe = event.stripes[0]
                layout = state.placement.stripe_layout(stripe)
                return next(
                    n for n in layout.values() if n != event.failed_node
                )

        with pytest.raises(RecoveryError):
            BadPolicy().apply(state, event)


class TestEndToEndWithAlternateReplacement:
    def test_out_of_rack_replacement_still_byte_exact(self):
        """The planner/executor handle any replacement; reconstruction
        stays byte-exact even when partials land in another rack."""
        done = False
        for seed in range(20):
            state, event = failed_cluster(seed=seed)
            candidates = [
                n
                for n in eligible_replacements(state, event)
                if state.topology.rack_of(n) != event.failed_rack
            ]
            if not candidates:
                continue
            alt = with_replacement(event, candidates[0])
            solution = CarStrategy().solve(state)
            plan = plan_recovery(state, alt, solution)
            assert PlanExecutor(state).execute(plan, solution).verified
            done = True
            break
        assert done

    def test_out_of_rack_replacement_costs_traffic(self):
        """Moving the replacement out of the failed rack turns the local
        retrievals into cross-rack flows: plan-level traffic grows (or
        stays equal when there was nothing local)."""
        compared = False
        for seed in range(30):
            state, event = failed_cluster(
                seed=seed, stripes=2, racks=(3, 3, 3, 3, 3)
            )
            solution = CarStrategy().solve(state)
            used_racks = {
                r for sol in solution.solutions for r in sol.chunks_by_rack
            }
            # A replacement in an *accessed* rack can absorb a partial
            # flow and reduce traffic; pick one in an untouched rack so
            # the inequality is strict whenever local chunks exist.
            candidates = [
                n
                for n in eligible_replacements(state, event)
                if state.topology.rack_of(n) not in used_racks
            ]
            if not candidates:
                continue
            local_chunks = sum(
                len(sol.chunks_from_rack(event.failed_rack))
                for sol in solution.solutions
            )
            same = plan_recovery(state, event, solution).cross_rack_chunks()
            moved = plan_recovery(
                state, with_replacement(event, candidates[0]), solution
            ).cross_rack_chunks()
            assert moved == same + local_chunks
            compared = True
        assert compared
