"""Tests for Theorem 1 and per-stripe solution construction.

Includes the brute-force minimality check: the sorted-prefix rule of
Theorem 1 must agree with exhaustive search over all rack subsets.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState, StripeView
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import NoValidSolutionError, RecoveryError
from repro.recovery.selector import (
    CarSelector,
    build_solution,
    iter_valid_rack_sets,
    min_racks_needed,
)


def make_view(rack_counts, failed_rack=0, stripe_id=0):
    """A synthetic StripeView with the given surviving counts per rack.

    Surviving chunk indices are assigned densely; node ids are faked so
    chunks_in_rack works through a matching topology built alongside.
    """
    topo = ClusterTopology.from_rack_sizes([max(1, c) for c in rack_counts])
    surviving = {}
    chunk = 0
    for rack, count in enumerate(rack_counts):
        nodes = topo.nodes_in_rack(rack)
        for i in range(count):
            surviving[chunk] = nodes[i % len(nodes)]
            chunk += 1
    # Ensure one chunk per node: rebuild topology if a rack has fewer
    # nodes than chunks (tests use counts <= rack size).
    view = StripeView(
        stripe_id=stripe_id,
        lost_chunk=99,
        surviving=surviving,
        rack_counts=tuple(rack_counts),
        failed_rack=failed_rack,
    )
    return view, topo


class TestTheorem1:
    def test_worked_example_from_paper(self):
        """Figure 4: counts (3 local after failure, 1, 3, 2, 4), k=8 -> d=2."""
        view, _ = make_view([3, 1, 3, 2, 4], failed_rack=0)
        assert min_racks_needed(view, k=8) == 2

    def test_zero_racks_when_local_suffices(self):
        view, _ = make_view([4, 1, 1], failed_rack=0)
        assert min_racks_needed(view, k=4) == 0

    def test_unrecoverable_raises(self):
        view, _ = make_view([1, 1, 1], failed_rack=0)
        with pytest.raises(NoValidSolutionError):
            min_racks_needed(view, k=5)

    def test_exactly_k_survivors(self):
        view, _ = make_view([0, 2, 2], failed_rack=0)
        assert min_racks_needed(view, k=4) == 2

    @settings(max_examples=100, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 4), min_size=2, max_size=6),
        k=st.integers(1, 12),
        data=st.data(),
    )
    def test_matches_bruteforce_minimum(self, counts, k, data):
        """Theorem 1's d equals exhaustive search over rack subsets."""
        failed = data.draw(st.integers(0, len(counts) - 1))
        view, _ = make_view(counts, failed_rack=failed)
        intact = [i for i in range(len(counts)) if i != failed]
        local = counts[failed]
        feasible = local + sum(counts[i] for i in intact) >= k
        if not feasible:
            with pytest.raises(NoValidSolutionError):
                min_racks_needed(view, k)
            return
        d = min_racks_needed(view, k)
        brute = next(
            size
            for size in range(len(intact) + 1)
            if any(
                local + sum(counts[i] for i in combo) >= k
                for combo in itertools.combinations(intact, size)
            )
        )
        assert d == brute


class TestValidRackSets:
    def test_paper_example_has_two_valid_sets(self):
        """Figure 4 discussion: {A3, A5} and {A3, A4} are both valid."""
        view, _ = make_view([3, 1, 3, 2, 4], failed_rack=0)
        sets = list(iter_valid_rack_sets(view, k=8))
        assert (2, 4) in sets
        assert (2, 3) in sets
        # {A2, anything smaller} cannot reach 8.
        assert (1, 3) not in sets

    def test_all_sets_have_min_size_and_suffice(self):
        view, _ = make_view([2, 3, 1, 2, 2], failed_rack=1)
        k = 6
        d = min_racks_needed(view, k)
        for rs in iter_valid_rack_sets(view, k):
            assert len(rs) == d
            assert view.rack_counts[1] + sum(
                view.rack_counts[r] for r in rs
            ) >= k
            assert 1 not in rs

    def test_local_only_yields_empty_set(self):
        view, _ = make_view([4, 1], failed_rack=0)
        assert list(iter_valid_rack_sets(view, k=3)) == [()]


class TestBuildSolution:
    def make_state(self, seed=0):
        code = RSCode(6, 3)
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=seed).place(topo, 10, 6, 3)
        state = ClusterState(topo, code, placement)
        state.fail_node(placement.node_of(0, 0))
        return state

    def test_solution_has_exactly_k_helpers(self):
        state = self.make_state()
        selector = CarSelector(state.topology, state.code.k)
        for view in state.views():
            s = selector.initial_solution(view)
            assert s.helper_count == state.code.k

    def test_solution_uses_min_racks(self):
        state = self.make_state()
        selector = CarSelector(state.topology, state.code.k)
        for view in state.views():
            s = selector.initial_solution(view)
            assert s.num_intact_racks == selector.min_racks(view)

    def test_local_chunks_always_used_first(self):
        state = self.make_state()
        selector = CarSelector(state.topology, state.code.k)
        for view in state.views():
            s = selector.initial_solution(view)
            local = view.rack_counts[view.failed_rack]
            if local and s.num_intact_racks > 0:
                assert len(s.chunks_from_rack(view.failed_rack)) == min(
                    local, state.code.k
                )

    def test_every_valid_solution_is_buildable(self):
        state = self.make_state(seed=3)
        selector = CarSelector(state.topology, state.code.k)
        for view in state.views():
            for s in selector.all_valid_solutions(view):
                assert s.helper_count == state.code.k
                assert set(s.intact_racks_accessed).isdisjoint(
                    {view.failed_rack}
                )

    def test_rejects_failed_rack_in_set(self):
        state = self.make_state()
        view = state.views()[0]
        with pytest.raises(RecoveryError):
            build_solution(
                view, [view.failed_rack], state.code.k, state.topology
            )

    def test_rejects_insufficient_rack_set(self):
        view, topo = make_view([0, 1, 5], failed_rack=0)
        with pytest.raises(RecoveryError):
            build_solution(view, [1], 6, topo)

    def test_rejects_superfluous_rack_set(self):
        view, topo = make_view([6, 2, 2], failed_rack=0)
        with pytest.raises(RecoveryError):
            build_solution(view, [1], 4, topo)  # local already covers k


class TestSubstitute:
    def test_substitute_moves_one_rack(self):
        view, topo = make_view([1, 3, 3, 3], failed_rack=0)
        selector = CarSelector(topo, k=4)
        current = selector.initial_solution(view)
        used = current.intact_racks_accessed[0]
        unused = next(
            r for r in (1, 2, 3) if r not in current.intact_racks_accessed
        )
        replacement = selector.substitute(view, current, used, unused)
        assert replacement is not None
        assert not replacement.uses_rack(used)
        assert replacement.uses_rack(unused)
        assert replacement.num_intact_racks == current.num_intact_racks

    def test_substitute_refuses_invalid_target(self):
        view, topo = make_view([1, 4, 1, 1], failed_rack=0)
        selector = CarSelector(topo, k=5)
        current = selector.initial_solution(view)  # must use rack 1
        # Swapping rack 1 (4 chunks) for rack 2 (1 chunk) cannot reach k.
        assert selector.substitute(view, current, 1, 2) is None

    def test_substitute_noop_when_racks_not_applicable(self):
        view, topo = make_view([1, 3, 3, 3], failed_rack=0)
        selector = CarSelector(topo, k=4)
        current = selector.initial_solution(view)
        used = current.intact_racks_accessed[0]
        assert selector.substitute(view, current, 99, 1) is None  # not used
        assert selector.substitute(view, current, used, used) is None
        assert selector.substitute(view, current, used, 0) is None  # failed rack
