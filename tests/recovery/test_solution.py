"""Tests for per-stripe and multi-stripe solution objects."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution


def sol(stripe=0, lost=0, failed_rack=0, chunks_by_rack=None):
    return PerStripeSolution(
        stripe_id=stripe,
        lost_chunk=lost,
        failed_rack=failed_rack,
        chunks_by_rack=chunks_by_rack or {0: (1, 2), 1: (3,), 2: (4, 5)},
    )


class TestPerStripe:
    def test_helpers_sorted(self):
        assert sol().helpers == (1, 2, 3, 4, 5)

    def test_helper_count(self):
        assert sol().helper_count == 5

    def test_intact_racks(self):
        s = sol()
        assert s.intact_racks_accessed == (1, 2)
        assert s.num_intact_racks == 2

    def test_uses_rack(self):
        s = sol()
        assert s.uses_rack(1)
        assert not s.uses_rack(3)

    def test_chunks_from_rack(self):
        s = sol()
        assert s.chunks_from_rack(2) == (4, 5)
        assert s.chunks_from_rack(9) == ()

    def test_cross_rack_chunks_aggregated(self):
        assert sol().cross_rack_chunks(aggregated=True) == {1: 1, 2: 1}

    def test_cross_rack_chunks_direct(self):
        assert sol().cross_rack_chunks(aggregated=False) == {1: 1, 2: 2}

    def test_failed_rack_never_counts(self):
        assert 0 not in sol().cross_rack_chunks(aggregated=False)

    def test_rack_map(self):
        assert sol().rack_map() == {1: 0, 2: 0, 3: 1, 4: 2, 5: 2}

    def test_rejects_lost_chunk_retrieval(self):
        with pytest.raises(RecoveryError):
            sol(lost=3)

    def test_rejects_duplicate_chunk(self):
        with pytest.raises(RecoveryError):
            sol(chunks_by_rack={0: (1,), 1: (1,)})

    def test_rejects_empty_rack_entry(self):
        with pytest.raises(RecoveryError):
            sol(chunks_by_rack={0: ()})


class TestMultiStripe:
    def make(self, aggregated=True):
        s0 = sol(stripe=0, chunks_by_rack={1: (1, 2), 2: (3,)})
        s1 = sol(stripe=1, chunks_by_rack={1: (4,), 3: (5, 6)})
        return MultiStripeSolution([s1, s0], num_racks=4, aggregated=aggregated)

    def test_sorted_by_stripe(self):
        ms = self.make()
        assert [s.stripe_id for s in ms] == [0, 1]
        assert len(ms) == 2

    def test_empty_rejected(self):
        with pytest.raises(RecoveryError):
            MultiStripeSolution([], num_racks=3, aggregated=True)

    def test_mixed_failed_racks_rejected(self):
        with pytest.raises(RecoveryError):
            MultiStripeSolution(
                [sol(failed_rack=0), sol(stripe=1, failed_rack=1)],
                num_racks=4,
                aggregated=True,
            )

    def test_traffic_by_rack_aggregated(self):
        ms = self.make(aggregated=True)
        assert ms.traffic_by_rack() == [0, 2, 1, 1]
        assert ms.total_cross_rack_traffic() == 4

    def test_traffic_by_rack_direct(self):
        ms = self.make(aggregated=False)
        assert ms.traffic_by_rack() == [0, 3, 1, 2]

    def test_lambda(self):
        ms = self.make(aggregated=True)
        # intact traffic [2, 1, 1] -> max 2 / mean 4/3
        assert ms.load_balancing_rate() == pytest.approx(2 / (4 / 3))

    def test_lambda_at_least_one(self):
        ms = self.make()
        assert ms.load_balancing_rate() >= 1.0

    def test_lambda_defined_without_traffic(self):
        s = sol(stripe=0, chunks_by_rack={0: (1, 2, 3)})
        ms = MultiStripeSolution([s], num_racks=3, aggregated=True)
        assert ms.load_balancing_rate() == 1.0

    def test_solution_for(self):
        ms = self.make()
        assert ms.solution_for(1).stripe_id == 1
        with pytest.raises(RecoveryError):
            ms.solution_for(9)

    def test_replace(self):
        ms = self.make()
        new = sol(stripe=0, chunks_by_rack={3: (1, 2, 3)})
        replaced = ms.replace(new)
        assert replaced.solution_for(0).uses_rack(3)
        # Original untouched.
        assert ms.solution_for(0).uses_rack(1)

    def test_replace_unknown_stripe(self):
        ms = self.make()
        with pytest.raises(RecoveryError):
            ms.replace(sol(stripe=5))

    def test_repr_mentions_lambda(self):
        assert "lambda=" in repr(self.make())
