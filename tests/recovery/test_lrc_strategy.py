"""Tests for group-aligned placement and the LRC local-recovery strategy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    GroupAlignedPlacementPolicy,
)
from repro.erasure import LRCCode, RSCode
from repro.errors import ConfigurationError, PlacementError, RecoveryError
from repro.recovery import (
    CarStrategy,
    LrcLocalRecoveryStrategy,
    PlanExecutor,
    lrc_groups_for_placement,
    plan_recovery,
)


def lrc_cluster(seed=1, stripes=15, k=8, l=2, g=2, racks=(6, 6, 4, 4)):
    code = LRCCode(k=k, l=l, g=g)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    groups = lrc_groups_for_placement(code)
    placement = GroupAlignedPlacementPolicy(groups, rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=128, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestGroupAlignedPlacement:
    def test_groups_land_in_single_racks(self):
        state, _ = lrc_cluster()
        code = state.code
        for stripe in range(state.placement.num_stripes):
            for group in range(code.l):
                chunks = list(code.group_members(group)) + [
                    code.local_parity_index(group)
                ]
                racks = {
                    state.placement.rack_of_chunk(stripe, c) for c in chunks
                }
                assert len(racks) == 1, (stripe, group)

    def test_distinct_groups_distinct_racks(self):
        state, _ = lrc_cluster()
        code = state.code
        for stripe in range(state.placement.num_stripes):
            rack_of_group = [
                state.placement.rack_of_chunk(
                    stripe, code.group_members(g)[0]
                )
                for g in range(code.l)
            ]
            assert len(set(rack_of_group)) == code.l

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ConfigurationError):
            GroupAlignedPlacementPolicy([(0, 1), (1, 2)])

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            GroupAlignedPlacementPolicy([()])

    def test_rejects_group_larger_than_any_rack(self):
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        policy = GroupAlignedPlacementPolicy([(0, 1, 2, 3)], rng=0)
        with pytest.raises(PlacementError):
            policy.place(topo, 1, 4, 2)

    def test_rejects_out_of_range_group(self):
        topo = ClusterTopology.from_rack_sizes([4, 4])
        policy = GroupAlignedPlacementPolicy([(0, 99)], rng=0)
        with pytest.raises(PlacementError):
            policy.place(topo, 1, 3, 1)

    def test_placement_is_complete_and_valid(self):
        state, _ = lrc_cluster(stripes=10)
        # Placement's own validator ran at construction; check counters.
        for stripe in range(10):
            assert sum(state.placement.rack_counts(stripe)) == state.code.n


class TestLrcLocalRecovery:
    def test_requires_lrc_code(self):
        code = RSCode(4, 2)
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        from repro.cluster.placement import RandomPlacementPolicy

        placement = RandomPlacementPolicy(rng=0).place(topo, 3, 4, 2)
        state = ClusterState(topo, code, placement)
        state.fail_node(placement.node_of(0, 0))
        with pytest.raises(RecoveryError):
            LrcLocalRecoveryStrategy().solve(state)

    def test_zero_cross_rack_traffic_for_aligned_data_chunks(self):
        """The headline: aligned groups make local repairs rack-local."""
        state, _ = lrc_cluster(seed=3)
        solution = LrcLocalRecoveryStrategy().solve(state)
        code = state.code
        for sol in solution.solutions:
            if code.group_of(sol.lost_chunk) is not None:
                assert sol.num_intact_racks == 0, sol.stripe_id

    def test_helper_counts_are_local(self):
        state, _ = lrc_cluster(seed=4)
        solution = LrcLocalRecoveryStrategy().solve(state)
        code = state.code
        for sol in solution.solutions:
            if code.group_of(sol.lost_chunk) is not None:
                assert sol.helper_count == code.group_size
            else:
                assert sol.helper_count == code.k

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 200))
    def test_byte_exact_execution(self, seed):
        state, event = lrc_cluster(seed=seed)
        solution = LrcLocalRecoveryStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        assert PlanExecutor(state).execute(plan, solution).verified

    def test_traffic_below_rs_car_on_same_width(self):
        """Same stripe width and storage overhead: LRC local repair ships
        (much) less cross-rack data than RS + CAR."""
        state, _ = lrc_cluster(seed=5, stripes=20)
        lrc_traffic = (
            LrcLocalRecoveryStrategy().solve(state).total_cross_rack_traffic()
        )

        rs = RSCode(8, 4)
        topo = ClusterTopology.from_rack_sizes([6, 6, 4, 4])
        from repro.cluster.placement import RandomPlacementPolicy

        placement = RandomPlacementPolicy(rng=5).place(topo, 20, 8, 4)
        rs_state = ClusterState(topo, rs, placement)
        FailureInjector(rng=5).fail_random_node(rs_state)
        car_traffic = CarStrategy().solve(rs_state).total_cross_rack_traffic()
        assert lrc_traffic < car_traffic

    def test_rack_fault_tolerance_is_sacrificed(self):
        """The other side of the trade: an aligned LRC group's rack is a
        single point of (data-availability) stress — losing it erases
        group+parity together, which g globals cannot always absorb."""
        state, _ = lrc_cluster(seed=6, stripes=5)
        code = state.code
        vulnerable = False
        for stripe in range(5):
            for rack in range(state.topology.num_racks):
                lost = [
                    c
                    for c in range(code.n)
                    if state.placement.rack_of_chunk(stripe, c) == rack
                ]
                available = [c for c in range(code.n) if c not in lost]
                if not code.is_recoverable(available):
                    vulnerable = True
        assert vulnerable
