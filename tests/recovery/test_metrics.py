"""Tests for traffic reports and reduction ratios."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.metrics import reduction_ratio, traffic_report
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution


def simple_solution(aggregated=True):
    s0 = PerStripeSolution(
        stripe_id=0,
        lost_chunk=0,
        failed_rack=0,
        chunks_by_rack={0: (1,), 1: (2, 3), 2: (4,)},
    )
    s1 = PerStripeSolution(
        stripe_id=1,
        lost_chunk=5,
        failed_rack=0,
        chunks_by_rack={1: (1, 2), 2: (3, 4)},
    )
    return MultiStripeSolution([s0, s1], num_racks=3, aggregated=aggregated)


class TestTrafficReport:
    def test_aggregated_counts(self):
        report = traffic_report(simple_solution(True), 1024, "CAR")
        assert report.per_rack_chunks == (0, 2, 2)
        assert report.total_chunks == 4
        assert report.total_bytes == 4 * 1024
        assert report.num_stripes == 2
        assert report.strategy == "CAR"

    def test_direct_counts(self):
        report = traffic_report(simple_solution(False), 1024)
        assert report.per_rack_chunks == (0, 4, 3)

    def test_per_rack_bytes(self):
        report = traffic_report(simple_solution(True), 10)
        assert report.per_rack_bytes == (0, 20, 20)

    def test_max_rack(self):
        assert traffic_report(simple_solution(False), 1).max_rack_chunks == 4

    def test_per_stripe(self):
        assert traffic_report(simple_solution(True), 1).per_stripe_chunks() == 2.0

    def test_lambda_included(self):
        report = traffic_report(simple_solution(True), 1)
        assert report.lambda_rate == pytest.approx(1.0)

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(RecoveryError):
            traffic_report(simple_solution(), 0)


class TestReduction:
    def test_basic(self):
        base = traffic_report(simple_solution(False), 1, "RR")
        better = traffic_report(simple_solution(True), 1, "CAR")
        assert reduction_ratio(base, better) == pytest.approx(1 - 4 / 7)

    def test_zero_baseline_rejected(self):
        s = PerStripeSolution(
            stripe_id=0,
            lost_chunk=0,
            failed_rack=0,
            chunks_by_rack={0: (1, 2)},
        )
        ms = MultiStripeSolution([s], num_racks=2, aggregated=True)
        base = traffic_report(ms, 1)
        with pytest.raises(RecoveryError):
            reduction_ratio(base, base)
