"""Tests for recovery strategies (CAR, RR, ablations, enumeration)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import NoValidSolutionError, RecoveryError
from repro.recovery.baselines import (
    CarStrategy,
    EnumerationBalancedStrategy,
    MinRackNoAggregationStrategy,
    RandomAggregatedStrategy,
    RandomRecoveryStrategy,
)
from repro.recovery.selector import CarSelector, min_racks_needed


def failed_cluster(seed=0, stripes=20, racks=(4, 3, 3, 3), k=6, m=3):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    state = ClusterState(topo, code, placement)
    FailureInjector(rng=seed).fail_random_node(state)
    return state


class TestCarStrategy:
    def test_solution_is_aggregated(self):
        state = failed_cluster()
        sol = CarStrategy().solve(state)
        assert sol.aggregated

    def test_traffic_equals_sum_of_min_racks(self):
        """With aggregation, CAR's total cross-rack traffic is exactly
        the sum of the per-stripe minimum rack counts d_j."""
        state = failed_cluster(seed=4)
        sol = CarStrategy().solve(state)
        expected = sum(
            min_racks_needed(v, state.code.k) for v in state.views()
        )
        assert sol.total_cross_rack_traffic() == expected

    def test_load_balancing_improves_or_keeps_lambda(self):
        state = failed_cluster(seed=5, stripes=40)
        with_lb = CarStrategy(load_balance=True).solve(state)
        without = CarStrategy(load_balance=False).solve(state)
        assert (
            with_lb.load_balancing_rate()
            <= without.load_balancing_rate() + 1e-12
        )

    def test_trace_available(self):
        state = failed_cluster()
        strategy = CarStrategy(load_balance=True)
        strategy.solve(state)
        assert strategy.last_trace is not None
        assert strategy.last_trace.lambdas

    def test_nolb_trace_single_point(self):
        state = failed_cluster()
        strategy = CarStrategy(load_balance=False)
        sol = strategy.solve(state)
        assert strategy.last_trace.lambdas == [sol.load_balancing_rate()]

    def test_name(self):
        assert CarStrategy().name == "CAR"
        assert CarStrategy(load_balance=False).name == "CAR-noLB"

    def test_no_failure_raises(self):
        state = failed_cluster()
        state.heal()
        with pytest.raises(Exception):
            CarStrategy().solve(state)


class TestRandomRecovery:
    def test_solution_not_aggregated(self):
        state = failed_cluster()
        assert not RandomRecoveryStrategy(rng=1).solve(state).aggregated

    def test_each_stripe_uses_k_helpers(self):
        state = failed_cluster()
        sol = RandomRecoveryStrategy(rng=1).solve(state)
        for s in sol.solutions:
            assert s.helper_count == state.code.k

    def test_reproducible_by_seed(self):
        state = failed_cluster()
        a = RandomRecoveryStrategy(rng=9).solve(state)
        b = RandomRecoveryStrategy(rng=9).solve(state)
        assert a.traffic_by_rack() == b.traffic_by_rack()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_car_never_ships_more_than_rr(self, seed):
        """The paper's headline: CAR <= RR in cross-rack traffic, always
        (CAR is the minimum by Theorem 1 + aggregation)."""
        state = failed_cluster(seed=seed)
        car = CarStrategy().solve(state)
        rr = RandomRecoveryStrategy(rng=seed).solve(state)
        assert (
            car.total_cross_rack_traffic() <= rr.total_cross_rack_traffic()
        )


class TestAblations:
    def test_minrack_noagg_between_rr_and_car(self):
        state = failed_cluster(seed=7, stripes=50)
        car = CarStrategy().solve(state).total_cross_rack_traffic()
        mid = MinRackNoAggregationStrategy().solve(state)
        rr = RandomRecoveryStrategy(rng=7).solve(state)
        assert not mid.aggregated
        assert car <= mid.total_cross_rack_traffic()

    def test_random_agg_between_rr_and_car(self):
        state = failed_cluster(seed=8, stripes=50)
        car = CarStrategy().solve(state).total_cross_rack_traffic()
        ragg = RandomAggregatedStrategy(rng=8).solve(state)
        rr = RandomRecoveryStrategy(rng=8).solve(state)
        assert ragg.aggregated
        assert car <= ragg.total_cross_rack_traffic()
        assert (
            ragg.total_cross_rack_traffic() <= rr.total_cross_rack_traffic()
        )


class TestEnumeration:
    def test_optimal_lambda_never_above_greedy(self):
        state = failed_cluster(seed=2, stripes=5)
        greedy = CarStrategy().solve(state)
        optimal = EnumerationBalancedStrategy().solve(state)
        assert (
            optimal.load_balancing_rate()
            <= greedy.load_balancing_rate() + 1e-12
        )

    def test_same_total_traffic_as_greedy(self):
        state = failed_cluster(seed=2, stripes=5)
        greedy = CarStrategy().solve(state)
        optimal = EnumerationBalancedStrategy().solve(state)
        assert (
            optimal.total_cross_rack_traffic()
            == greedy.total_cross_rack_traffic()
        )

    def test_budget_guard(self):
        state = failed_cluster(seed=3, stripes=40)
        strategy = EnumerationBalancedStrategy(max_combinations=2)
        try:
            strategy.solve(state)
        except RecoveryError:
            return
        # If the space happened to be tiny, the count must respect it.
        assert strategy.combinations_tried <= 2
