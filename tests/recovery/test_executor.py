"""Tests for byte-exact plan execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import PlanError
from repro.recovery.baselines import (
    CarStrategy,
    MinRackNoAggregationStrategy,
    RandomAggregatedStrategy,
    RandomRecoveryStrategy,
)
from repro.recovery.executor import PlanExecutor
from repro.recovery.planner import plan_recovery


def failed_cluster(seed=0, stripes=12, k=6, m=3, chunk_size=256):
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=chunk_size, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestExecution:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: CarStrategy(),
            lambda: CarStrategy(load_balance=False),
            lambda: RandomRecoveryStrategy(rng=5),
            lambda: MinRackNoAggregationStrategy(),
            lambda: RandomAggregatedStrategy(rng=5),
        ],
        ids=["CAR", "CAR-noLB", "RR", "minrack-noagg", "random-agg"],
    )
    def test_every_strategy_reconstructs_byte_exactly(self, strategy_factory):
        state, event = failed_cluster(seed=1)
        sol = strategy_factory().solve(state)
        plan = plan_recovery(state, event, sol)
        result = PlanExecutor(state).execute(plan, sol)
        assert result.verified
        assert set(result.reconstructed) == set(event.stripes)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_car_verified_for_random_clusters(self, seed):
        state, event = failed_cluster(seed=seed)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        assert PlanExecutor(state).execute(plan, sol).verified

    def test_requires_data_store(self):
        code = RSCode(4, 2)
        topo = ClusterTopology.from_rack_sizes([3, 3, 3])
        placement = RandomPlacementPolicy(rng=0).place(topo, 3, 4, 2)
        state = ClusterState(topo, code, placement)
        with pytest.raises(PlanError):
            PlanExecutor(state)

    def test_transfer_byte_accounting(self):
        state, event = failed_cluster(seed=2, chunk_size=128)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        result = PlanExecutor(state).execute(plan, sol)
        assert result.cross_rack_bytes == plan.cross_rack_chunks() * 128
        assert result.intra_rack_bytes == plan.intra_rack_chunks() * 128

    def test_compute_charged_to_delegates_and_replacement(self):
        state, event = failed_cluster(seed=3)
        sol = CarStrategy().solve(state)
        plan = plan_recovery(state, event, sol)
        result = PlanExecutor(state).execute(plan, sol)
        assert event.replacement_node in result.bytes_computed_by_node
        delegate_nodes = {
            d for sp in plan.stripe_plans for d in sp.delegates.values()
        }
        for d in delegate_nodes:
            assert result.bytes_computed_by_node.get(d, 0) > 0

    def test_rr_computes_only_at_replacement(self):
        state, event = failed_cluster(seed=4)
        sol = RandomRecoveryStrategy(rng=4).solve(state)
        plan = plan_recovery(state, event, sol)
        result = PlanExecutor(state).execute(plan, sol)
        assert set(result.bytes_computed_by_node) == {event.replacement_node}

    def test_total_compute_bytes(self):
        state, event = failed_cluster(seed=5, chunk_size=64)
        sol = RandomRecoveryStrategy(rng=5).solve(state)
        plan = plan_recovery(state, event, sol)
        result = PlanExecutor(state).execute(plan, sol)
        # RR decodes k chunks per stripe at the replacement node.
        expected = len(event.stripes) * state.code.k * 64
        assert result.total_compute_bytes == expected
