"""Admission control: modelled clock, token bucket, shared link, priority."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import (
    AdmissionController,
    ModeledLink,
    ServiceClock,
    TokenBucket,
)


class FakeTime:
    """Injectable monotonic source so tests control the wall clock."""

    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


class TestServiceClock:
    def test_now_scales_by_speedup(self):
        wall = FakeTime()
        clock = ServiceClock(speedup=200.0, clock=wall)
        assert clock.now() == 0.0
        wall.t += 0.5
        assert clock.now() == pytest.approx(100.0)

    def test_to_real_inverts_speedup(self):
        clock = ServiceClock(speedup=50.0, clock=FakeTime())
        assert clock.to_real(5.0) == pytest.approx(0.1)
        assert clock.to_real(-3.0) == 0.0

    def test_bad_speedup(self):
        with pytest.raises(ConfigurationError):
            ServiceClock(speedup=0)


class TestTokenBucket:
    def test_burst_is_free(self):
        bucket = TokenBucket(rate_bytes_per_s=100.0, burst_bytes=500.0)
        assert bucket.reserve(500, now=0.0) == 0.0

    def test_debt_waits_for_refill(self):
        bucket = TokenBucket(rate_bytes_per_s=100.0, burst_bytes=0.0)
        # 200 bytes at 100 B/s with no burst: 2 s of debt.
        assert bucket.reserve(200, now=0.0) == pytest.approx(2.0)
        # Immediately reserving more stacks on the existing debt.
        assert bucket.reserve(100, now=0.0) == pytest.approx(3.0)

    def test_refill_clears_debt(self):
        bucket = TokenBucket(rate_bytes_per_s=100.0, burst_bytes=0.0)
        bucket.reserve(200, now=0.0)
        assert bucket.reserve(0, now=2.0) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_bytes_per_s=100.0, burst_bytes=100.0)
        bucket.reserve(100, now=0.0)  # drained
        # 1000 s idle refills at most `burst`, not rate * elapsed.
        assert bucket.reserve(200, now=1000.0) == pytest.approx(1.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_bytes_per_s=100.0, burst_bytes=0.0)
        bucket.reserve(100, now=5.0)
        # An out-of-order caller must not mint free elapsed time.
        assert bucket.reserve(0, now=1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_bytes_per_s=0, burst_bytes=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_bytes_per_s=1, burst_bytes=-1)
        bucket = TokenBucket(rate_bytes_per_s=1, burst_bytes=1)
        with pytest.raises(ConfigurationError):
            bucket.reserve(-1, now=0.0)


class TestModeledLink:
    def test_idle_link_charges_service_time(self):
        link = ModeledLink(capacity_bytes_per_s=1000.0)
        assert link.reserve(500, now=0.0) == pytest.approx(0.5)

    def test_fifo_queueing(self):
        link = ModeledLink(capacity_bytes_per_s=1000.0)
        link.reserve(1000, now=0.0)  # busy until t=1
        # Second transfer queues: 1 s wait + 0.5 s service.
        assert link.reserve(500, now=0.0) == pytest.approx(1.5)

    def test_idle_gap_is_not_charged(self):
        link = ModeledLink(capacity_bytes_per_s=1000.0)
        link.reserve(1000, now=0.0)
        # Arriving at t=5 finds the link idle again.
        assert link.reserve(1000, now=5.0) == pytest.approx(1.0)
        assert link.busy_seconds == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModeledLink(capacity_bytes_per_s=0)


def controller(wall, **kwargs):
    clock = ServiceClock(speedup=1.0, clock=wall)
    link = ModeledLink(capacity_bytes_per_s=1000.0)
    return AdmissionController(link, clock, **kwargs)


class TestAdmissionController:
    def test_uncapped_repair_only_queues_on_link(self):
        admission = controller(FakeTime())
        assert admission.repair_delay(500) == pytest.approx(0.5)
        assert admission.repair_delay(500) == pytest.approx(1.0)

    def test_cap_slows_repair_but_not_clients(self):
        wall = FakeTime()
        admission = controller(wall, repair_cap_bytes_per_s=100.0,
                               repair_burst_bytes=0.0)
        # Repair pays the token wait on top of link time...
        assert admission.repair_delay(500) == pytest.approx(5.0 + 0.5)
        # ...but the link itself was only charged 0.5 s, so a client
        # arriving now queues behind 0.5 s of traffic, not 5.5 s.
        assert admission.client_delay(500) == pytest.approx(0.5 + 0.5)

    def test_client_priority_taxes_repair_while_clients_active(self):
        wall = FakeTime()
        admission = controller(
            wall,
            repair_cap_bytes_per_s=100.0,
            repair_burst_bytes=0.0,
            client_priority=4.0,
            priority_window=10.0,
        )
        admission.client_delay(0)  # mark clients active at t=0
        # 100 repair bytes cost 400 tokens: 4 s of token wait.
        assert admission.repair_delay(100) == pytest.approx(4.0 + 0.1)

    def test_priority_lapses_after_window(self):
        wall = FakeTime()
        admission = controller(
            wall,
            repair_cap_bytes_per_s=100.0,
            repair_burst_bytes=0.0,
            client_priority=4.0,
            priority_window=1.0,
        )
        admission.client_delay(0)
        wall.t += 5.0  # modelled t=5, window over
        assert admission.repair_delay(100) == pytest.approx(1.0 + 0.1)

    def test_priority_must_not_penalise_clients(self):
        with pytest.raises(ConfigurationError):
            controller(FakeTime(), client_priority=0.5)

    def test_snapshot_counts_bytes(self):
        admission = controller(
            FakeTime(), repair_cap_bytes_per_s=100.0, client_priority=2.0
        )
        admission.client_delay(300)
        admission.repair_delay(700)
        snap = admission.snapshot()
        assert snap["client_bytes"] == 300
        assert snap["repair_bytes"] == 700
        assert snap["repair_cap_bytes_per_s"] == 100.0
        assert snap["client_priority"] == 2.0
        assert snap["link_busy_model_s"] == pytest.approx(1.0)
