"""End-to-end service: detection, degraded reads under live repair."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import NoValidSolutionError
from repro.obs.tracer import validate_events
from repro.service.cluster import LocalCluster


def make_cluster(tmp_path, **kwargs):
    defaults = dict(
        workdir=tmp_path,
        num_stripes=8,
        chunk_size=1024,
        speedup=400.0,
    )
    defaults.update(kwargs)
    return LocalCluster(**defaults)


async def wait_for_repair_start(cluster, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while cluster.coordinator.repair is None:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("failure was never detected")
        await asyncio.sleep(0.005)


class TestHealthyReads:
    def test_read_without_failure_is_direct(self, tmp_path):
        async def drill():
            cluster = make_cluster(tmp_path)
            await cluster.start()
            try:
                client = await cluster.client()
                reply = await client.read(0)
                assert reply["ok"]
                assert not reply["degraded"]
                assert reply["data"] == cluster.state.data.chunk(
                    0, reply["chunk"]
                ).tobytes()
                await client.close()
            finally:
                await cluster.stop()

        asyncio.run(drill())


class TestFailureToRepair:
    def test_kill_detect_repair_verify(self, tmp_path):
        """The whole arc: silence -> DEAD -> background repair -> verified."""

        async def drill():
            cluster = make_cluster(tmp_path)
            await cluster.start()
            try:
                victim = cluster.pick_victim()
                cluster.kill_node(victim)
                # Detection is by lease timeout, never notification.
                await wait_for_repair_start(cluster)
                assert cluster.state.failed_node == victim
                await cluster.wait_repair(timeout=60)
                repair = cluster.coordinator.repair
                assert repair.error is None and repair.crash is None
                assert repair.result.verified
                done = len(repair.result.executed) + len(
                    repair.result.replayed
                )
                assert done == len(list(cluster.state.affected_stripes()))
                events = cluster.all_events()
                validate_events(events)
                names = {
                    e["name"] for e in events if e.get("type") == "event"
                }
                assert "service.failure.primary" in names
                assert "service.repair.done" in names
            finally:
                await cluster.stop()

        asyncio.run(drill())

    def test_degraded_reads_under_live_repair(self, tmp_path):
        async def drill():
            cluster = make_cluster(
                tmp_path, repair_cap=1024, speedup=50.0
            )
            await cluster.start()
            try:
                victim = cluster.pick_victim()
                cluster.kill_node(victim)
                await wait_for_repair_start(cluster)
                stripes = list(cluster.state.affected_stripes())
                assert stripes
                client = await cluster.client()
                for stripe in stripes:
                    reply = await client.read(stripe)
                    assert reply["ok"], f"stripe {stripe} mismatched"
                    assert reply["degraded"]
                    assert reply["racks"] >= 1
                    assert reply["data"] == cluster.state.data.chunk(
                        stripe, reply["chunk"]
                    ).tobytes()
                status = await client.status()
                assert status["degraded_reads"] >= len(stripes)
                assert status["repair"]["status"] in (
                    "running",
                    "finished",
                )
                await client.close()
                await cluster.wait_repair(timeout=120)
                assert cluster.coordinator.repair.result.verified
                trace = cluster.write_trace()
                assert trace.exists()
            finally:
                await cluster.stop()

        asyncio.run(drill())


class TestSecondaryFailure:
    def test_secondary_node_death_replans(self, tmp_path):
        """A helper dying mid-repair cancels, re-plans, and still verifies."""

        async def drill():
            cluster = make_cluster(
                tmp_path, repair_cap=1024, speedup=50.0
            )
            await cluster.start()
            try:
                victim = cluster.pick_victim()
                cluster.kill_node(victim)
                await wait_for_repair_start(cluster)
                topo = cluster.state.topology
                second = next(
                    n.node_id
                    for n in topo.nodes
                    if n.node_id != victim
                    and topo.rack_of(n.node_id) != topo.rack_of(victim)
                )
                cluster.kill_node(second)
                await cluster.wait_repair(timeout=120)
                repair = cluster.coordinator.repair
                assert repair.result is not None, (
                    repair.error,
                    repair.crash,
                )
                assert repair.result.verified
                assert repair.replans >= 1
                assert second in repair.dead_nodes
                events = cluster.all_events()
                validate_events(events)
                assert any(
                    e.get("type") == "event"
                    and e["name"] == "service.repair.replan"
                    for e in events
                )
            finally:
                await cluster.stop()

        asyncio.run(drill())

    def test_losing_a_whole_chunkserver_is_data_loss(self, tmp_path):
        """Killing a whole daemon drops too many chunks: a terminal error."""

        async def drill():
            cluster = make_cluster(
                tmp_path, repair_cap=1024, speedup=50.0
            )
            await cluster.start()
            try:
                victim = cluster.pick_victim()
                cluster.kill_node(victim)
                await wait_for_repair_start(cluster)
                other = next(
                    cs
                    for cs in cluster.chunkservers
                    if victim not in cs.nodes
                )
                cluster.kill_chunkserver(other.server_id)
                await cluster.wait_repair(timeout=120)
                repair = cluster.coordinator.repair
                assert repair.result is None
                assert isinstance(
                    repair.error, NoValidSolutionError
                ) or repair.error is not None
            finally:
                await cluster.stop()

        asyncio.run(drill())
