"""Kill the coordinator mid-repair; a fresh one resumes from the journal.

Two levels, both riding the durable layer's crash machinery
(``crash_after_records``, the same hook the crash matrix in
``tests/durable/`` sweeps):

- :class:`~repro.service.repair.RepairService` driven directly on the
  shared ``build_failed_cluster`` helper from ``tests/durable/conftest``;
- the full :class:`~repro.service.cluster.LocalCluster` drill through
  :meth:`~repro.service.cluster.LocalCluster.restart_coordinator`.
"""

from __future__ import annotations

import asyncio

from tests.durable.conftest import build_failed_cluster

from repro.recovery.baselines import CarStrategy
from repro.service.admission import (
    AdmissionController,
    ModeledLink,
    ServiceClock,
)
from repro.service.cluster import LocalCluster
from repro.service.repair import RepairService


def make_admission():
    clock = ServiceClock(speedup=100_000.0)
    return clock, AdmissionController(ModeledLink(1 << 30), clock)


def make_service(state, event, journal, clock, admission, **kwargs):
    service = RepairService(
        state,
        event,
        CarStrategy(),
        journal,
        clock,
        admission,
        window=2,
        **kwargs,
    )
    service.start()
    assert service.join(timeout=60)
    return service


class TestRepairServiceResume:
    def test_crash_then_resume_replays_committed_stripes(self, tmp_path):
        state, event = build_failed_cluster()
        journal = tmp_path / "repair.journal"
        clock, admission = make_admission()

        # Incarnation 1: the coordinator dies mid-journal.
        first = make_service(
            state, event, journal, clock, admission,
            crash_after_records=12,
        )
        assert first.crash is not None
        assert first.result is None
        assert first.snapshot()["status"] == "crashed"
        assert journal.exists()

        # Incarnation 2: same state + journal path, no crash armed.
        second = make_service(state, event, journal, clock, admission)
        result = second.result
        assert result is not None, (second.error, second.crash)
        assert result.verified  # byte-identical against ground truth
        assert result.replayed, "crash landed after a commit: must replay"
        assert set(result.replayed) | set(result.executed) == set(event.stripes)
        # Replayed stripes ship no cross-rack bytes the second time.
        assert result.live_cross_rack_bytes < result.cross_rack_bytes
        snap = second.snapshot()
        assert snap["status"] == "finished"
        assert snap["live_cross_rack_bytes"] < snap["cross_rack_bytes"]

    def test_crash_before_any_commit_reruns_everything(self, tmp_path):
        state, event = build_failed_cluster()
        journal = tmp_path / "repair.journal"
        clock, admission = make_admission()
        first = make_service(
            state, event, journal, clock, admission,
            crash_after_records=2,
        )
        assert first.crash is not None
        second = make_service(state, event, journal, clock, admission)
        result = second.result
        assert result is not None and result.verified
        assert not result.replayed
        assert set(result.executed) == set(event.stripes)


class TestLocalClusterResume:
    def test_restart_coordinator_resumes_from_journal(self, tmp_path):
        async def drill():
            cluster = LocalCluster(
                workdir=tmp_path,
                num_stripes=8,
                chunk_size=1024,
                repair_cap=32 * 1024,
                speedup=50.0,
                crash_after_records=18,
            )
            await cluster.start()
            try:
                victim = cluster.pick_victim()
                cluster.kill_node(victim)
                await cluster.wait_repair(timeout=60)
                crashed = cluster.coordinator.repair
                assert crashed.crash is not None
                assert cluster.journal_path.exists()

                await cluster.restart_coordinator()
                await cluster.wait_repair(timeout=120)
                repair = cluster.coordinator.repair
                result = repair.result
                assert result is not None, (repair.error, repair.crash)
                assert result.verified
                assert result.replayed
                assert result.live_cross_rack_bytes < result.cross_rack_bytes
                done = set(result.replayed) | set(result.executed)
                assert done == set(cluster.state.affected_stripes())

                # Degraded data is whole again end-to-end: a client read
                # of a replayed stripe matches ground truth bytes.
                client = await cluster.client()
                reply = await client.read(result.replayed[0])
                assert reply["ok"]
                assert reply["data"] == cluster.state.data.chunk(
                    result.replayed[0], reply["chunk"]
                ).tobytes()
                await client.close()

                # The merged trace (dead coordinator + live one) validates.
                trace = cluster.write_trace()
                assert trace.exists()
            finally:
                await cluster.stop()

        asyncio.run(drill())
