"""Wire-protocol frames: round-trips, torn frames, size limits."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_BLOB_BYTES,
    MAX_HEADER_BYTES,
    FrameReader,
    MsgType,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)


class TestRoundTrip:
    def test_header_only(self):
        msg = {"type": MsgType.HEARTBEAT, "server": "cs0", "nodes": [1, 2]}
        decoded, blob = decode_frame(encode_frame(msg))
        assert decoded == msg
        assert blob == b""

    def test_header_and_blob(self):
        payload = bytes(range(256)) * 17
        msg = {"type": MsgType.CHUNK_DATA, "stripe": 3, "chunk": 1}
        decoded, blob = decode_frame(encode_frame(msg, payload))
        assert decoded == msg
        assert blob == payload

    def test_unicode_header(self):
        msg = {"type": MsgType.ERROR, "error": "rack échoué"}
        decoded, _ = decode_frame(encode_frame(msg))
        assert decoded == msg

    def test_non_dict_header_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame(["not", "a", "dict"])

    def test_missing_type_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame({"no_type": 1})


class TestTornFrames:
    def test_every_truncation_point_is_torn(self):
        frame = encode_frame({"type": MsgType.STATUS}, b"xyz")
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_refused(self):
        frame = encode_frame({"type": MsgType.STATUS})
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(frame + b"\x00")

    def test_header_not_json(self):
        raw = struct.pack("!II", 3, 0) + b"{{{"
        with pytest.raises(ProtocolError, match="JSON"):
            decode_frame(raw)

    def test_header_json_but_not_object(self):
        body = b"[1, 2]"
        raw = struct.pack("!II", len(body), 0) + body
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(raw)


class TestSizeLimits:
    def test_oversized_declared_header(self):
        raw = struct.pack("!II", MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="header length"):
            decode_frame(raw + b"\x00" * 8)

    def test_oversized_declared_blob(self):
        raw = struct.pack("!II", 2, MAX_BLOB_BYTES + 1) + b"{}"
        with pytest.raises(ProtocolError, match="blob length"):
            decode_frame(raw + b"\x00" * 8)

    def test_encode_refuses_oversized_header(self):
        msg = {"type": "x", "pad": "a" * (MAX_HEADER_BYTES + 1)}
        with pytest.raises(ProtocolError, match="header"):
            encode_frame(msg)

    def test_reader_raises_before_body_arrives(self):
        # The incremental reader must refuse a hostile length prefix
        # immediately, not buffer 64 MiB waiting for it.
        reader = FrameReader()
        with pytest.raises(ProtocolError):
            reader.feed(struct.pack("!II", MAX_HEADER_BYTES + 1, 0))


class TestFrameReader:
    def test_byte_at_a_time(self):
        msg = {"type": MsgType.READ, "stripe": 9}
        wire = encode_frame(msg, b"pay")
        reader = FrameReader()
        frames = []
        for i in range(len(wire)):
            frames.extend(reader.feed(wire[i : i + 1]))
        assert frames == [(msg, b"pay")]
        assert reader.at_boundary

    def test_two_frames_one_feed(self):
        a = encode_frame({"type": "a"})
        b = encode_frame({"type": "b"}, b"blob")
        reader = FrameReader()
        frames = reader.feed(a + b)
        assert [m["type"] for m, _ in frames] == ["a", "b"]

    def test_partial_tail_stays_buffered(self):
        wire = encode_frame({"type": "a"}) + b"\x00\x00"
        reader = FrameReader()
        frames = reader.feed(wire)
        assert len(frames) == 1
        assert not reader.at_boundary
        assert reader.buffered == 2


class TestAsyncStreams:
    def _reader_with(self, data: bytes, eof: bool = True):
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_read_one_frame(self):
        msg = {"type": MsgType.STATUS}

        async def run():
            reader = self._reader_with(encode_frame(msg, b"zz"))
            return await read_frame(reader)

        got_msg, blob = asyncio.run(run())
        assert got_msg == msg
        assert blob == b"zz"

    def test_clean_eof_returns_none(self):
        async def run():
            return await read_frame(self._reader_with(b""))

        assert asyncio.run(run()) is None

    def test_eof_mid_prefix_is_torn(self):
        async def run():
            return await read_frame(self._reader_with(b"\x00\x00"))

        with pytest.raises(ProtocolError, match="torn"):
            asyncio.run(run())

    def test_eof_mid_body_is_torn(self):
        wire = encode_frame({"type": MsgType.STATUS}, b"abcdef")

        async def run():
            return await read_frame(self._reader_with(wire[:-2]))

        with pytest.raises(ProtocolError, match="torn"):
            asyncio.run(run())

    def test_write_then_read_over_socket(self):
        msg = {"type": MsgType.READ_CHUNK, "stripe": 0, "chunk": 2, "node": 5}

        async def run():
            received = []
            done = asyncio.Event()

            async def serve(reader, writer):
                received.append(await read_frame(reader))
                writer.close()
                done.set()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            addr = server.sockets[0].getsockname()[:2]
            _, writer = await asyncio.open_connection(*addr)
            await write_frame(writer, msg, b"net")
            await done.wait()
            writer.close()
            server.close()
            await server.wait_closed()
            return received[0]

        got_msg, blob = asyncio.run(run())
        assert got_msg == msg
        assert blob == b"net"
