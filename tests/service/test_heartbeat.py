"""Failure detection: lease expiry drives ALIVE -> SUSPECT -> DEAD."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service.heartbeat import FailureDetector, NodeHealth


def detector():
    return FailureDetector(suspect_after=1.0, dead_after=3.0)


class TestRegistration:
    def test_register_makes_alive(self):
        d = detector()
        transitions = d.register("cs0", [1, 2], now=0.0)
        assert {t.node_id for t in transitions} == {1, 2}
        assert all(t.new is NodeHealth.ALIVE for t in transitions)
        assert d.health(1) is NodeHealth.ALIVE
        assert d.server_of(2) == "cs0"

    def test_double_registration_elsewhere_refused(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        with pytest.raises(ServiceError):
            d.register("cs1", [1], now=0.0)

    def test_bad_timeouts_refused(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(suspect_after=0, dead_after=1)
        with pytest.raises(ConfigurationError):
            FailureDetector(suspect_after=2, dead_after=2)


class TestExpiry:
    def test_silence_degrades_then_kills(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        assert d.check(now=0.9) == []
        [suspect] = d.check(now=1.5)
        assert suspect.old is NodeHealth.ALIVE
        assert suspect.new is NodeHealth.SUSPECT
        assert d.check(now=2.0) == []
        [dead] = d.check(now=3.5)
        assert dead.new is NodeHealth.DEAD
        assert d.dead_nodes() == frozenset({1})

    def test_one_poll_can_do_both_transitions(self):
        # A detector that slept past both thresholds must still emit the
        # SUSPECT record before the DEAD one.
        d = detector()
        d.register("cs0", [1], now=0.0)
        transitions = d.check(now=10.0)
        assert [t.new for t in transitions] == [
            NodeHealth.SUSPECT,
            NodeHealth.DEAD,
        ]

    def test_beat_keeps_alive(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        for t in (0.8, 1.6, 2.4):
            d.beat("cs0", [1], now=t)
            assert d.check(now=t + 0.1) == []
        assert d.health(1) is NodeHealth.ALIVE

    def test_late_beat_recovers_suspect(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        d.check(now=1.5)
        assert d.health(1) is NodeHealth.SUSPECT
        [recovered] = d.beat("cs0", [1], now=2.0)
        assert recovered.old is NodeHealth.SUSPECT
        assert recovered.new is NodeHealth.ALIVE
        assert d.check(now=2.5) == []

    def test_dead_is_sticky_under_beats(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        d.check(now=5.0)
        assert d.health(1) is NodeHealth.DEAD
        assert d.beat("cs0", [1], now=5.1) == []
        assert d.health(1) is NodeHealth.DEAD

    def test_reregistration_revives_dead(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        d.check(now=5.0)
        [revived] = d.register("cs0", [1], now=6.0)
        assert revived.old is NodeHealth.DEAD
        assert revived.new is NodeHealth.ALIVE


class TestPartialBeats:
    def test_omitted_node_dies_alone(self):
        # A chunkserver that keeps beating but drops node 2 from the
        # list simulates a single dead disk on a live host.
        d = detector()
        d.register("cs0", [1, 2], now=0.0)
        for t in (0.8, 1.6, 2.4, 3.2):
            d.beat("cs0", [1], now=t)
            d.check(now=t)
        assert d.health(1) is NodeHealth.ALIVE
        assert d.health(2) is NodeHealth.DEAD
        assert d.dead_nodes() == frozenset({2})
        assert d.alive_nodes() == frozenset({1})

    def test_foreign_server_beats_ignored(self):
        d = detector()
        d.register("cs0", [1], now=0.0)
        d.beat("cs1", [1], now=2.0)  # not its node: no refresh
        transitions = d.check(now=3.5)
        assert transitions[-1].new is NodeHealth.DEAD

    def test_snapshot_is_json_ready(self):
        d = detector()
        d.register("cs0", [2, 1], now=0.0)
        d.check(now=5.0)
        assert d.snapshot() == {1: "dead", 2: "dead"}
