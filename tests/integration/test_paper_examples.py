"""The paper's worked examples, reproduced exactly.

Figure 3: two recovery solutions for the (8, 6) code on the Figure 1
cluster — retrieving from five racks ships four cross-rack chunks,
retrieving from three ships two.

Figure 4: Theorem 1 on surviving counts (3, 1, 3, 2, 4) with k = 8
gives d = 2, with both {A3, A5} and {A3, A4} valid.

Figure 6: a four-stripe solution with per-rack traffic (4, 1, 2, 2)
has λ = 16/9; one Algorithm 2 substitution (A2 → A3) lowers it to
λ = 12/9.
"""

import pytest

from repro.cluster.state import StripeView
from repro.cluster.topology import ClusterTopology
from repro.recovery.balancer import GreedyLoadBalancer
from repro.recovery.selector import CarSelector, iter_valid_rack_sets, min_racks_needed
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution

K = 8  # the running example's (k=8, m=6) RS code


def view_with_counts(counts, failed_rack, topology, stripe_id=0):
    """A StripeView over ``topology`` with given surviving counts."""
    surviving = {}
    chunk = 0
    for rack, count in enumerate(counts):
        nodes = topology.nodes_in_rack(rack)
        assert count <= len(nodes)
        for i in range(count):
            surviving[chunk] = nodes[i]
            chunk += 1
    return StripeView(
        stripe_id=stripe_id,
        lost_chunk=99,
        surviving=surviving,
        rack_counts=tuple(counts),
        failed_rack=failed_rack,
    )


@pytest.fixture
def figure1_topology():
    """Five racks of four nodes (Figure 1)."""
    return ClusterTopology.from_rack_sizes([4, 4, 4, 4, 4])


class TestFigure3:
    """Aggregated cross-rack traffic = number of intact racks accessed."""

    def make_solution(self, chunks_by_rack):
        return PerStripeSolution(
            stripe_id=0,
            lost_chunk=99,
            failed_rack=0,
            chunks_by_rack=chunks_by_rack,
        )

    def test_five_rack_solution_ships_four_chunks(self):
        # Figure 3(a): chunks from A1 (failed, local) and A2..A5.
        sol = self.make_solution(
            {0: (0, 1), 1: (2,), 2: (3, 4), 3: (5,), 4: (6, 7)}
        )
        assert sol.helper_count == K
        assert sum(sol.cross_rack_chunks(aggregated=True).values()) == 4

    def test_three_rack_solution_ships_two_chunks(self):
        # Figure 3(b): chunks from A1 (local), A2 and A5 only.
        sol = self.make_solution({0: (0, 1, 2), 1: (3, 4), 4: (5, 6, 7)})
        assert sol.helper_count == K
        assert sum(sol.cross_rack_chunks(aggregated=True).values()) == 2

    def test_without_aggregation_both_ship_more(self):
        sol_a = self.make_solution(
            {0: (0, 1), 1: (2,), 2: (3, 4), 3: (5,), 4: (6, 7)}
        )
        sol_b = self.make_solution({0: (0, 1, 2), 1: (3, 4), 4: (5, 6, 7)})
        assert sum(sol_a.cross_rack_chunks(aggregated=False).values()) == 6
        assert sum(sol_b.cross_rack_chunks(aggregated=False).values()) == 5


class TestFigure4:
    """Theorem 1's worked example."""

    def test_d_is_two(self, figure1_topology):
        view = view_with_counts([3, 1, 3, 2, 4], 0, figure1_topology)
        assert min_racks_needed(view, K) == 2

    def test_valid_sets_match_paper(self, figure1_topology):
        view = view_with_counts([3, 1, 3, 2, 4], 0, figure1_topology)
        sets = set(iter_valid_rack_sets(view, K))
        # The paper names {A3, A5} (i.e. racks 2 and 4) and {A3, A4}
        # (racks 2 and 3); Equation 2 also admits {A2, A5} (1 + 4 + 3 =
        # 8) and {A4, A5}.
        assert sets == {(1, 4), (2, 3), (2, 4), (3, 4)}

    def test_initial_pick_takes_largest_racks(self, figure1_topology):
        view = view_with_counts([3, 1, 3, 2, 4], 0, figure1_topology)
        sol = CarSelector(figure1_topology, K).initial_solution(view)
        # Largest intact racks: A5 (4 chunks) and A3 (3 chunks).
        assert sol.intact_racks_accessed == (2, 4)


class TestFigure6:
    """Algorithm 2's worked substitution: λ 16/9 → 12/9."""

    def build(self, figure1_topology):
        # Four stripes, failed rack A1 (rack 0).  The initial solutions
        # produce per-rack traffic t = (0, 4, 1, 2, 2) as in Fig. 6(a):
        # every stripe reads from A2; stripes also read from A3/A4/A5.
        # Surviving counts are arranged so stripe 3 can swap A2 for A3.
        views = {}
        solutions = []
        layouts = [
            # (counts per rack, racks used by the initial solution)
            # Together these give t = (4, 1, 2, 2) over A2..A5, the
            # paper's Figure 6(a) histogram.
            ([2, 4, 2, 4, 0], (1, 3)),
            ([2, 4, 2, 0, 4], (1, 4)),
            ([2, 4, 2, 0, 4], (1, 4)),
            ([2, 2, 2, 2, 2], (1, 2, 3)),
        ]
        for stripe_id, (counts, racks) in enumerate(layouts):
            view = view_with_counts(
                counts, 0, figure1_topology, stripe_id=stripe_id
            )
            views[stripe_id] = view
            chunks_by_rack = {}
            # local chunks first
            chunks = view.chunks_in_rack(0, figure1_topology)
            need = K - len(chunks)
            chunks_by_rack[0] = tuple(chunks)
            for rack in racks:
                take = min(counts[rack], need)
                rack_chunks = view.chunks_in_rack(rack, figure1_topology)
                chunks_by_rack[rack] = tuple(rack_chunks[:take])
                need -= take
            assert need == 0
            solutions.append(
                PerStripeSolution(
                    stripe_id=stripe_id,
                    lost_chunk=99,
                    failed_rack=0,
                    chunks_by_rack=chunks_by_rack,
                )
            )
        initial = MultiStripeSolution(
            solutions, num_racks=5, aggregated=True
        )
        return views, initial

    def test_initial_lambda_is_sixteen_ninths(self, figure1_topology):
        _, initial = self.build(figure1_topology)
        assert initial.traffic_by_rack() == [0, 4, 1, 2, 2]
        assert initial.load_balancing_rate() == pytest.approx(16 / 9)

    def test_one_substitution_gives_twelve_ninths(self, figure1_topology):
        views, initial = self.build(figure1_topology)
        selector = CarSelector(figure1_topology, K)
        balancer = GreedyLoadBalancer(iterations=1)
        balanced, trace = balancer.balance(views, initial, selector)
        assert trace.substitutions == 1
        after = balanced.traffic_by_rack()
        # One per-stripe solution moved off A2 (paper: onto A3): the max
        # drops 4 -> 3 and λ = 12/9 exactly.
        assert max(after[1:]) == 3
        assert balanced.load_balancing_rate() == pytest.approx(12 / 9)
        assert sum(after) == sum(initial.traffic_by_rack())

    def test_convergence_matches_equation8(self, figure1_topology):
        """Running to convergence: no pair of intact racks differs by 2+
        unless no valid substitution exists."""
        views, initial = self.build(figure1_topology)
        selector = CarSelector(figure1_topology, K)
        balanced, trace = GreedyLoadBalancer(iterations=50).balance(
            views, initial, selector
        )
        assert trace.converged_at is not None
        t = balanced.traffic_by_rack()
        assert max(t[1:]) - min(t[1:]) <= 2
