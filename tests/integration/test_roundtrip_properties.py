"""Property-based byte-exact round trips through recovery.

Random clusters are encoded, failed, recovered, and verified against
ground truth — through RS/CAR and through LRC local recovery — and the
paper's Equation 7 traffic identity must hold exactly: an aggregated
recovery ships one partially decoded chunk per accessed intact rack,
so ``cross_rack_bytes == (sum of d_j over stripes) * chunk_size``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    GroupAlignedPlacementPolicy,
    RandomPlacementPolicy,
)
from repro.erasure import LRCCode, RSCode
from repro.recovery import (
    CarStrategy,
    LrcLocalRecoveryStrategy,
    PlanExecutor,
    lrc_groups_for_placement,
    plan_recovery,
)

CHUNK = 128


@st.composite
def rs_clusters(draw):
    seed = draw(st.integers(0, 10_000))
    num_racks = draw(st.integers(3, 5))
    racks = [draw(st.integers(3, 4)) for _ in range(num_racks)]
    k, m = draw(st.sampled_from([(4, 2), (6, 3)]))
    stripes = draw(st.integers(1, 6))
    code = RSCode(k, m)
    topo = ClusterTopology.from_rack_sizes(racks)
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


@st.composite
def lrc_clusters(draw):
    seed = draw(st.integers(0, 10_000))
    stripes = draw(st.integers(1, 5))
    code = LRCCode(k=4, l=2, g=2)
    topo = ClusterTopology.from_rack_sizes([4, 4, 3, 3])
    groups = lrc_groups_for_placement(code)
    placement = GroupAlignedPlacementPolicy(groups, rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def recover(state, event, strategy):
    solution = strategy.solve(state)
    plan = plan_recovery(state, event, solution)
    result = PlanExecutor(state).execute(plan, solution)
    return solution, result


class TestRsRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(rs_clusters())
    def test_car_recovery_is_byte_exact(self, case):
        state, event = case
        _, result = recover(state, event, CarStrategy())
        assert result.verified
        assert set(result.reconstructed) == set(state.affected_stripes())

    @settings(max_examples=200, deadline=None)
    @given(rs_clusters())
    def test_equation7_traffic_identity(self, case):
        """One partial chunk crosses the core per accessed intact rack."""
        state, event = case
        solution, result = recover(state, event, CarStrategy())
        assert solution.aggregated
        accessed_racks = sum(
            sol.num_intact_racks for sol in solution.solutions
        )
        assert result.cross_rack_bytes == accessed_racks * CHUNK


class TestLrcRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(lrc_clusters())
    def test_local_recovery_is_byte_exact(self, case):
        state, event = case
        _, result = recover(state, event, LrcLocalRecoveryStrategy())
        assert result.verified
        assert set(result.reconstructed) == set(state.affected_stripes())

    @settings(max_examples=100, deadline=None)
    @given(lrc_clusters())
    def test_equation7_traffic_identity(self, case):
        """Group-aligned local repair stays rack-local, so Equation 7
        degenerates to zero cross-rack bytes — and must still hold."""
        state, event = case
        solution, result = recover(state, event, LrcLocalRecoveryStrategy())
        assert solution.aggregated
        accessed_racks = sum(
            sol.num_intact_racks for sol in solution.solutions
        )
        assert result.cross_rack_bytes == accessed_racks * CHUNK
