"""Scale sanity: CAR on clusters larger than the paper's testbed.

The paper's complexity claim — Algorithm 2 is O(e * r * s) — implies
CAR stays cheap as clusters and stripe counts grow.  These tests run a
60-node, 10-rack cluster with 500 stripes (5x the paper's workload) and
bound the planning wall-clock, plus a GF(2^16) wide-stripe pipeline.
"""

import time

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.executor import PlanExecutor
from repro.recovery.planner import plan_recovery
from repro.recovery.selector import min_racks_needed


@pytest.fixture(scope="module")
def big_cluster():
    code = RSCode(12, 4)
    topo = ClusterTopology.from_rack_sizes([6] * 10)
    placement = RandomPlacementPolicy(rng=99).place(topo, 500, 12, 4)
    state = ClusterState(topo, code, placement)
    FailureInjector(rng=99).fail_random_node(state)
    return state


class TestBigCluster:
    def test_car_solves_quickly(self, big_cluster):
        start = time.monotonic()
        solution = CarStrategy(iterations=100).solve(big_cluster)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # planning, not data movement
        assert solution.total_cross_rack_traffic() == sum(
            min_racks_needed(v, 12) for v in big_cluster.views()
        )

    def test_traffic_savings_hold_at_scale(self, big_cluster):
        car = CarStrategy().solve(big_cluster)
        rr = RandomRecoveryStrategy(rng=1).solve(big_cluster)
        saving = 1 - car.total_cross_rack_traffic() / rr.total_cross_rack_traffic()
        assert saving > 0.5  # k=12 over 10 racks: aggregation bites hard

    def test_lambda_near_one_at_scale(self, big_cluster):
        solution = CarStrategy(iterations=200).solve(big_cluster)
        assert solution.load_balancing_rate() < 1.1

    def test_placement_constraints_at_scale(self, big_cluster):
        assert big_cluster.placement.is_rack_fault_tolerant()


class TestWideStripeGF16:
    def test_wide_stripe_end_to_end(self):
        """A 30-chunk stripe needs GF(2^16)-capable plumbing throughout."""
        code = RSCode(24, 6, w=16)
        topo = ClusterTopology.from_rack_sizes([6] * 6)
        placement = RandomPlacementPolicy(rng=5).place(topo, 5, 24, 6)
        data = DataStore(code, 5, chunk_size=128, seed=5)
        state = ClusterState(topo, code, placement, data)
        event = FailureInjector(rng=5).fail_random_node(state)
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        assert PlanExecutor(state).execute(plan, solution).verified
