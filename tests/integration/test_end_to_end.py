"""End-to-end integration tests across all layers.

Each test walks the full pipeline: build cluster -> place stripes ->
inject failure -> solve -> plan -> execute on real bytes -> simulate
timing -> check the paper's invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import quick_recovery_demo
from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.executor import PlanExecutor
from repro.recovery.metrics import reduction_ratio, traffic_report
from repro.recovery.planner import plan_recovery
from repro.recovery.selector import min_racks_needed
from repro.sim.recovery_sim import RecoverySimulator

MB = 1 << 20


def build(seed, racks, k, m, stripes=15, chunk_size=256, construction="vandermonde"):
    code = RSCode(k, m, construction=construction)
    topo = ClusterTopology.from_rack_sizes(list(racks))
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, k, m)
    data = DataStore(code, stripes, chunk_size=chunk_size, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestFullPipeline:
    @pytest.mark.parametrize(
        "racks,k,m",
        [
            ((4, 3, 3), 4, 3),        # CFS1
            ((4, 3, 3, 3), 6, 3),     # CFS2
            ((6, 4, 5, 3, 2), 10, 4), # CFS3
        ],
        ids=["CFS1", "CFS2", "CFS3"],
    )
    def test_paper_configs_end_to_end(self, racks, k, m):
        state, event = build(1, racks, k, m)
        car = CarStrategy().solve(state)
        rr = RandomRecoveryStrategy(rng=1).solve(state)
        # Traffic ordering.
        assert car.total_cross_rack_traffic() <= rr.total_cross_rack_traffic()
        # Byte-exact execution for both.
        for sol in (car, rr):
            plan = plan_recovery(state, event, sol)
            assert PlanExecutor(state).execute(plan, sol).verified
        # Timing ordering.
        sim = RecoverySimulator(state)
        t_car = sim.simulate(plan_recovery(state, event, car), MB)
        t_rr = sim.simulate(plan_recovery(state, event, rr), MB)
        assert t_car.time_per_chunk <= t_rr.time_per_chunk * 1.05

    def test_cauchy_construction_end_to_end(self):
        state, event = build(2, (4, 3, 3, 3), 6, 3, construction="cauchy")
        car = CarStrategy().solve(state)
        plan = plan_recovery(state, event, car)
        assert PlanExecutor(state).execute(plan, car).verified

    def test_gf16_code_end_to_end(self):
        code = RSCode(6, 3, w=16)
        topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
        placement = RandomPlacementPolicy(rng=3).place(topo, 8, 6, 3)
        data = DataStore(code, 8, chunk_size=128, seed=3)
        state = ClusterState(topo, code, placement, data)
        event = FailureInjector(rng=3).fail_random_node(state)
        car = CarStrategy().solve(state)
        plan = plan_recovery(state, event, car)
        assert PlanExecutor(state).execute(plan, car).verified

    def test_quick_demo(self):
        out = quick_recovery_demo()
        assert "byte-exact: True" in out

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_clusters_property(self, seed):
        """For random layouts: CAR traffic == sum of d_j, execution is
        byte-exact, and λ >= 1."""
        state, event = build(seed, (4, 3, 3, 3), 6, 3, stripes=10)
        car = CarStrategy().solve(state)
        expected = sum(min_racks_needed(v, 6) for v in state.views())
        assert car.total_cross_rack_traffic() == expected
        assert car.load_balancing_rate() >= 1.0
        plan = plan_recovery(state, event, car)
        assert PlanExecutor(state).execute(plan, car).verified


class TestDegradedRead:
    def test_single_stripe_degraded_read_via_partial_decoding(self):
        """Serving a read of one lost chunk (not whole-node recovery):
        CAR's per-stripe machinery reconstructs just that stripe."""
        state, event = build(5, (4, 3, 3, 3), 6, 3)
        stripe = event.stripes[0]
        view = state.stripe_view(stripe)
        from repro.recovery.selector import CarSelector
        from repro.erasure.repair import (
            combine_partials,
            execute_partial_decode,
            split_repair_vector,
        )

        selector = CarSelector(state.topology, state.code.k)
        sol = selector.initial_solution(view)
        plan = split_repair_vector(
            state.code, sol.lost_chunk, sol.helpers, sol.rack_map()
        )
        chunks = {c: state.data.chunk(stripe, c) for c in sol.helpers}
        partials = execute_partial_decode(state.code, plan, chunks)
        rebuilt = combine_partials(state.code, partials)
        assert state.data.matches(stripe, sol.lost_chunk, rebuilt)


class TestBandwidthDiversity:
    def test_cars_advantage_grows_with_oversubscription(self):
        """The paper's motivation: the scarcer cross-rack bandwidth is,
        the more CAR wins."""
        savings = []
        for uplink in (1.0, 0.25):
            code = RSCode(6, 3)
            topo = ClusterTopology.from_rack_sizes(
                [4, 3, 3, 3],
                bandwidth=BandwidthProfile(
                    node_nic_gbps=1.0, rack_uplink_gbps=uplink
                ),
            )
            placement = RandomPlacementPolicy(rng=4).place(topo, 15, 6, 3)
            state = ClusterState(topo, code, placement)
            event = FailureInjector(rng=4).fail_random_node(state)
            sim = RecoverySimulator(state)
            t = {}
            for strat in (CarStrategy(), RandomRecoveryStrategy(rng=4)):
                sol = strat.solve(state)
                t[strat.name] = sim.simulate(
                    plan_recovery(state, event, sol), MB
                ).time_per_chunk
            savings.append(1 - t["CAR"] / t["RR"])
        assert savings[1] > savings[0]


class TestReportNumbers:
    def test_traffic_report_round_trip(self):
        state, event = build(6, (4, 3, 3, 3), 6, 3)
        car = CarStrategy().solve(state)
        rr = RandomRecoveryStrategy(rng=6).solve(state)
        rep_car = traffic_report(car, 4 * MB, "CAR")
        rep_rr = traffic_report(rr, 4 * MB, "RR")
        saving = reduction_ratio(rep_rr, rep_car)
        assert 0 < saving < 1
        assert rep_car.total_bytes == car.total_cross_rack_traffic() * 4 * MB
