"""End-to-end recovery timing on a fabric with heterogeneous uplinks."""

import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.placement import RandomPlacementPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.erasure.rs import RSCode
from repro.recovery.baselines import CarStrategy
from repro.recovery.planner import plan_recovery
from repro.recovery.weighted import solve_bandwidth_aware
from repro.sim.recovery_sim import RecoverySimulator

MB = 1 << 20


def build(uplinks, seed=6, stripes=15):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes(
        [4, 3, 3, 3],
        bandwidth=BandwidthProfile(
            node_nic_gbps=1.0,
            rack_uplink_gbps=1.0,
            per_rack_uplink_gbps=uplinks,
        ),
    )
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, 6, 3)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


class TestHeterogeneousRecovery:
    def test_slow_uplink_inflates_recovery_time(self):
        fast_state, fast_event = build((1.0, 1.0, 1.0, 1.0))
        slow_state, slow_event = build((0.1, 0.1, 0.1, 0.1))
        t = {}
        for label, (state, event) in (
            ("fast", (fast_state, fast_event)),
            ("slow", (slow_state, slow_event)),
        ):
            sol = CarStrategy().solve(state)
            plan = plan_recovery(state, event, sol)
            t[label] = RecoverySimulator(state, include_disk=False).simulate(
                plan, 2 * MB
            ).total_time
        assert t["slow"] > t["fast"]

    def test_weighted_solution_executes_in_simulator(self):
        uplinks = (1.0, 0.2, 1.0, 1.0)
        state, event = build(uplinks, seed=8)
        solution, trace = solve_bandwidth_aware(state, capacities=uplinks)
        assert trace.final <= trace.initial
        plan = plan_recovery(state, event, solution)
        timing = RecoverySimulator(state, include_disk=False).simulate(
            plan, MB
        )
        assert timing.total_time > 0
        # Traffic identity still holds for the weighted solution.
        assert plan.cross_rack_chunks() == solution.total_cross_rack_traffic()

    def test_weighted_never_slower_than_plain_on_avg(self):
        uplinks = (1.0, 0.2, 1.0, 1.0)
        plain_total = weighted_total = 0.0
        compared = 0
        for seed in range(6):
            state, event = build(uplinks, seed=seed)
            if state.topology.rack_of(state.failed_node) == 1:
                continue
            plain = CarStrategy(iterations=100).solve(state)
            weighted, _ = solve_bandwidth_aware(
                state, capacities=uplinks, iterations=100
            )
            sim = RecoverySimulator(state, include_disk=False)
            plain_total += sim.simulate(
                plan_recovery(state, event, plain), MB
            ).total_time
            weighted_total += sim.simulate(
                plan_recovery(state, event, weighted), MB
            ).total_time
            compared += 1
        assert compared > 0
        assert weighted_total <= plain_total * 1.01
