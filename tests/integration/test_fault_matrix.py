"""Fault matrix: every valid (fault kind x pipeline stage) injection.

Each cell arms one spec — once for a single fire, once unlimited — and
runs a full recovery under both the aggregated (CAR) and the direct
(RR) strategy.  Every cell must end in exactly one of the allowed
terminal states:

- a verified byte-exact reconstruction,
- a typed :class:`RecoveryAbort` carrying the complete fault log, or
- (coordinator-crash cells only) a :class:`CoordinatorCrashError` whose
  journal a fresh incarnation resumes to a verified reconstruction.

Nothing may escape as a partial answer, an unhandled crash, or a hang.
"""

import itertools

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.durable.journal import JournalReplay
from repro.durable.session import RecoverySession
from repro.erasure import RSCode
from repro.errors import CoordinatorCrashError
from repro.faults import (
    ActionKind,
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultSpec,
    RecoveryAbort,
    recover_with_faults,
)
from repro.faults.events import VALID_STAGES
from repro.recovery import CarStrategy, RandomRecoveryStrategy

CHUNK = 128

MATRIX = sorted(
    (
        (kind, stage)
        for kind in FaultKind
        for stage in VALID_STAGES[kind]
    ),
    key=lambda cell: (cell[0].value, cell[1].value),
)

#: Actions that legitimately answer each fault kind.  A coordinator
#: crash has no in-process response — the session dies and a resume
#: takes over — so it has no entry here.
EXPECTED_RESPONSES = {
    FaultKind.HELPER_CRASH: {
        ActionKind.REPLAN, ActionKind.DEGRADE, ActionKind.ABORT,
    },
    FaultKind.DELEGATE_CRASH: {
        ActionKind.REPLAN, ActionKind.DEGRADE, ActionKind.ABORT,
    },
    FaultKind.DISK_STALL: {ActionKind.WAIT, ActionKind.ESCALATE},
    FaultKind.FLOW_DROP: {ActionKind.RETRY, ActionKind.ESCALATE},
    FaultKind.IN_FLIGHT_CORRUPT: {ActionKind.RETRY, ActionKind.ESCALATE},
}


def build(seed=11, stripes=8):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def strategy_for(name, seed=11):
    if name == "car":
        return CarStrategy()
    return RandomRecoveryStrategy(rng=seed)


@pytest.mark.parametrize("strategy_name", ["car", "direct"])
@pytest.mark.parametrize("max_fires", [1, None],
                         ids=["single-fire", "unlimited"])
@pytest.mark.parametrize(
    "kind,stage", MATRIX,
    ids=[f"{k.value}@{s.value}" for k, s in MATRIX],
)
class TestFaultMatrix:
    def test_cell_terminates_correctly(self, kind, stage, max_fires,
                                       strategy_name, tmp_path):
        state, event = build()
        injector = FaultInjector(
            [FaultSpec(kind=kind, stage=stage, max_fires=max_fires)],
            seed=5,
        )
        if kind is FaultKind.COORDINATOR_CRASH:
            self.check_coordinator_cell(
                state, event, strategy_for(strategy_name), injector,
                tmp_path / "journal.jsonl",
            )
            return
        try:
            r = recover_with_faults(
                state, event, strategy_for(strategy_name),
                injector=injector,
                backoff=BackoffPolicy(max_attempts=3),
            )
        except RecoveryAbort as abort:
            self.check_abort(abort, kind, stage, state)
        else:
            self.check_success(r, kind, stage, state)

    @staticmethod
    def check_coordinator_cell(state, event, strategy, injector, path):
        # The session dies with the coordinator; only the journal
        # survives.  A fresh incarnation (the injected environment died
        # with the old process, hence injector=None) resumes it.
        session = RecoverySession(
            state, event, strategy, path, injector=injector,
            backoff=BackoffPolicy(max_attempts=3),
        )
        try:
            out = session.run()
        except CoordinatorCrashError as crash:
            assert crash.event is not None
            assert crash.event.kind is FaultKind.COORDINATOR_CRASH
            resumed = RecoverySession(state, event, strategy, path)
            out = resumed.resume()
        else:
            # The armed stage is never reached on this path (e.g. a
            # partial-decode crash under direct recovery) — the session
            # must simply complete.
            assert not injector.history
        assert out.verified
        assert set(out.reconstructed) == set(state.affected_stripes())
        replay = JournalReplay.load(path)
        assert replay.complete
        for stripe, lost in event.lost_chunks:
            assert state.data.matches(stripe, lost, out.reconstructed[stripe])

    @staticmethod
    def check_success(r, kind, stage, state):
        assert r.verified
        assert set(r.result.reconstructed) == set(state.affected_stripes())
        assert all(r.result.per_stripe_ok.values())
        # Log completeness: only the armed fault fired, at its stage,
        # and every fire drew a legitimate response.
        for fault in r.log.faults:
            assert fault.kind is kind
            assert fault.stage is stage
        if r.log.faults:
            responses = {a.action for a in r.log.actions}
            assert responses & EXPECTED_RESPONSES[kind], (
                f"{kind.value} fired but drew none of "
                f"{EXPECTED_RESPONSES[kind]}"
            )
        # Crashed nodes never serve the final solution.
        for sol in r.final_solution.solutions:
            for chunk in sol.helpers:
                node = state.placement.node_of(sol.stripe_id, chunk)
                assert node not in r.dead_nodes

    @staticmethod
    def check_abort(abort, kind, stage, state):
        # Aborting is only legitimate once fault pressure is unbounded
        # or data is genuinely lost; the log must be complete either way.
        assert abort.log.faults, "abort without any recorded fault"
        assert abort.log.actions[-1].action is ActionKind.ABORT
        for fault in abort.log.faults:
            assert fault.kind is kind
            assert fault.stage is stage
        assert abort.dead_nodes <= {
            n.node_id for n in state.topology.nodes
        }


#: One representative cell per fault kind (the matrix is sorted, so the
#: first cell of each kind is stable across runs).
DETERMINISM_CELLS = list(
    {kind: (kind, stage) for kind, stage in reversed(MATRIX)}.values()
)


class TestMatrixDeterminism:
    """One cell per kind re-run end-to-end: same seed, same outcome."""

    @pytest.mark.parametrize("kind,stage", DETERMINISM_CELLS,
                             ids=[f"{k.value}@{s.value}"
                                  for k, s in DETERMINISM_CELLS])
    def test_cell_replays_identically(self, kind, stage):
        def run():
            state, event = build()
            injector = FaultInjector(
                [FaultSpec(kind=kind, stage=stage, max_fires=2)], seed=5
            )
            try:
                r = recover_with_faults(state, event, CarStrategy(),
                                        injector=injector)
                return ("ok", r.log, r.result.cross_rack_bytes)
            except RecoveryAbort as abort:
                return ("abort", abort.log, None)
            except CoordinatorCrashError as crash:
                return ("crash", crash.event, None)

        assert run() == run()
