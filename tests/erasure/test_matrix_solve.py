"""Tests for the general linear-solving additions to GFMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, SingularMatrixError
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GF8


class TestIndependentRows:
    def test_identity(self):
        eye = GFMatrix.identity(GF8, 3)
        assert eye.independent_rows() == [0, 1, 2]

    def test_duplicate_rows_skipped(self):
        m = GFMatrix(GF8, [[1, 2], [1, 2], [0, 1]])
        assert m.independent_rows() == [0, 2]

    def test_scaled_rows_skipped(self):
        # Row 1 = 2 * row 0 in GF(2^8).
        m = GFMatrix(GF8, [[1, 3], [2, 6], [5, 0]])
        assert m.independent_rows() == [0, 2]

    def test_zero_rows_skipped(self):
        m = GFMatrix(GF8, [[0, 0], [1, 0], [0, 0], [0, 1]])
        assert m.independent_rows() == [1, 3]

    def test_prefers_early_rows(self):
        m = GFMatrix(GF8, [[1, 0], [0, 1], [1, 1]])
        assert m.independent_rows() == [0, 1]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5000), st.integers(1, 5), st.integers(1, 5))
    def test_count_equals_rank(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        m = GFMatrix(GF8, rng.integers(0, 256, (rows, cols)))
        assert len(m.independent_rows()) == m.rank()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5000))
    def test_selected_rows_are_independent(self, seed):
        rng = np.random.default_rng(seed)
        m = GFMatrix(GF8, rng.integers(0, 4, (6, 3)))
        kept = m.independent_rows()
        sub = m.take_rows(kept)
        assert sub.rank() == len(kept)


class TestSolveRight:
    def test_identity_system(self):
        eye = GFMatrix.identity(GF8, 3)
        assert eye.solve_right([7, 9, 11]) == [7, 9, 11]

    def test_known_combination(self):
        rows = GFMatrix(GF8, [[1, 0, 1], [0, 1, 1]])
        # target = 3*row0 + 5*row1
        target = [3, 5, GF8.mul(3, 1) ^ GF8.mul(5, 1)]
        x = rows.solve_right(target)
        assert x == [3, 5]

    def test_out_of_span_rejected(self):
        rows = GFMatrix(GF8, [[1, 0, 0]])
        with pytest.raises(SingularMatrixError):
            rows.solve_right([0, 1, 0])

    def test_length_mismatch(self):
        rows = GFMatrix(GF8, [[1, 0]])
        with pytest.raises(FieldError):
            rows.solve_right([1, 2, 3])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 6))
    def test_roundtrip_random_combinations(self, seed, nrows, ncols):
        """x @ A == rhs for a random x implies solve recovers some x'
        with x' @ A == rhs (not necessarily the same x)."""
        rng = np.random.default_rng(seed)
        a = GFMatrix(GF8, rng.integers(0, 256, (nrows, ncols)))
        x = [int(v) for v in rng.integers(0, 256, nrows)]
        rhs = (GFMatrix(GF8, [x]) @ a).data[0].tolist()
        solved = a.solve_right(rhs)
        check = (GFMatrix(GF8, [solved]) @ a).data[0].tolist()
        assert check == rhs
