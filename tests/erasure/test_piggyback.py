"""Tests for the piggybacked RS code (structure, errors, pickling).

Byte-identity and bound-compliance properties live in
``tests/analysis/test_regen_bounds.py``; this file covers the
structural API — group partitioning, source lists, validation and
error paths, and ``__reduce__`` for pool workers.
"""

import pickle

import numpy as np
import pytest

from repro.erasure.piggyback import PiggybackRSCode, balanced_groups
from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)


def _halves(k, size=32, seed=0):
    rng = np.random.default_rng(seed)
    make = lambda: rng.integers(0, 256, size, dtype=np.uint8)
    return [make() for _ in range(k)], [make() for _ in range(k)]


class TestBalancedGroups:
    def test_partition_covers_all_indices(self):
        groups = balanced_groups(10, 4)
        assert sorted(i for g in groups for i in g) == list(range(10))
        assert len(groups) == 3

    def test_sizes_differ_by_at_most_one(self):
        for k, m in [(10, 4), (6, 3), (4, 3), (7, 4)]:
            sizes = [len(g) for g in balanced_groups(k, m)]
            assert max(sizes) - min(sizes) <= 1

    def test_larger_groups_come_first(self):
        sizes = [len(g) for g in balanced_groups(7, 4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_m_too_small(self):
        with pytest.raises(InvalidCodeParametersError):
            balanced_groups(4, 1)

    def test_k_smaller_than_group_count(self):
        with pytest.raises(InvalidCodeParametersError):
            balanced_groups(2, 4)


class TestStructure:
    @pytest.fixture(scope="class")
    def code(self):
        return PiggybackRSCode(6, 3)

    def test_group_of_consistent_with_groups(self, code):
        for g, members in enumerate(code.groups):
            for i in members:
                assert code.group_of(i) == g

    def test_group_of_out_of_range(self, code):
        with pytest.raises(CodingError):
            code.group_of(code.k)

    def test_piggy_parity_index_skips_clean_parity(self, code):
        # Parity k is clean; group t's piggyback lives at k + 1 + t.
        assert code.piggy_parity_index(0) == code.k + 1
        with pytest.raises(CodingError):
            code.piggy_parity_index(len(code.groups))

    def test_is_data(self, code):
        assert code.is_data(0) and code.is_data(code.k - 1)
        assert not code.is_data(code.k) and not code.is_data(-1)

    def test_data_sources_are_half_chunks(self, code):
        for i in range(code.k):
            sources = code.data_repair_sources(i)
            assert (i, "a") not in sources and (i, "b") not in sources
            assert len(set(sources)) == len(sources)
            # k - 1 data b-halves + clean parity + group parity + peers.
            group = code.groups[code.group_of(i)]
            assert len(sources) == (code.k - 1) + 2 + (len(group) - 1)

    def test_parity_sources_cost_k_chunks(self, code):
        sources = code.parity_repair_sources()
        assert len(sources) == 2 * code.k
        assert 0.5 * len(sources) == pytest.approx(float(code.k))

    def test_repr_shows_group_sizes(self, code):
        assert "groups=[3, 3]" in repr(code)


class TestErrorPaths:
    @pytest.fixture(scope="class")
    def code(self):
        return PiggybackRSCode(4, 3)

    def test_encode_wrong_count(self, code):
        a, b = _halves(code.k)
        with pytest.raises(CodingError):
            code.encode(a[:-1], b)

    def test_encode_mismatched_shapes(self, code):
        a, b = _halves(code.k)
        a[1] = np.zeros(7, dtype=np.uint8)
        with pytest.raises(CodingError):
            code.encode(a, b)

    def test_data_repair_missing_half(self, code):
        a, b = _halves(code.k)
        encoded = code.encode(a, b)
        store = {
            (i, h): encoded[i][0 if h == "a" else 1]
            for i in range(code.n)
            for h in code.HALVES
        }
        sources = code.data_repair_sources(0)
        partial = {src: store[src] for src in sources[:-1]}
        with pytest.raises(InsufficientChunksError):
            code.repair_data(0, partial)

    def test_parity_repair_missing_half(self, code):
        with pytest.raises(InsufficientChunksError):
            code.repair_parity(code.k, {})

    def test_parity_repair_index_out_of_range(self, code):
        with pytest.raises(CodingError):
            code.repair_parity(0, {})
        with pytest.raises(CodingError):
            code.repair_parity(code.n, {})


class TestPickling:
    def test_reduce_roundtrip_preserves_geometry(self):
        code = PiggybackRSCode(10, 4)
        clone = pickle.loads(pickle.dumps(code))
        assert clone.groups == code.groups
        assert repr(clone) == repr(code)

    def test_clone_repairs_original_encoding(self):
        code = PiggybackRSCode(4, 3)
        clone = pickle.loads(pickle.dumps(code))
        a, b = _halves(code.k, seed=5)
        encoded = code.encode(a, b)
        store = {
            (i, h): encoded[i][0 if h == "a" else 1]
            for i in range(code.n)
            for h in code.HALVES
        }
        got_a, got_b = clone.repair_data(
            1, {src: store[src] for src in clone.data_repair_sources(1)}
        )
        assert np.array_equal(got_a, a[1])
        assert np.array_equal(got_b, b[1])
