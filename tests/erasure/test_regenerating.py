"""Tests for the product-matrix MSR regenerating code."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.regenerating import PMMSRCode


@pytest.fixture(scope="module")
def code():
    return PMMSRCode(n=8, k=4)


@pytest.fixture(scope="module")
def encoded(code):
    rng = np.random.default_rng(5)
    packets = [rng.integers(0, 256, 24, dtype=np.uint8) for _ in range(code.B)]
    return packets, code.encode(packets)


class TestParameters:
    def test_derived_parameters(self, code):
        assert code.d == 6
        assert code.alpha == 3
        assert code.B == 12

    def test_k_too_small(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=5, k=1)

    def test_n_must_exceed_d(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=6, k=4)  # d = 6, need n > 6

    def test_field_capacity(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=300, k=3, w=8)

    def test_repair_ratio_is_two(self, code):
        assert code.repair_traffic_ratio() == pytest.approx(2.0)
        assert code.rs_equivalent_repair_ratio() == 4.0

    def test_lambdas_distinct(self, code):
        assert len(set(code._lambdas)) == code.n

    def test_repr(self, code):
        assert "PMMSRCode(n=8, k=4" in repr(code)


class TestEncode:
    def test_shapes(self, code, encoded):
        _, contents = encoded
        assert len(contents) == code.n
        for c in contents:
            assert len(c) == code.alpha

    def test_wrong_packet_count(self, code):
        with pytest.raises(CodingError):
            code.encode([np.zeros(8, dtype=np.uint8)] * (code.B - 1))

    def test_mismatched_packet_sizes(self, code):
        packets = [np.zeros(8, dtype=np.uint8) for _ in range(code.B)]
        packets[3] = np.zeros(16, dtype=np.uint8)
        with pytest.raises(CodingError):
            code.encode(packets)


class TestDecode:
    def test_any_k_subset(self, code, encoded):
        packets, contents = encoded
        random.seed(1)
        for _ in range(8):
            nodes = random.sample(range(code.n), code.k)
            got = code.decode({i: contents[i] for i in nodes})
            for a, b in zip(got, packets):
                assert np.array_equal(a, b), nodes

    def test_too_few_nodes(self, code, encoded):
        _, contents = encoded
        with pytest.raises(InsufficientChunksError):
            code.decode({0: contents[0]})

    def test_malformed_content(self, code, encoded):
        _, contents = encoded
        bad = {i: contents[i] for i in range(code.k)}
        bad[0] = contents[0][:1]
        with pytest.raises(CodingError):
            code.decode(bad)


class TestRepair:
    def test_every_node_repairable(self, code, encoded):
        _, contents = encoded
        random.seed(2)
        for failed in range(code.n):
            helpers = random.sample(
                [i for i in range(code.n) if i != failed], code.d
            )
            symbols = {
                h: code.repair_symbol(h, failed, contents[h]) for h in helpers
            }
            rebuilt = code.repair(failed, symbols)
            for a, b in zip(rebuilt, contents[failed]):
                assert np.array_equal(a, b), failed

    def test_beta_is_one_packet(self, code, encoded):
        """Each helper ships exactly one packet-sized symbol."""
        _, contents = encoded
        symbol = code.repair_symbol(1, 0, contents[1])
        assert symbol.shape == contents[1][0].shape

    def test_wrong_helper_count(self, code, encoded):
        _, contents = encoded
        symbols = {
            h: code.repair_symbol(h, 0, contents[h]) for h in range(1, code.d)
        }
        with pytest.raises(InsufficientChunksError):
            code.repair(0, symbols)

    def test_self_help_rejected(self, code, encoded):
        _, contents = encoded
        with pytest.raises(CodingError):
            code.repair_symbol(0, 0, contents[0])

    def test_failed_in_helper_set_rejected(self, code, encoded):
        _, contents = encoded
        symbols = {
            h: code.repair_symbol(h, 1, contents[h])
            for h in range(2, 2 + code.d - 1)
        }
        symbols[1] = contents[1][0]
        with pytest.raises(CodingError):
            code.repair(1, symbols)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_repair_random_instances(self, seed):
        code = PMMSRCode(n=7, k=3)
        rng = np.random.default_rng(seed)
        packets = [
            rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(code.B)
        ]
        contents = code.encode(packets)
        failed = seed % code.n
        helpers = [i for i in range(code.n) if i != failed][: code.d]
        symbols = {
            h: code.repair_symbol(h, failed, contents[h]) for h in helpers
        }
        rebuilt = code.repair(failed, symbols)
        for a, b in zip(rebuilt, contents[failed]):
            assert np.array_equal(a, b)

    def test_repair_traffic_beats_decode_traffic(self, code, encoded):
        """MSR's point: d packets to repair one node vs B packets to
        decode everything (what naive RS repair would fetch)."""
        assert code.d < code.B
