"""Tests for the product-matrix MSR regenerating codes.

Covers the flat :class:`PMMSRCode` (parameter validation, the
degenerate ``d = k`` point at ``k = 2``), the two-tier
:class:`RackAwareMSRCode`, and pickling both across a real
``ProcessPoolExecutor`` — the experiment driver ships codes to pool
workers via ``__reduce__``.
"""

import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.regenerating import PMMSRCode, RackAwareMSRCode


@pytest.fixture(scope="module")
def code():
    return PMMSRCode(n=8, k=4)


@pytest.fixture(scope="module")
def encoded(code):
    rng = np.random.default_rng(5)
    packets = [rng.integers(0, 256, 24, dtype=np.uint8) for _ in range(code.B)]
    return packets, code.encode(packets)


class TestParameters:
    def test_derived_parameters(self, code):
        assert code.d == 6
        assert code.alpha == 3
        assert code.B == 12

    def test_k_too_small(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=5, k=1)

    def test_n_must_exceed_d(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=6, k=4)  # d = 6, need n > 6

    def test_field_capacity(self):
        with pytest.raises(InvalidCodeParametersError):
            PMMSRCode(n=300, k=3, w=8)

    def test_repair_ratio_is_two(self, code):
        assert code.repair_traffic_ratio() == pytest.approx(2.0)
        assert code.rs_equivalent_repair_ratio() == 4.0

    def test_lambdas_distinct(self, code):
        assert len(set(code._lambdas)) == code.n

    def test_repr(self, code):
        assert "PMMSRCode(n=8, k=4" in repr(code)


class TestEncode:
    def test_shapes(self, code, encoded):
        _, contents = encoded
        assert len(contents) == code.n
        for c in contents:
            assert len(c) == code.alpha

    def test_wrong_packet_count(self, code):
        with pytest.raises(CodingError):
            code.encode([np.zeros(8, dtype=np.uint8)] * (code.B - 1))

    def test_mismatched_packet_sizes(self, code):
        packets = [np.zeros(8, dtype=np.uint8) for _ in range(code.B)]
        packets[3] = np.zeros(16, dtype=np.uint8)
        with pytest.raises(CodingError):
            code.encode(packets)


class TestDecode:
    def test_any_k_subset(self, code, encoded):
        packets, contents = encoded
        random.seed(1)
        for _ in range(8):
            nodes = random.sample(range(code.n), code.k)
            got = code.decode({i: contents[i] for i in nodes})
            for a, b in zip(got, packets):
                assert np.array_equal(a, b), nodes

    def test_too_few_nodes(self, code, encoded):
        _, contents = encoded
        with pytest.raises(InsufficientChunksError):
            code.decode({0: contents[0]})

    def test_malformed_content(self, code, encoded):
        _, contents = encoded
        bad = {i: contents[i] for i in range(code.k)}
        bad[0] = contents[0][:1]
        with pytest.raises(CodingError):
            code.decode(bad)


class TestRepair:
    def test_every_node_repairable(self, code, encoded):
        _, contents = encoded
        random.seed(2)
        for failed in range(code.n):
            helpers = random.sample(
                [i for i in range(code.n) if i != failed], code.d
            )
            symbols = {
                h: code.repair_symbol(h, failed, contents[h]) for h in helpers
            }
            rebuilt = code.repair(failed, symbols)
            for a, b in zip(rebuilt, contents[failed]):
                assert np.array_equal(a, b), failed

    def test_beta_is_one_packet(self, code, encoded):
        """Each helper ships exactly one packet-sized symbol."""
        _, contents = encoded
        symbol = code.repair_symbol(1, 0, contents[1])
        assert symbol.shape == contents[1][0].shape

    def test_wrong_helper_count(self, code, encoded):
        _, contents = encoded
        symbols = {
            h: code.repair_symbol(h, 0, contents[h]) for h in range(1, code.d)
        }
        with pytest.raises(InsufficientChunksError):
            code.repair(0, symbols)

    def test_self_help_rejected(self, code, encoded):
        _, contents = encoded
        with pytest.raises(CodingError):
            code.repair_symbol(0, 0, contents[0])

    def test_failed_in_helper_set_rejected(self, code, encoded):
        _, contents = encoded
        symbols = {
            h: code.repair_symbol(h, 1, contents[h])
            for h in range(2, 2 + code.d - 1)
        }
        symbols[1] = contents[1][0]
        with pytest.raises(CodingError):
            code.repair(1, symbols)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_repair_random_instances(self, seed):
        code = PMMSRCode(n=7, k=3)
        rng = np.random.default_rng(seed)
        packets = [
            rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(code.B)
        ]
        contents = code.encode(packets)
        failed = seed % code.n
        helpers = [i for i in range(code.n) if i != failed][: code.d]
        symbols = {
            h: code.repair_symbol(h, failed, contents[h]) for h in helpers
        }
        rebuilt = code.repair(failed, symbols)
        for a, b in zip(rebuilt, contents[failed]):
            assert np.array_equal(a, b)

    def test_repair_traffic_beats_decode_traffic(self, code, encoded):
        """MSR's point: d packets to repair one node vs B packets to
        decode everything (what naive RS repair would fetch)."""
        assert code.d < code.B


class TestDegenerateK2:
    """k = 2 is the floor: d = 2k - 2 = 2 = k, alpha = 1, B = 2.

    Repair contacts exactly as many helpers as a decode would read —
    the MSR saving vanishes but every operation must still hold.
    """

    @pytest.fixture(scope="class")
    def k2(self):
        return PMMSRCode(n=4, k=2)

    def test_parameters_collapse(self, k2):
        assert k2.d == k2.k == 2
        assert k2.alpha == 1
        assert k2.B == 2
        assert k2.repair_traffic_ratio() == pytest.approx(2.0)

    def test_roundtrip(self, k2):
        rng = np.random.default_rng(9)
        packets = [
            rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(k2.B)
        ]
        contents = k2.encode(packets)
        decoded = k2.decode({0: contents[0], 2: contents[2]})
        for a, b in zip(decoded, packets):
            assert np.array_equal(a, b)
        for failed in range(k2.n):
            helpers = [i for i in range(k2.n) if i != failed][: k2.d]
            symbols = {
                h: k2.repair_symbol(h, failed, contents[h]) for h in helpers
            }
            rebuilt = k2.repair(failed, symbols)
            assert np.array_equal(rebuilt[0], contents[failed][0])


def _roundtrip_worker(code, seed):
    """Pool worker: encode then repair node 0; True on byte identity."""
    rng = np.random.default_rng(seed)
    packets = [
        rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(code.B)
    ]
    if isinstance(code, RackAwareMSRCode):
        contents = code.encode(packets)
        helpers = list(range(1, 1 + code.dbar))
        for slot in range(code.u):
            symbols = {
                h: code.repair_symbol(h, 0, slot, contents[h][slot])
                for h in helpers
            }
            rebuilt = code.repair_node(0, slot, symbols)
            if not all(
                np.array_equal(a, b)
                for a, b in zip(rebuilt, contents[0][slot])
            ):
                return False
        return True
    contents = code.encode(packets)
    helpers = list(range(1, 1 + code.d))
    symbols = {h: code.repair_symbol(h, 0, contents[h]) for h in helpers}
    rebuilt = code.repair(0, symbols)
    return all(np.array_equal(a, b) for a, b in zip(rebuilt, contents[0]))


class TestPickling:
    @pytest.mark.parametrize(
        "code",
        [PMMSRCode(n=7, k=3), RackAwareMSRCode(nbar=5, kbar=2, u=3)],
        ids=["pm-msr", "rack-aware"],
    )
    def test_reduce_roundtrip(self, code):
        clone = pickle.loads(pickle.dumps(code))
        assert repr(clone) == repr(code)

    def test_codes_work_in_pool_workers(self):
        codes = [PMMSRCode(n=7, k=3), RackAwareMSRCode(nbar=5, kbar=2, u=2)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_roundtrip_worker, code, seed)
                for seed, code in enumerate(codes)
            ]
            assert all(f.result() for f in futures)


class TestRackAwareParameters:
    def test_derived_parameters(self):
        code = RackAwareMSRCode(nbar=5, kbar=3, u=4)
        assert code.dbar == 4
        assert code.alpha == 2
        assert code.B == 3 * 2 * 4
        assert code.num_nodes == 20

    def test_u_must_be_positive(self):
        with pytest.raises(InvalidCodeParametersError):
            RackAwareMSRCode(nbar=5, kbar=2, u=0)

    def test_nbar_must_exceed_dbar(self):
        # kbar = 3 -> dbar = 4, so nbar = 4 racks are too few.
        with pytest.raises(InvalidCodeParametersError):
            RackAwareMSRCode(nbar=4, kbar=3, u=2)

    def test_kbar_too_small(self):
        with pytest.raises(InvalidCodeParametersError):
            RackAwareMSRCode(nbar=4, kbar=1, u=2)

    def test_metrics(self):
        code = RackAwareMSRCode(nbar=5, kbar=3, u=2)
        assert code.cross_rack_repair_packets() == 4
        assert code.cross_rack_chunk_units() == pytest.approx(2.0)
        assert code.storage_overhead() == pytest.approx(5 / 3)

    def test_repr(self):
        assert "RackAwareMSRCode(nbar=5, kbar=2" in repr(
            RackAwareMSRCode(nbar=5, kbar=2, u=2)
        )


class TestRackAwareCoding:
    @pytest.fixture(scope="class")
    def rcode(self):
        return RackAwareMSRCode(nbar=5, kbar=3, u=3)

    @pytest.fixture(scope="class")
    def rencoded(self, rcode):
        rng = np.random.default_rng(13)
        packets = [
            rng.integers(0, 256, 24, dtype=np.uint8)
            for _ in range(rcode.B)
        ]
        return packets, rcode.encode(packets)

    def test_encode_shape(self, rcode, rencoded):
        _, contents = rencoded
        assert len(contents) == rcode.nbar
        for rack in contents:
            assert len(rack) == rcode.u
            for node in rack:
                assert len(node) == rcode.alpha

    def test_encode_wrong_packet_count(self, rcode):
        with pytest.raises(CodingError):
            rcode.encode([np.zeros(8, dtype=np.uint8)] * (rcode.B - 1))

    def test_decode_any_kbar_racks(self, rcode, rencoded):
        packets, contents = rencoded
        random.seed(3)
        for _ in range(5):
            racks = random.sample(range(rcode.nbar), rcode.kbar)
            decoded = rcode.decode({r: contents[r] for r in racks})
            for a, b in zip(decoded, packets):
                assert np.array_equal(a, b), racks

    def test_decode_too_few_racks(self, rcode, rencoded):
        _, contents = rencoded
        with pytest.raises(InsufficientChunksError):
            rcode.decode({0: contents[0]})

    def test_decode_malformed_rack(self, rcode, rencoded):
        _, contents = rencoded
        bad = {r: contents[r] for r in range(rcode.kbar)}
        bad[0] = contents[0][:1]  # only one node slot instead of u
        with pytest.raises(CodingError):
            rcode.decode(bad)

    def test_repair_every_node(self, rcode, rencoded):
        _, contents = rencoded
        random.seed(4)
        for failed in range(rcode.nbar):
            helpers = random.sample(
                [r for r in range(rcode.nbar) if r != failed], rcode.dbar
            )
            for slot in range(rcode.u):
                symbols = {
                    h: rcode.repair_symbol(
                        h, failed, slot, contents[h][slot]
                    )
                    for h in helpers
                }
                rebuilt = rcode.repair_node(failed, slot, symbols)
                for a, b in zip(rebuilt, contents[failed][slot]):
                    assert np.array_equal(a, b), (failed, slot)

    def test_slot_out_of_range(self, rcode, rencoded):
        _, contents = rencoded
        with pytest.raises(CodingError):
            rcode.repair_symbol(1, 0, rcode.u, contents[1][0])
        with pytest.raises(CodingError):
            rcode.repair_node(0, -1, {})

    def test_wrong_helper_count(self, rcode, rencoded):
        _, contents = rencoded
        symbols = {
            h: rcode.repair_symbol(h, 0, 0, contents[h][0])
            for h in range(1, rcode.dbar)
        }
        with pytest.raises(InsufficientChunksError):
            rcode.repair_node(0, 0, symbols)
