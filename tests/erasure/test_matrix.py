"""Tests for GF matrix algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError, FieldError, SingularMatrixError
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GF8


def random_matrix(rng, rows, cols):
    return GFMatrix(GF8, rng.integers(0, 256, (rows, cols)))


class TestConstruction:
    def test_identity(self):
        eye = GFMatrix.identity(GF8, 3)
        assert eye[0, 0] == 1 and eye[0, 1] == 0

    def test_zeros(self):
        z = GFMatrix.zeros(GF8, 2, 3)
        assert z.shape == (2, 3)
        assert not z.data.any()

    def test_rejects_non_2d(self):
        with pytest.raises(FieldError):
            GFMatrix(GF8, np.zeros(3, dtype=np.uint8))

    def test_rejects_out_of_field_values(self):
        from repro.gf.field import GF4
        with pytest.raises(FieldError):
            GFMatrix(GF4, [[200]])

    def test_data_is_copied(self):
        src = np.ones((2, 2), dtype=np.uint8)
        m = GFMatrix(GF8, src)
        src[0, 0] = 5
        assert m[0, 0] == 1

    def test_equality(self):
        a = GFMatrix(GF8, [[1, 2], [3, 4]])
        b = GFMatrix(GF8, [[1, 2], [3, 4]])
        assert a == b
        assert a != GFMatrix(GF8, [[1, 2], [3, 5]])


class TestVandermonde:
    def test_first_column_is_ones(self):
        v = GFMatrix.vandermonde(GF8, 5, 3)
        assert all(v[i, 0] == 1 for i in range(5))

    def test_second_column_is_index(self):
        v = GFMatrix.vandermonde(GF8, 5, 3)
        assert [v[i, 1] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_any_square_rows_invertible(self):
        v = GFMatrix.vandermonde(GF8, 8, 4)
        import itertools
        for rows in itertools.combinations(range(8), 4):
            assert v.take_rows(rows).is_invertible(), rows

    def test_too_many_rows_rejected(self):
        from repro.gf.field import GF4
        with pytest.raises(CodingError):
            GFMatrix.vandermonde(GF4, 17, 2)


class TestCauchy:
    def test_every_square_submatrix_invertible(self):
        c = GFMatrix.cauchy(GF8, [4, 5, 6], [0, 1, 2, 3])
        import itertools
        for size in (1, 2, 3):
            for rows in itertools.combinations(range(3), size):
                for cols in itertools.combinations(range(4), size):
                    sub = GFMatrix(GF8, c.data[np.ix_(rows, cols)])
                    assert sub.is_invertible()

    def test_overlapping_coordinates_rejected(self):
        with pytest.raises(CodingError):
            GFMatrix.cauchy(GF8, [0, 1], [1, 2])

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(CodingError):
            GFMatrix.cauchy(GF8, [4, 4], [0, 1])


class TestArithmetic:
    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        m = random_matrix(rng, 3, 3)
        eye = GFMatrix.identity(GF8, 3)
        assert m @ eye == m
        assert eye @ m == m

    def test_matmul_shape_check(self):
        with pytest.raises(FieldError):
            GFMatrix.zeros(GF8, 2, 3) @ GFMatrix.zeros(GF8, 2, 3)

    def test_add_is_xor(self):
        a = GFMatrix(GF8, [[1, 2]])
        assert (a + a).data.tolist() == [[0, 0]]

    def test_add_shape_mismatch(self):
        with pytest.raises(FieldError):
            GFMatrix.zeros(GF8, 1, 2) + GFMatrix.zeros(GF8, 2, 1)

    def test_mul_vector_matches_matmul(self):
        rng = np.random.default_rng(1)
        m = random_matrix(rng, 3, 4)
        vec = [1, 2, 3, 4]
        col = GFMatrix(GF8, [[v] for v in vec])
        assert m.mul_vector(vec) == [int(x) for x in (m @ col).data[:, 0]]

    def test_mul_vector_length_check(self):
        with pytest.raises(FieldError):
            GFMatrix.zeros(GF8, 2, 3).mul_vector([1, 2])

    def test_transpose(self):
        m = GFMatrix(GF8, [[1, 2, 3]])
        assert m.transpose().shape == (3, 1)


class TestInversion:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_inverse_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        m = random_matrix(rng, n, n)
        try:
            inv = m.invert()
        except SingularMatrixError:
            assert m.rank() < n
            return
        assert m @ inv == GFMatrix.identity(GF8, n)
        assert inv @ m == GFMatrix.identity(GF8, n)

    def test_non_square_rejected(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix.zeros(GF8, 2, 3).invert()

    def test_singular_detected(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix(GF8, [[1, 1], [1, 1]]).invert()

    def test_rank(self):
        assert GFMatrix(GF8, [[1, 1], [1, 1]]).rank() == 1
        assert GFMatrix.identity(GF8, 4).rank() == 4
        assert GFMatrix.zeros(GF8, 3, 3).rank() == 0


class TestSystematic:
    def test_top_block_becomes_identity(self):
        v = GFMatrix.vandermonde(GF8, 7, 4)
        sys = v.to_systematic()
        assert GFMatrix(GF8, sys.data[:4, :]) == GFMatrix.identity(GF8, 4)

    def test_preserves_mds(self):
        v = GFMatrix.vandermonde(GF8, 7, 4).to_systematic()
        import itertools
        for rows in itertools.combinations(range(7), 4):
            assert v.take_rows(rows).is_invertible()

    def test_short_matrix_rejected(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix.zeros(GF8, 2, 3).to_systematic()
