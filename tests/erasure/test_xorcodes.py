"""Tests for RDP, X-Code, and hybrid single-failure recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError, InvalidCodeParametersError, RecoveryError
from repro.erasure.xorcodes import (
    RDPCode,
    XCode,
    balanced_split_rdp,
    conventional_reads,
    enumerate_optimal,
    greedy_hybrid,
    is_prime,
    recovery_options,
)


def random_stripe(code, seed=0, symbol_len=8):
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 256, symbol_len, dtype=np.uint8)
        for _ in range(len(code.data_symbols()))
    ]
    return code.make_stripe(data)


class TestPrime:
    def test_primes(self):
        assert [p for p in range(20) if is_prime(p)] == [2, 3, 5, 7, 11, 13, 17, 19]


class TestRDP:
    def test_requires_prime(self):
        with pytest.raises(InvalidCodeParametersError):
            RDPCode(9)
        with pytest.raises(InvalidCodeParametersError):
            RDPCode(2)

    def test_shape(self):
        rdp = RDPCode(5)
        assert rdp.rows == 4 and rdp.disks == 6
        assert rdp.k == 4 and rdp.m == 2

    def test_parity_sets_sizes(self):
        rdp = RDPCode(5)
        rows = [ps for ps in rdp.parity_sets() if ps.kind == "row"]
        diags = [ps for ps in rdp.parity_sets() if ps.kind == "diagonal"]
        assert len(rows) == 4 and len(diags) == 4
        assert all(len(ps.symbols) == 5 for ps in rows)
        assert all(len(ps.symbols) == 5 for ps in diags)

    @pytest.mark.parametrize("p", [3, 5, 7, 11])
    def test_all_parity_sets_xor_to_zero(self, p):
        rdp = RDPCode(p)
        stripe = random_stripe(rdp, seed=p)
        assert rdp.verify_stripe(stripe)

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_recover_any_single_disk(self, p):
        rdp = RDPCode(p)
        stripe = random_stripe(rdp, seed=p + 1)
        for disk in range(rdp.disks):
            broken = stripe.copy()
            broken[:, disk, :] = 0
            fixed, reads = rdp.recover_disk(broken, disk)
            assert np.array_equal(fixed, stripe)
            assert reads  # must have read something

    def test_make_stripe_validates_count(self):
        rdp = RDPCode(5)
        with pytest.raises(CodingError):
            rdp.make_stripe([np.zeros(4, dtype=np.uint8)])

    def test_make_stripe_validates_lengths(self):
        rdp = RDPCode(3)
        bufs = [np.zeros(4, dtype=np.uint8) for _ in range(len(rdp.data_symbols()))]
        bufs[0] = np.zeros(8, dtype=np.uint8)
        with pytest.raises(CodingError):
            rdp.make_stripe(bufs)

    def test_corrupt_stripe_fails_verify(self):
        rdp = RDPCode(5)
        stripe = random_stripe(rdp)
        stripe[0, 0, 0] ^= 0xFF
        assert not rdp.verify_stripe(stripe)


class TestXCode:
    def test_requires_prime_at_least_5(self):
        with pytest.raises(InvalidCodeParametersError):
            XCode(4)
        with pytest.raises(InvalidCodeParametersError):
            XCode(3)

    def test_shape(self):
        xc = XCode(5)
        assert xc.rows == 5 and xc.disks == 5
        assert xc.k == 3 and xc.m == 2

    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_all_parity_sets_xor_to_zero(self, p):
        xc = XCode(p)
        stripe = random_stripe(xc, seed=p)
        assert xc.verify_stripe(stripe)

    @pytest.mark.parametrize("p", [5, 7])
    def test_recover_any_single_disk(self, p):
        xc = XCode(p)
        stripe = random_stripe(xc, seed=p + 2)
        for disk in range(xc.disks):
            broken = stripe.copy()
            broken[:, disk, :] = 0
            fixed, _ = xc.recover_disk(broken, disk)
            assert np.array_equal(fixed, stripe)


class TestHybridRecovery:
    def test_conventional_rdp_reads_k_per_symbol(self):
        """All-row recovery of a data disk reads (p-1)^2 distinct symbols."""
        p = 7
        rdp = RDPCode(p)
        sol = conventional_reads(rdp, 0)
        assert sol.read_count == (p - 1) * (p - 1)

    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_optimal_achieves_three_quarters(self, p):
        """Xiang et al.'s bound: optimal hybrid reads ~3/4 of conventional."""
        rdp = RDPCode(p)
        conv = conventional_reads(rdp, 0).read_count
        opt = enumerate_optimal(rdp, 0).read_count
        assert opt <= 0.80 * conv

    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_ordering_conventional_greedy_optimal(self, p):
        rdp = RDPCode(p)
        conv = conventional_reads(rdp, 0).read_count
        gre = greedy_hybrid(rdp, 0).read_count
        opt = enumerate_optimal(rdp, 0).read_count
        assert opt <= gre <= conv

    def test_balanced_split_near_optimal(self):
        rdp = RDPCode(7)
        bal = balanced_split_rdp(rdp, 0).read_count
        opt = enumerate_optimal(rdp, 0).read_count
        assert bal <= opt + 3  # within a few reads of optimal

    @pytest.mark.parametrize("p", [5, 7])
    def test_optimal_choice_actually_recovers(self, p):
        rdp = RDPCode(p)
        stripe = random_stripe(rdp, seed=3)
        for disk in range(p - 1):  # data disks
            sol = enumerate_optimal(rdp, disk)
            broken = stripe.copy()
            broken[:, disk, :] = 0
            fixed, reads = rdp.recover_disk(broken, disk, choice=sol.choice)
            assert np.array_equal(fixed, stripe)
            assert reads == set(sol.reads)

    def test_enumeration_budget_guard(self):
        rdp = RDPCode(13)
        with pytest.raises(RecoveryError):
            enumerate_optimal(rdp, 0, max_combinations=10)

    def test_xcode_hybrid(self):
        xc = XCode(7)
        conv = conventional_reads(xc, 0).read_count
        opt = enumerate_optimal(xc, 0).read_count
        assert opt <= conv

    def test_recovery_options_cover_all_lost_symbols(self):
        rdp = RDPCode(5)
        options = recovery_options(rdp, 2)
        assert len(options) == rdp.rows
        for sym, opts in options:
            assert sym[1] == 2
            assert opts


class TestHybridProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 99))
    def test_greedy_choice_recovers_bytes(self, seed):
        rdp = RDPCode(7)
        stripe = random_stripe(rdp, seed=seed)
        disk = seed % rdp.disks
        sol = greedy_hybrid(rdp, disk)
        broken = stripe.copy()
        broken[:, disk, :] = 0
        fixed, _ = rdp.recover_disk(broken, disk, choice=sol.choice)
        assert np.array_equal(fixed, stripe)
