"""Tests for Cauchy bit-matrix (CRS) coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.erasure.bitmatrix import (
    BitmatrixEncoder,
    bitpackets_to_chunk,
    chunk_to_bitpackets,
    gf_bitmatrix,
)
from repro.erasure.rs import RSCode
from repro.gf.field import GF8, GF16


class TestGfBitmatrix:
    def test_identity_element(self):
        assert np.array_equal(gf_bitmatrix(GF8, 1), np.eye(8, dtype=bool))

    def test_zero_element(self):
        assert not gf_bitmatrix(GF8, 0).any()

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matrix_vector_matches_field_mul(self, a, x):
        """M_a @ bits(x) == bits(a * x) over GF(2)."""
        m = gf_bitmatrix(GF8, a).astype(int)
        bits = np.array([(x >> i) & 1 for i in range(8)], dtype=int)
        result_bits = (m @ bits) % 2
        result = sum(int(b) << i for i, b in enumerate(result_bits))
        assert result == GF8.mul(a, x)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_multiplicativity(self, a, b):
        """M_{ab} == M_a @ M_b (mod 2) — the ring homomorphism."""
        ab = gf_bitmatrix(GF8, GF8.mul(a, b))
        prod = (gf_bitmatrix(GF8, a).astype(int) @ gf_bitmatrix(GF8, b).astype(int)) % 2
        assert np.array_equal(ab, prod.astype(bool))


class TestBitpackets:
    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_roundtrip_gf8(self, seed, length):
        rng = np.random.default_rng(seed)
        chunk = rng.integers(0, 256, length, dtype=np.uint8)
        packets = chunk_to_bitpackets(GF8, chunk)
        assert packets.shape == (8, length)
        assert np.array_equal(bitpackets_to_chunk(GF8, packets), chunk)

    def test_roundtrip_gf16(self):
        rng = np.random.default_rng(1)
        chunk = rng.integers(0, 65536, 32, dtype=np.uint16)
        packets = chunk_to_bitpackets(GF16, chunk)
        assert packets.shape == (16, 32)
        assert np.array_equal(bitpackets_to_chunk(GF16, packets), chunk)

    def test_wrong_packet_count_rejected(self):
        with pytest.raises(CodingError):
            bitpackets_to_chunk(GF8, np.zeros((4, 8), dtype=bool))


class TestEncoderEquivalence:
    @pytest.mark.parametrize("k,m", [(3, 2), (6, 3), (4, 4)])
    def test_bit_identical_to_table_lookup_rs(self, k, m):
        """The headline CRS property: XOR-only encode == GF-table encode."""
        enc = BitmatrixEncoder(k, m, w=8, optimize=False)
        rs = RSCode(k, m, w=8, construction="cauchy")
        rng = np.random.default_rng(7)
        data = [rng.integers(0, 256, 128, dtype=np.uint8) for _ in range(k)]
        xor_parity = enc.encode(data)
        gf_parity = rs.encode(data)
        for a, b in zip(xor_parity, gf_parity):
            assert np.array_equal(a, b)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_equivalence_random_data(self, seed):
        enc = BitmatrixEncoder(4, 2, w=8)
        rs = RSCode(4, 2, w=8, construction="cauchy")
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(4)]
        for a, b in zip(enc.encode(data), rs.encode(data)):
            assert np.array_equal(a, b)

    def test_wrong_chunk_count(self):
        with pytest.raises(CodingError):
            BitmatrixEncoder(3, 2).encode([np.zeros(8, dtype=np.uint8)] * 2)

    def test_encode_stripe(self):
        enc = BitmatrixEncoder(2, 1)
        rng = np.random.default_rng(3)
        data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(2)]
        stripe = enc.encode_stripe(data)
        assert len(stripe) == 3
        assert np.array_equal(stripe[0], data[0])


class TestOptimisedMatrix:
    def test_optimization_reduces_or_keeps_xors(self):
        plain = BitmatrixEncoder(6, 3, w=8, optimize=False)
        good = BitmatrixEncoder(6, 3, w=8, optimize=True)
        assert good.xor_count() <= plain.xor_count()

    def test_optimized_code_still_decodes_as_mds(self):
        """The scaled matrix is a different but still-MDS code: any k of
        the k+m chunks reconstruct the data (checked via a generic
        generator-matrix decode)."""
        from repro.erasure.matrix import GFMatrix
        from repro.gf.vector import matrix_apply

        enc = BitmatrixEncoder(4, 2, w=8, optimize=True)
        rng = np.random.default_rng(9)
        data = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(4)]
        stripe = enc.encode_stripe(data)
        gen_rows = np.vstack(
            [np.eye(4, dtype=np.uint8), enc.coefficients.astype(np.uint8)]
        )
        gen = GFMatrix(GF8, gen_rows)
        import itertools

        for subset in itertools.combinations(range(6), 4):
            sub = gen.take_rows(list(subset))
            inverse = sub.invert()
            decoded = matrix_apply(
                GF8, inverse.data, [stripe[i] for i in subset]
            )
            for got, want in zip(decoded, data):
                assert np.array_equal(got, want), subset

    def test_first_column_becomes_identity_blocks(self):
        enc = BitmatrixEncoder(5, 3, w=8, optimize=True)
        assert all(int(c) == 1 for c in enc.coefficients[:, 0])

    def test_density_in_unit_interval(self):
        enc = BitmatrixEncoder(4, 2)
        assert 0 < enc.density() < 1


class TestSchedule:
    def test_schedule_length_matches_ones(self):
        enc = BitmatrixEncoder(3, 2)
        assert len(enc.schedule) == enc.xor_count()

    def test_schedule_coordinates_in_range(self):
        enc = BitmatrixEncoder(3, 2, w=8)
        for op in enc.schedule:
            assert 0 <= op.src_chunk < 3
            assert 0 <= op.dst_chunk < 2
            assert 0 <= op.src_packet < 8
            assert 0 <= op.dst_packet < 8

    def test_schedule_cached(self):
        enc = BitmatrixEncoder(3, 2)
        assert enc.schedule is enc.schedule
