"""Cached repair plans: equivalence with the scalar reference + pickling.

The vectorised, cached ``repair_vector`` must return exactly what the
original double loop over :meth:`GaloisField.mul` computed, for every
(lost chunk, helper set) pair — and codes must survive pickling so the
parallel experiment driver can ship them to worker processes.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BoundedCache
from repro.erasure.lrc import LRCCode
from repro.erasure.rs import RSCode
from repro.errors import ConfigurationError


def reference_repair_vector(code, lost_index, helpers):
    """``y = g_lost · X`` via the scalar double loop (pre-optimisation)."""
    inverse = code.generator.take_rows(list(helpers)).invert()
    g_lost = code.generator.row(lost_index)
    f = code.field
    y = []
    for col in range(code.k):
        acc = 0
        for i in range(code.k):
            acc ^= f.mul(int(g_lost[i]), int(inverse.data[i, col]))
        y.append(acc)
    return y


class TestRepairVectorEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_rs_matches_reference(self, data):
        k = data.draw(st.integers(2, 6))
        m = data.draw(st.integers(1, 4))
        construction = data.draw(st.sampled_from(["vandermonde", "cauchy"]))
        code = RSCode(k, m, construction=construction)
        lost = data.draw(st.integers(0, code.n - 1))
        survivors = [i for i in range(code.n) if i != lost]
        helpers = tuple(
            data.draw(
                st.permutations(survivors).map(lambda p: sorted(p[:k]))
            )
        )
        assert code.repair_vector(lost, helpers) == reference_repair_vector(
            code, lost, helpers
        )

    def test_gf16_matches_reference(self):
        code = RSCode(20, 10, w=16)
        helpers = tuple(range(5, 25))
        assert code.repair_vector(0, helpers) == reference_repair_vector(
            code, 0, helpers
        )

    def test_cache_hit_returns_equal_fresh_list(self):
        code = RSCode(6, 3)
        helpers = (1, 2, 3, 4, 5, 6)
        first = code.repair_vector(0, helpers)
        second = code.repair_vector(0, helpers)
        assert first == second
        assert first is not second  # callers may mutate their copy
        assert code._repair_cache.hits >= 1

    def test_cache_is_bounded(self):
        code = RSCode(6, 3)
        assert code._repair_cache.maxsize == 2048
        assert code._inverse_cache.maxsize == 512


class TestBoundedCache:
    def test_eviction_order_and_counters(self):
        cache = BoundedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.get("b") is None
        assert cache.hits == 3 and cache.misses == 1

    def test_get_or_build_builds_once(self):
        cache = BoundedCache(maxsize=4)
        calls = []
        for _ in range(3):
            cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert cache.get("k") == "v"
        assert len(calls) == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            BoundedCache(maxsize=0)


class TestCodePickling:
    @pytest.mark.parametrize(
        "code",
        [
            RSCode(6, 3),
            RSCode(4, 2, construction="cauchy"),
            RSCode(20, 10, w=16),
            LRCCode(6, 2, 2),
        ],
        ids=repr,
    )
    def test_roundtrip_preserves_generator(self, code):
        clone = pickle.loads(pickle.dumps(code))
        assert type(clone) is type(code)
        assert np.array_equal(clone.generator.data, code.generator.data)
        assert clone.field is code.field  # gf() singleton survives

    def test_warm_cache_not_shipped(self):
        code = RSCode(6, 3)
        code.repair_vector(0, (1, 2, 3, 4, 5, 6))
        clone = pickle.loads(pickle.dumps(code))
        assert len(clone._repair_cache) == 0
        # ...and the clone still repairs correctly.
        assert clone.repair_vector(0, (1, 2, 3, 4, 5, 6)) == \
            code.repair_vector(0, (1, 2, 3, 4, 5, 6))
