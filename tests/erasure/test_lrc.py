"""Tests for Local Reconstruction Codes."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.lrc import LRCCode


def make_stripe(code, seed=0, size=64):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]
    return data, code.encode_stripe(data)


@pytest.fixture(scope="module")
def lrc622():
    return LRCCode(k=6, l=2, g=2)


@pytest.fixture(scope="module")
def stripe622(lrc622):
    return make_stripe(lrc622, seed=3)


class TestParameters:
    def test_layout(self, lrc622):
        assert lrc622.n == 10
        assert lrc622.m == 4
        assert lrc622.group_size == 3
        assert lrc622.storage_overhead() == pytest.approx(10 / 6)

    def test_k_must_divide(self):
        with pytest.raises(InvalidCodeParametersError):
            LRCCode(k=7, l=2, g=2)

    def test_invalid_params(self):
        with pytest.raises(InvalidCodeParametersError):
            LRCCode(k=0, l=1, g=1)
        with pytest.raises(InvalidCodeParametersError):
            LRCCode(k=4, l=2, g=-1)

    def test_too_big_for_field(self):
        with pytest.raises(InvalidCodeParametersError):
            LRCCode(k=250, l=5, g=10, w=8)

    def test_azure_config(self):
        """Azure's LRC(12, 2, 2): 14 chunks, 1.167x overhead."""
        azure = LRCCode(k=12, l=2, g=2)
        assert azure.n == 16
        assert azure.storage_overhead() == pytest.approx(16 / 12)


class TestStructure:
    def test_group_of(self, lrc622):
        assert lrc622.group_of(0) == 0
        assert lrc622.group_of(2) == 0
        assert lrc622.group_of(3) == 1
        assert lrc622.group_of(6) == 0  # local parity 0
        assert lrc622.group_of(7) == 1  # local parity 1
        assert lrc622.group_of(8) is None  # global
        with pytest.raises(CodingError):
            lrc622.group_of(10)

    def test_group_members(self, lrc622):
        assert lrc622.group_members(0) == (0, 1, 2)
        assert lrc622.group_members(1) == (3, 4, 5)
        with pytest.raises(CodingError):
            lrc622.group_members(2)

    def test_local_parity_index(self, lrc622):
        assert lrc622.local_parity_index(0) == 6
        assert lrc622.local_parity_index(1) == 7

    def test_is_global_parity(self, lrc622):
        assert not lrc622.is_global_parity(5)
        assert not lrc622.is_global_parity(7)
        assert lrc622.is_global_parity(8)
        assert lrc622.is_global_parity(9)

    def test_minimal_helpers(self, lrc622):
        assert lrc622.minimal_repair_helpers(0) == (1, 2, 6)
        assert lrc622.minimal_repair_helpers(6) == (0, 1, 2)
        assert lrc622.minimal_repair_helpers(8) == (0, 1, 2, 3, 4, 5)


class TestEncoding:
    def test_local_parity_is_group_xor(self, lrc622, stripe622):
        _, stripe = stripe622
        assert np.array_equal(stripe[6], stripe[0] ^ stripe[1] ^ stripe[2])
        assert np.array_equal(stripe[7], stripe[3] ^ stripe[4] ^ stripe[5])

    def test_systematic(self, lrc622, stripe622):
        data, stripe = stripe622
        for i in range(6):
            assert np.array_equal(stripe[i], data[i])

    def test_encode_wrong_count(self, lrc622):
        with pytest.raises(CodingError):
            lrc622.encode([np.zeros(4, dtype=np.uint8)] * 5)


class TestRepair:
    def test_every_chunk_locally_repairable(self, lrc622, stripe622):
        _, stripe = stripe622
        for lost in range(lrc622.n):
            helpers = lrc622.minimal_repair_helpers(lost)
            rebuilt = lrc622.reconstruct(
                lost, {i: stripe[i] for i in helpers}
            )
            assert np.array_equal(rebuilt, stripe[lost]), lost

    def test_data_repair_needs_only_group_size_helpers(self, lrc622):
        assert len(lrc622.minimal_repair_helpers(0)) == lrc622.group_size

    def test_repair_vector_for_local_is_all_ones(self, lrc622):
        y = lrc622.repair_vector(0, [1, 2, 6])
        assert y == [1, 1, 1]

    def test_repair_with_insufficient_span_rejected(self, lrc622):
        # Chunk 0 cannot be derived from group 1's chunks alone.
        with pytest.raises(InsufficientChunksError):
            lrc622.repair_vector(0, [3, 4, 5, 7])

    def test_repair_rejects_lost_in_helpers(self, lrc622):
        with pytest.raises(CodingError):
            lrc622.repair_vector(0, [0, 1, 2])

    def test_repair_rejects_duplicates(self, lrc622):
        with pytest.raises(CodingError):
            lrc622.repair_vector(0, [1, 1, 6])

    def test_repair_with_larger_sets_also_works(self, lrc622, stripe622):
        _, stripe = stripe622
        helpers = [1, 2, 3, 4, 5, 7, 8]
        rebuilt = lrc622.reconstruct(0, {i: stripe[i] for i in helpers})
        assert np.array_equal(rebuilt, stripe[0])


class TestDecode:
    def test_all_single_erasures(self, lrc622, stripe622):
        data, stripe = stripe622
        for lost in range(lrc622.n):
            avail = {i: stripe[i] for i in range(lrc622.n) if i != lost}
            decoded = lrc622.decode(avail)
            for got, want in zip(decoded, data):
                assert np.array_equal(got, want)

    def test_all_double_erasures(self, lrc622, stripe622):
        data, stripe = stripe622
        for erased in itertools.combinations(range(lrc622.n), 2):
            avail = {i: stripe[i] for i in range(lrc622.n) if i not in erased}
            assert lrc622.is_recoverable(list(avail))
            decoded = lrc622.decode(avail)
            for got, want in zip(decoded, data):
                assert np.array_equal(got, want), erased

    def test_unrecoverable_pattern_detected(self, lrc622, stripe622):
        """Erasing a whole group plus its parity exceeds what the
        globals can restore (4 data erasures > g=2 + 1 local)."""
        _, stripe = stripe622
        erased = {0, 1, 2, 6, 8}
        avail = {i: stripe[i] for i in range(lrc622.n) if i not in erased}
        assert not lrc622.is_recoverable(list(avail))
        with pytest.raises(InsufficientChunksError):
            lrc622.decode(avail)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_recoverable_patterns_decode(self, lrc622, stripe622, data):
        original, stripe = stripe622
        n = lrc622.n
        erased = data.draw(
            st.sets(st.integers(0, n - 1), min_size=0, max_size=4)
        )
        avail = {i: stripe[i] for i in range(n) if i not in erased}
        if lrc622.is_recoverable(list(avail)):
            decoded = lrc622.decode(avail)
            for got, want in zip(decoded, original):
                assert np.array_equal(got, want)
        else:
            with pytest.raises(InsufficientChunksError):
                lrc622.decode(avail)


class TestPartialDecodeIntegration:
    def test_split_repair_vector_works_with_lrc(self, lrc622, stripe622):
        """LRC repair vectors flow through the CAR partial-decode path."""
        from repro.erasure.repair import (
            combine_partials,
            execute_partial_decode,
            split_repair_vector,
        )

        _, stripe = stripe622
        helpers = lrc622.minimal_repair_helpers(8)  # global parity: 6 helpers
        group_of = {h: h % 2 for h in helpers}
        plan = split_repair_vector(lrc622, 8, helpers, group_of)
        partials = execute_partial_decode(
            lrc622, plan, {i: stripe[i] for i in helpers}
        )
        assert np.array_equal(
            combine_partials(lrc622, partials), stripe[8]
        )
