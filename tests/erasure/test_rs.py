"""Tests for Reed-Solomon codes, including property-based MDS checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.rs import RSCode, default_width_for
from repro.gf.field import GF8
from repro.gf.polynomial import Polynomial


def make_stripe(code, seed=0, size=64):
    rng = np.random.default_rng(seed)
    dtype = np.uint8 if code.w <= 8 else np.uint16
    high = 256 if code.w <= 8 else 65536
    data = [rng.integers(0, high, size, dtype=dtype) for _ in range(code.k)]
    return data, code.encode_stripe(data)


class TestParameters:
    def test_default_width(self):
        assert default_width_for(4, 3) == 8
        assert default_width_for(200, 100) == 16

    def test_default_width_too_large(self):
        with pytest.raises(InvalidCodeParametersError):
            default_width_for(60000, 10000)

    def test_invalid_km(self):
        with pytest.raises(InvalidCodeParametersError):
            RSCode(0, 3)
        with pytest.raises(InvalidCodeParametersError):
            RSCode(3, 0)

    def test_unknown_construction(self):
        with pytest.raises(InvalidCodeParametersError):
            RSCode(4, 2, construction="fountain")

    def test_does_not_fit_field(self):
        with pytest.raises(InvalidCodeParametersError):
            RSCode(200, 100, w=8)

    def test_repr_eq_hash(self):
        a, b = RSCode(4, 2), RSCode(4, 2)
        assert a == b and hash(a) == hash(b)
        assert a != RSCode(4, 2, construction="cauchy")
        assert "k=4" in repr(a)

    def test_n(self):
        assert RSCode(6, 3).n == 9


@pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
class TestEncodeDecode:
    def test_systematic(self, construction):
        code = RSCode(4, 2, construction=construction)
        data, stripe = make_stripe(code)
        for i in range(4):
            assert np.array_equal(stripe[i], data[i])

    def test_encode_wrong_count(self, construction):
        code = RSCode(4, 2, construction=construction)
        with pytest.raises(CodingError):
            code.encode([np.zeros(4, dtype=np.uint8)] * 3)

    def test_encode_mismatched_sizes(self, construction):
        code = RSCode(2, 1, construction=construction)
        with pytest.raises(CodingError):
            code.encode([np.zeros(4, dtype=np.uint8), np.zeros(8, dtype=np.uint8)])

    def test_encode_wrong_dtype(self, construction):
        code = RSCode(2, 1, construction=construction)
        with pytest.raises(CodingError):
            code.encode([np.zeros(4, dtype=np.uint16)] * 2)

    def test_decode_needs_k(self, construction):
        code = RSCode(4, 2, construction=construction)
        _, stripe = make_stripe(code)
        with pytest.raises(InsufficientChunksError):
            code.decode({0: stripe[0]})

    def test_decode_rejects_bad_index(self, construction):
        code = RSCode(2, 1, construction=construction)
        _, stripe = make_stripe(code)
        with pytest.raises(CodingError):
            code.decode({0: stripe[0], 7: stripe[1]})

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_k_chunks_decode(self, construction, data):
        """The MDS property: every k-subset of the stripe decodes."""
        k = data.draw(st.integers(2, 6))
        m = data.draw(st.integers(1, 4))
        code = RSCode(k, m, construction=construction)
        original, stripe = make_stripe(code, seed=data.draw(st.integers(0, 99)))
        subset = data.draw(
            st.permutations(range(k + m)).map(lambda p: sorted(p[:k]))
        )
        decoded = code.decode({i: stripe[i] for i in subset})
        for got, want in zip(decoded, original):
            assert np.array_equal(got, want)

    def test_decode_all_regenerates_parity(self, construction):
        code = RSCode(3, 2, construction=construction)
        _, stripe = make_stripe(code)
        rebuilt = code.decode_all({i: stripe[i] for i in (1, 3, 4)})
        for got, want in zip(rebuilt, stripe):
            assert np.array_equal(got, want)


@pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
class TestRepair:
    def test_repair_every_chunk(self, construction):
        code = RSCode(6, 3, construction=construction)
        _, stripe = make_stripe(code, seed=5)
        for lost in range(code.n):
            helpers = [i for i in range(code.n) if i != lost][: code.k]
            rebuilt = code.reconstruct(lost, {i: stripe[i] for i in helpers})
            assert np.array_equal(rebuilt, stripe[lost]), lost

    def test_repair_vector_identity_when_data_available(self, construction):
        """Repairing a data chunk from other data chunks + parity."""
        code = RSCode(4, 2, construction=construction)
        y = code.repair_vector(5, [0, 1, 2, 3])
        # Helpers are the k data chunks: y must equal the parity row.
        assert y == [int(v) for v in code.generator.row(5)]

    def test_repair_vector_wrong_helper_count(self, construction):
        code = RSCode(4, 2, construction=construction)
        with pytest.raises(InsufficientChunksError):
            code.repair_vector(5, [0, 1, 2])

    def test_repair_vector_rejects_lost_in_helpers(self, construction):
        code = RSCode(4, 2, construction=construction)
        with pytest.raises(CodingError):
            code.repair_vector(0, [0, 1, 2, 3])

    def test_repair_vector_rejects_duplicates(self, construction):
        code = RSCode(4, 2, construction=construction)
        with pytest.raises(CodingError):
            code.repair_vector(5, [0, 1, 2, 2])

    def test_repair_vector_rejects_bad_lost_index(self, construction):
        code = RSCode(4, 2, construction=construction)
        with pytest.raises(CodingError):
            code.repair_vector(6, [0, 1, 2, 3])

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_repair_any_helper_set(self, construction, data):
        """Any k-subset of survivors repairs any lost chunk byte-exactly."""
        code = RSCode(5, 3, construction=construction)
        _, stripe = make_stripe(code, seed=data.draw(st.integers(0, 99)))
        lost = data.draw(st.integers(0, code.n - 1))
        survivors = [i for i in range(code.n) if i != lost]
        helpers = data.draw(
            st.permutations(survivors).map(lambda p: sorted(p[: code.k]))
        )
        rebuilt = code.reconstruct(lost, {i: stripe[i] for i in helpers})
        assert np.array_equal(rebuilt, stripe[lost])


class TestPolynomialCrossCheck:
    def test_vandermonde_encode_equals_polynomial_evaluation(self):
        """Non-systematic Vandermonde encode == evaluating the message
        polynomial at the row points (the classical RS view)."""
        from repro.erasure.matrix import GFMatrix

        k, n = 3, 6
        message = [7, 130, 9]
        vand = GFMatrix.vandermonde(GF8, n, k)
        encoded = vand.mul_vector(message)
        p = Polynomial(GF8, message)
        assert encoded == p.evaluate_many(list(range(n)))


class TestGF16Code:
    def test_wide_stripe_roundtrip(self):
        code = RSCode(20, 10, w=16)
        data, stripe = make_stripe(code, size=32)
        decoded = code.decode({i: stripe[i] for i in range(5, 25)})
        for got, want in zip(decoded, data):
            assert np.array_equal(got, want)


class TestDecodeCache:
    def test_repeated_decode_uses_cache(self, rs63):
        _, stripe = make_stripe(rs63)
        helpers = {i: stripe[i] for i in (1, 2, 3, 4, 5, 6)}
        a = rs63.reconstruct(0, helpers)
        b = rs63.reconstruct(0, helpers)
        assert np.array_equal(a, b)
        # The second reconstruct reuses the cached repair plan outright.
        assert rs63._repair_cache.hits >= 1
