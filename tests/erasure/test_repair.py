"""Tests for repair-vector splitting and partial decoding.

The central invariant (the paper's Equation 7): grouping the repair
combination by rack and XOR-combining the per-rack partials yields the
lost chunk byte-for-byte, for *every* possible grouping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.erasure.repair import (
    AggregationGroup,
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.erasure.rs import RSCode


@pytest.fixture(scope="module")
def code():
    return RSCode(6, 3)


@pytest.fixture(scope="module")
def stripe(code):
    rng = np.random.default_rng(13)
    data = [rng.integers(0, 256, 128, dtype=np.uint8) for _ in range(code.k)]
    return code.encode_stripe(data)


class TestAggregationGroup:
    def test_length_mismatch_rejected(self):
        with pytest.raises(CodingError):
            AggregationGroup("r", (1, 2), (3,))

    def test_empty_rejected(self):
        with pytest.raises(CodingError):
            AggregationGroup("r", (), ())

    def test_size(self):
        assert AggregationGroup("r", (1, 2), (3, 4)).size == 2


class TestSplit:
    def test_groups_partition_helpers(self, code):
        helpers = [1, 2, 3, 4, 5, 6]
        group_of = {i: i % 2 for i in helpers}
        plan = split_repair_vector(code, 0, helpers, group_of)
        all_helpers = sorted(
            h for g in plan.groups for h in g.helper_indices
        )
        assert all_helpers == helpers
        assert plan.helper_count == code.k
        assert plan.group_count == 2

    def test_missing_group_assignment(self, code):
        with pytest.raises(CodingError):
            split_repair_vector(code, 0, [1, 2, 3, 4, 5, 6], {1: 0})

    def test_group_for(self, code):
        plan = split_repair_vector(
            code, 0, [1, 2, 3, 4, 5, 6], {i: "only" for i in range(1, 7)}
        )
        assert plan.group_for("only").size == 6
        with pytest.raises(KeyError):
            plan.group_for("nope")

    def test_coefficients_match_repair_vector(self, code):
        helpers = [1, 2, 3, 4, 5, 6]
        y = code.repair_vector(0, helpers)
        plan = split_repair_vector(
            code, 0, helpers, {i: 0 for i in helpers}
        )
        group = plan.groups[0]
        assert list(group.helper_indices) == helpers
        assert list(group.coefficients) == y


class TestExecution:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_grouping_reconstructs_exactly(self, code, stripe, data):
        lost = data.draw(st.integers(0, code.n - 1))
        survivors = [i for i in range(code.n) if i != lost]
        helpers = sorted(
            data.draw(st.permutations(survivors))[: code.k]
        )
        # Arbitrary rack assignment with 1..4 groups.
        num_groups = data.draw(st.integers(1, 4))
        group_of = {
            h: data.draw(st.integers(0, num_groups - 1), label=f"g{h}")
            for h in helpers
        }
        plan = split_repair_vector(code, lost, helpers, group_of)
        partials = execute_partial_decode(
            code, plan, {i: stripe[i] for i in helpers}
        )
        rebuilt = combine_partials(code, partials)
        assert np.array_equal(rebuilt, stripe[lost])

    def test_each_partial_is_chunk_sized(self, code, stripe):
        helpers = [0, 2, 3, 5, 7, 8]
        plan = split_repair_vector(
            code, 1, helpers, {h: h % 3 for h in helpers}
        )
        partials = execute_partial_decode(
            code, plan, {i: stripe[i] for i in helpers}
        )
        for buf in partials.values():
            assert buf.shape == stripe[0].shape

    def test_missing_chunk_detected(self, code, stripe):
        helpers = [1, 2, 3, 4, 5, 6]
        plan = split_repair_vector(code, 0, helpers, {h: 0 for h in helpers})
        with pytest.raises(CodingError):
            execute_partial_decode(code, plan, {1: stripe[1]})

    def test_combine_empty_rejected(self, code):
        with pytest.raises(CodingError):
            combine_partials(code, {})

    def test_single_group_equals_direct_reconstruct(self, code, stripe):
        helpers = [2, 3, 4, 5, 6, 7]
        plan = split_repair_vector(code, 0, helpers, {h: "r" for h in helpers})
        partials = execute_partial_decode(
            code, plan, {i: stripe[i] for i in helpers}
        )
        direct = code.reconstruct(0, {i: stripe[i] for i in helpers})
        assert np.array_equal(partials["r"], direct)
