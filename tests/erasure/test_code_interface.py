"""Tests for the ErasureCode ABC's default behaviour.

A minimal replication "code" implements the interface to prove that the
recovery machinery only relies on the documented contract.
"""

import numpy as np
import pytest

from repro.erasure.code import ErasureCode


class ReplicationCode(ErasureCode):
    """(k=1, m) replication expressed as a linear code: every chunk is a
    copy, so any single helper repairs with coefficient vector [1]."""

    def __init__(self, m: int = 2) -> None:
        self.k = 1
        self.m = m
        self.w = 8

    def encode(self, data_chunks):
        (chunk,) = data_chunks
        return [chunk.copy() for _ in range(self.m)]

    def decode(self, available):
        first = available[sorted(available)[0]]
        return [first.copy()]

    def repair_vector(self, lost_index, helper_indices):
        assert len(helper_indices) == 1
        return [1]


class TestInterface:
    def test_n(self):
        assert ReplicationCode(m=2).n == 3

    def test_default_reconstruct_uses_repair_vector(self):
        code = ReplicationCode(m=2)
        chunk = np.arange(16, dtype=np.uint8)
        stripe = [chunk] + code.encode([chunk])
        rebuilt = code.reconstruct(0, {1: stripe[1]})
        assert np.array_equal(rebuilt, chunk)

    def test_repr(self):
        assert "ReplicationCode(k=1, m=2, w=8)" == repr(ReplicationCode(2))

    def test_works_with_partial_decode_machinery(self):
        from repro.erasure.repair import (
            combine_partials,
            execute_partial_decode,
            split_repair_vector,
        )

        code = ReplicationCode(m=2)
        chunk = np.arange(8, dtype=np.uint8)
        plan = split_repair_vector(code, 0, [2], {2: "rackX"})
        partials = execute_partial_decode(code, plan, {2: chunk})
        assert np.array_equal(combine_partials(code, partials), chunk)

    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            ErasureCode()  # type: ignore[abstract]
