"""Chrome-trace and collapsed-stack export: lanes, schema, self time."""

import json

import pytest

from repro.obs import (
    Tracer,
    read_jsonl,
    to_chrome_trace,
    to_collapsed_stacks,
    validate_chrome_trace,
    write_chrome_trace,
    write_collapsed_stacks,
)
from repro.obs.export import COORDINATOR_TID


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def recorded_events():
    t = Tracer(clock=FakeClock())
    with t.span("run", run_index=0):
        with t.span("exec.stripe", stripe_id=3, rack=1):
            t.event("exec.stage", stage="disk_read", rack=1, node=4)
        with t.span("exec.stream.ship", cross_rack_bytes=4096):
            pass
    return list(t.events)


class TestChromeTrace:
    def test_export_validates(self):
        payload = to_chrome_trace(recorded_events())
        assert validate_chrome_trace(payload) > 0
        assert payload["displayTimeUnit"] == "ms"

    def test_span_becomes_complete_event(self):
        payload = to_chrome_trace(recorded_events())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"run", "exec.stripe", "exec.stream.ship"} <= names
        for e in complete:
            assert e["dur"] >= 0
            assert isinstance(e["ts"], int)

    def test_instant_event_exported(self):
        payload = to_chrome_trace(recorded_events())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["exec.stage"]

    def test_rack_maps_to_tid_and_run_to_pid(self):
        events = recorded_events()
        tagged = [{**e, "run": 2} for e in events]
        payload = to_chrome_trace(tagged)
        stripe = next(
            e for e in payload["traceEvents"] if e["name"] == "exec.stripe"
        )
        assert stripe["pid"] == 2
        assert stripe["tid"] == 2  # rack 1 -> tid 2 (0 is the coordinator)
        run = next(e for e in payload["traceEvents"] if e["name"] == "run")
        assert run["tid"] == COORDINATOR_TID

    def test_lane_metadata_names_racks(self):
        payload = to_chrome_trace(recorded_events())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        labels = {e["args"]["name"] for e in meta}
        assert "run 0" in labels
        assert "coordinator" in labels
        assert "rack 1" in labels

    def test_timestamps_rebased_to_zero(self):
        payload = to_chrome_trace(recorded_events())
        timed = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert min(e["ts"] for e in timed) == 0

    def test_write_roundtrip(self, tmp_path):
        path = write_chrome_trace(recorded_events(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_empty_trace_exports_empty_object(self):
        payload = to_chrome_trace([])
        assert payload["traceEvents"] == []
        assert validate_chrome_trace(payload) == 0


class TestValidateChromeTrace:
    def test_bare_array_form_accepted(self):
        events = to_chrome_trace(recorded_events())["traceEvents"]
        assert validate_chrome_trace(events) == len(events)

    @pytest.mark.parametrize(
        "payload, message",
        [
            (42, "object or array"),
            ({"traceEvents": "nope"}, "traceEvents must be a list"),
            ({"traceEvents": ["nope"]}, "not an object"),
            ({"traceEvents": [{"ph": "Q", "name": "x", "pid": 0,
                               "tid": 0, "ts": 0}]}, "unknown phase"),
            ({"traceEvents": [{"ph": "X", "name": "", "pid": 0,
                               "tid": 0, "ts": 0, "dur": 1}]}, "name"),
            ({"traceEvents": [{"ph": "X", "name": "x", "pid": "0",
                               "tid": 0, "ts": 0, "dur": 1}]}, "pid"),
            ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                               "tid": 0, "dur": 1}]}, "ts"),
            ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                               "tid": 0, "ts": 0, "dur": -1}]}, "dur"),
            ({"traceEvents": [{"ph": "i", "name": "x", "pid": 0,
                               "tid": 0, "ts": 0, "args": 3}]}, "args"),
        ],
    )
    def test_schema_violations_named(self, payload, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(payload)


class TestCollapsedStacks:
    def test_stack_chains_and_exclusive_weights(self):
        t = Tracer(clock=FakeClock())
        with t.span("outer"):       # 1..4: 3s total, 2s exclusive
            with t.span("inner"):   # 2..3: 1s, all exclusive
                pass
        lines = to_collapsed_stacks(t.events)
        weights = dict(
            (name, int(w)) for name, w in (l.rsplit(" ", 1) for l in lines)
        )
        assert weights["outer;inner"] == 1_000_000
        assert weights["outer"] == 2_000_000

    def test_run_restarted_span_ids_do_not_cycle(self):
        # Two concatenated runs re-use span_id 1; folding must not loop.
        events = []
        for run in range(2):
            t = Tracer(clock=FakeClock())
            with t.span("root"):
                pass
            events.extend({**e, "run": run} for e in t.events)
        lines = to_collapsed_stacks(events)
        assert any(line.startswith("root ") for line in lines)

    def test_write_one_line_per_stack(self, tmp_path):
        path = write_collapsed_stacks(recorded_events(), tmp_path / "f.folded")
        lines = path.read_text().strip().splitlines()
        assert all(" " in line for line in lines)
        assert any("run;exec.stripe" in line for line in lines)


class TestEndToEnd:
    def test_persisted_trace_exports_and_validates(self, tmp_path):
        t = Tracer()
        with t.span("run", run_index=0):
            with t.span("solve", strategy="car"):
                pass
        src = t.write_jsonl(tmp_path / "trace.jsonl")
        events = read_jsonl(src)
        payload = to_chrome_trace(events)
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
