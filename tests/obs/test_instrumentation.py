"""End-to-end telemetry through the recovery pipeline.

The ISSUE acceptance scenario: one fault-injected, cache-warm recovery
run produces a single JSONL trace whose per-stage spans, fault events,
retry counts, and cache hit rates can all be correlated by stripe id —
and instrumentation is inert when telemetry is off.
"""

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.faults import (
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultSpec,
    PipelineStage,
    RobustExecutor,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    cache_stats,
    render_metrics,
    render_trace,
    telemetry_scope,
    validate_events,
)
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery
from repro.sim import RecoverySimulator

CHUNK = 256


def build(seed=42, stripes=8):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(
        topo, stripes, code.k, code.m
    )
    data = DataStore(code, stripes, chunk_size=CHUNK, seed=seed)
    state = ClusterState(topo, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def faulty_recovery(tracer, registry):
    """One cache-warm fault-injected recovery + its timing simulation."""
    state, event = build()
    injector = FaultInjector(
        [
            FaultSpec(kind=FaultKind.FLOW_DROP,
                      stage=PipelineStage.INTRA_TRANSFER, max_fires=2),
            FaultSpec(kind=FaultKind.HELPER_CRASH,
                      stage=PipelineStage.CROSS_TRANSFER),
        ],
        seed=7,
    )
    with telemetry_scope(registry):
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        # Warm the repair-vector caches with a first plain execution.
        PlanExecutor(state).execute(plan, solution)
        executor = RobustExecutor(
            state, injector=injector, backoff=BackoffPolicy(max_attempts=4),
            tracer=tracer,
        )
        robust = executor.run(event, solution, plan)
        sim = RecoverySimulator(state, tracer=tracer)
        timing = sim.simulate(
            robust.final_plan, CHUNK, timeline=robust.timeline
        )
    # Return the state too: it keeps the code's named caches alive for
    # the cache-stats assertions (registration is by weak reference).
    return state, robust, timing


class TestAcceptanceScenario:
    @pytest.fixture(scope="class")
    def run(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        state, robust, timing = faulty_recovery(tracer, registry)
        return tracer, registry, state, robust, timing

    def test_trace_validates_as_one_stream(self, run, tmp_path):
        tracer, *_ = run
        from repro.obs import read_jsonl

        path = tracer.write_jsonl(tmp_path / "run.jsonl")
        events = read_jsonl(path)
        assert validate_events(events) == len(events) > 0

    def test_exec_spans_and_stage_events_correlate_by_stripe(self, run):
        tracer, _, _, robust, _ = run
        spans = [e for e in tracer.events if e["type"] == "span"]
        exec_spans = [s for s in spans if s["name"] == "exec.stripe"]
        stages = [
            e for e in tracer.events
            if e["type"] == "event" and e["name"] == "exec.stage"
        ]
        assert exec_spans and stages
        recovered = set(robust.result.reconstructed)
        assert recovered <= {s["attrs"]["stripe_id"] for s in exec_spans}
        # Every stage checkpoint names a stripe and a rack.
        for e in stages:
            assert "stripe_id" in e["attrs"] and "rack" in e["attrs"]
        # Stage events nest under some exec.stripe span of their stripe.
        span_stripe = {s["span_id"]: s["attrs"]["stripe_id"]
                       for s in exec_spans}
        nested = [e for e in stages if e["span_id"] in span_stripe]
        assert nested
        for e in nested:
            assert span_stripe[e["span_id"]] == e["attrs"]["stripe_id"]

    def test_fault_events_share_the_stream(self, run):
        tracer, _, _, robust, _ = run
        fault_events = [
            e for e in tracer.events if e["name"].startswith("fault.")
        ]
        action_events = [
            e for e in tracer.events if e["name"].startswith("action.")
        ]
        assert len(fault_events) == len(robust.log.faults)
        assert len(action_events) == len(robust.log.actions)
        retries = [e for e in action_events if e["name"] == "action.retry"]
        assert len(retries) == sum(
            1 for a in robust.log.actions if a.action.value == "retry"
        )

    def test_sim_spans_break_down_sim_time(self, run):
        tracer, _, _, robust, timing = run
        sim_spans = [
            e for e in tracer.events
            if e["type"] == "span" and e["name"] == "sim.stripe"
        ]
        assert len(sim_spans) == len(robust.final_plan.stripe_plans)
        for s in sim_spans:
            assert s["end"] >= s["start"]
            attrs = s["attrs"]
            assert attrs["read_s"] > 0
            assert attrs["transfer_s"] > 0
        # The injected retries show up as per-stripe fault time.
        assert sum(s["attrs"]["fault_s"] for s in sim_spans) > 0
        assert timing.fault_time > 0

    def test_metrics_cover_kernels_faults_and_plans(self, run):
        _, registry, _, robust, _ = run
        snap = registry.snapshot()["metrics"]
        assert snap["gf.kernel.bytes"]["series"]
        assert registry.counter("faults.injected").total == len(
            robust.log.faults
        )
        assert registry.counter("plan.stripes").total > 0
        assert registry.histogram("plan.racks_accessed").count() > 0
        assert registry.counter("exec.stage.checkpoints").total > 0

    def test_cache_warm_run_shows_hits(self, run):
        stats = cache_stats()
        assert stats["rs.repair_vector"]["hits"] > 0
        assert stats["gf.mul_table"]["hits"] > 0

    def test_render_trace_summarises(self, run):
        tracer, registry, *_ = run
        text = render_trace(tracer.events)
        assert "Spans" in text
        assert "exec.stage" in text
        assert "Faults & responses" in text
        assert "Simulated time breakdown" in text
        metrics_text = render_metrics(registry.snapshot(include_caches=True))
        assert "Counters" in metrics_text and "Caches" in metrics_text


class TestDisabledTelemetry:
    def test_pipeline_emits_nothing_by_default(self):
        state, event = build(stripes=4)
        solution = CarStrategy().solve(state)
        plan = plan_recovery(state, event, solution)
        result = PlanExecutor(state).execute(plan, solution)
        assert result.verified
        timing = RecoverySimulator(state).simulate(plan, CHUNK)
        assert timing.total_time > 0
        from repro.obs import current_registry

        assert current_registry() is None

    def test_robust_executor_works_without_tracer(self):
        state, event = build(stripes=4)
        solution = CarStrategy().solve(state)
        robust = RobustExecutor(state).run(event, solution)
        assert robust.verified
