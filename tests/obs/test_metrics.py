"""Metrics registry: labelled series, deterministic merge, cache stats."""

import math

import pytest

from repro.cache import BoundedCache
from repro.errors import ConfigurationError
from repro.obs import (
    COUNT_BUCKETS,
    MetricsRegistry,
    cache_stats,
    current_registry,
    telemetry_scope,
)
from repro.obs import metrics as metrics_mod


class TestCounter:
    def test_labelled_series_accumulate_independently(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(10, scope="cross")
        c.inc(5, scope="cross")
        c.inc(2, scope="intra")
        assert c.value(scope="cross") == 15
        assert c.value(scope="intra") == 2
        assert c.total == 17

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError, match="negative"):
            MetricsRegistry().counter("c").inc(-1)

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("temp")
        g.set(3.0, node=1)
        g.add(-1.0, node=1)
        assert g.value(node=1) == 2.0
        assert g.value(node=2) == 0.0


class TestHistogram:
    def test_observe_count_sum_mean(self):
        h = MetricsRegistry().histogram("lat", buckets=(1, 2, 4))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 105.0
        assert h.mean() == pytest.approx(26.25)

    def test_quantile_estimates_bucket_bound(self):
        h = MetricsRegistry().histogram("lat", buckets=(1, 2, 4))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1
        assert h.quantile(1.0) == 4

    def test_overflow_bucket_reports_last_finite_bound(self):
        h = MetricsRegistry().histogram("lat", buckets=(1, 2))
        h.observe(50.0)
        assert h.quantile(0.99) == 2

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            MetricsRegistry().histogram("h", buckets=(3, 1))

    def test_count_buckets_exact_for_small_ints(self):
        h = MetricsRegistry().histogram("racks", buckets=COUNT_BUCKETS)
        for d in (1, 2, 2, 3):
            h.observe(d)
        assert h.quantile(0.5) == 2


class TestSnapshotMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3, kind="a")
        reg.gauge("g").set(7.0)
        reg.histogram("h", buckets=(1, 10)).observe(5.0)
        return reg

    def test_snapshot_is_json_ready(self):
        import json

        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["metrics"]["h"]["buckets"][-1] == "inf"
        assert "caches" not in snap

    def test_merge_adds_counters_and_histograms(self):
        merged = MetricsRegistry()
        merged.merge(self._populated().snapshot())
        merged.merge(self._populated().snapshot())
        assert merged.counter("c").value(kind="a") == 6
        assert merged.histogram("h").count() == 2
        assert merged.histogram("h").buckets == (1, 10, math.inf)

    def test_merge_gauge_last_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        merged = MetricsRegistry()
        merged.merge(a).merge(b)
        assert merged.gauge("g").value() == 2.0

    def test_merge_order_independent_for_counters(self):
        regs = []
        for i in range(3):
            r = MetricsRegistry()
            r.counter("c").inc(i + 1)
            regs.append(r.snapshot())
        fwd = MetricsRegistry()
        for s in regs:
            fwd.merge(s)
        rev = MetricsRegistry()
        for s in reversed(regs):
            rev.merge(s)
        assert fwd.snapshot() == rev.snapshot()

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            MetricsRegistry().merge(
                {"metrics": {"x": {"kind": "bogus", "series": []}}}
            )

    def test_write_json_round_trips(self, tmp_path):
        import json

        reg = self._populated()
        path = reg.write_json(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["metrics"]["c"]["series"][0]["value"] == 3
        assert "caches" in data


class TestDisabledRegistry:
    def test_disabled_returns_inert_metrics(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        c.inc(100)
        assert c.value() == 0.0
        assert len(reg) == 0
        assert reg.snapshot() == {"metrics": {}}


class TestTelemetryScope:
    def test_scope_installs_and_restores(self):
        assert current_registry() is None
        reg = MetricsRegistry()
        with telemetry_scope(reg) as installed:
            assert installed is reg
            assert current_registry() is reg
            assert metrics_mod.CURRENT is reg
        assert current_registry() is None

    def test_nested_scopes_restore_outer(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with telemetry_scope(outer):
            with telemetry_scope(inner):
                assert current_registry() is inner
            assert current_registry() is outer

    def test_default_scope_uses_process_default(self):
        with telemetry_scope() as reg:
            assert reg is metrics_mod.default_registry()


class TestCacheRegistration:
    def test_named_cache_appears_in_stats(self):
        cache = BoundedCache(maxsize=2, name="test.cache_stats_demo")
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a" or "b"
        stats = cache_stats()["test.cache_stats_demo"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["hit_rate"] == 0.5

    def test_same_name_aggregates_instances(self):
        a = BoundedCache(maxsize=4, name="test.cache_shared")
        b = BoundedCache(maxsize=4, name="test.cache_shared")
        a.put("x", 1), a.get("x")
        b.put("y", 2), b.get("y")
        stats = cache_stats()["test.cache_shared"]
        assert stats["instances"] == 2
        assert stats["hits"] == 2

    def test_dead_caches_pruned(self):
        cache = BoundedCache(maxsize=2, name="test.cache_transient")
        assert "test.cache_transient" in cache_stats()
        del cache
        assert "test.cache_transient" not in cache_stats()

    def test_unnamed_cache_not_registered(self):
        before = set(cache_stats())
        BoundedCache(maxsize=2)
        assert set(cache_stats()) == before
