"""Trace/metrics text rendering: robustness to sparse or odd inputs."""

from repro.obs import render_metrics, render_trace


class TestRenderTraceRobustness:
    def test_empty_trace_renders_summary_line(self):
        out = render_trace([])
        assert "0 records" in out
        assert "0 spans" in out
        assert "0 stripes" in out

    def test_records_without_attrs_key(self):
        events = [
            {"type": "span", "name": "exec.stripe", "span_id": 1,
             "parent_id": None, "start": 0.0, "end": 1.0},
            {"type": "event", "name": "exec.stage", "span_id": 1,
             "time": 0.5},
        ]
        out = render_trace(events)
        assert "1 spans" in out
        assert "exec.stripe" in out
        # The attr-less stage event lands in the '?' stage bucket.
        assert "Pipeline stages" in out

    def test_non_dict_attrs_tolerated(self):
        events = [
            {"type": "span", "name": "sim.stripe", "span_id": 1,
             "parent_id": None, "start": 0.0, "end": 2.0, "attrs": None},
            {"type": "span", "name": "sim.stripe", "span_id": 2,
             "parent_id": None, "start": 0.0, "end": 1.0,
             "attrs": "corrupted"},
            {"type": "event", "name": "exec.stage", "span_id": 1,
             "time": 0.5, "attrs": 17},
        ]
        out = render_trace(events)
        # sim.stripe spans with unusable attrs contribute zero to the
        # simulated-time breakdown instead of crashing.
        assert "Simulated time breakdown (2 stripes)" in out
        assert "sim.stripe" in out

    def test_mixed_good_and_bad_attrs_sum_only_good(self):
        events = [
            {"type": "span", "name": "sim.stripe", "span_id": 1,
             "parent_id": None, "start": 0.0, "end": 1.0,
             "attrs": {"read_s": 2.0, "stripe_id": 0}},
            {"type": "span", "name": "sim.stripe", "span_id": 2,
             "parent_id": None, "start": 0.0, "end": 1.0, "attrs": None},
        ]
        out = render_trace(events)
        assert "read" in out
        assert "2.000000" in out

    def test_fault_events_tallied(self):
        events = [
            {"type": "event", "name": "fault.crash", "span_id": 1,
             "time": 0.1, "attrs": {}},
            {"type": "event", "name": "fault.crash", "span_id": 1,
             "time": 0.2, "attrs": {}},
            {"type": "event", "name": "action.retry", "span_id": 1,
             "time": 0.3, "attrs": {}},
        ]
        out = render_trace(events)
        assert "Faults & responses" in out
        assert "fault.crash" in out


class TestRenderMetrics:
    def test_empty_snapshot(self):
        assert render_metrics({}) == "No metrics recorded."

    def test_counters_and_gauges_tables(self):
        snapshot = {
            "metrics": {
                "exec.stripes": {
                    "kind": "counter",
                    "series": [
                        {"labels": {"mode": "aggregated"}, "value": 12.0}
                    ],
                },
                "profile.peak_rss_kib": {
                    "kind": "gauge",
                    "series": [{"labels": {}, "value": 51200.0}],
                },
            }
        }
        out = render_metrics(snapshot)
        assert "Counters" in out
        assert "mode=aggregated" in out
        assert "Gauges" in out
        assert "profile.peak_rss_kib" in out

    def test_named_cache_table(self):
        snapshot = {
            "metrics": {},
            "caches": {
                "exec.repair_groups": {
                    "instances": 1,
                    "hits": 90,
                    "misses": 10,
                    "hit_rate": 0.9,
                    "entries": 10,
                    "max_entries": 4096,
                    "evictions": 0,
                }
            },
        }
        out = render_metrics(snapshot)
        assert "Caches" in out
        assert "exec.repair_groups" in out
        assert "90.0%" in out
        assert "10/4096" in out
