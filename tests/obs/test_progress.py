"""Progress reporter: rate limiting, ETA, sinks, TTY rendering."""

import io
import json

import pytest

from repro.obs import ProgressReporter, jsonl_sink


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def reporter(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return ProgressReporter(**kwargs), clock


class TestRateLimiting:
    def test_first_update_always_emits(self):
        rep, clock = reporter(interval=1.0)
        clock.advance(0.001)
        assert rep.update(1) is not None

    def test_updates_within_interval_suppressed(self):
        rep, clock = reporter(interval=1.0)
        clock.advance(0.1)
        assert rep.update(1) is not None
        clock.advance(0.5)
        assert rep.update(2) is None
        clock.advance(0.6)
        assert rep.update(3) is not None
        assert rep.heartbeats == 2

    def test_final_update_bypasses_interval(self):
        rep, clock = reporter(interval=100.0)
        clock.advance(0.1)
        rep.update(1)
        clock.advance(0.1)
        assert rep.update(2, final=True) is not None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            ProgressReporter(interval=-1)


class TestBeatContents:
    def test_rate_and_eta(self):
        rep, clock = reporter(total_stripes=100, interval=0.0)
        clock.advance(2.0)
        beat = rep.update(50)
        assert beat["stripes_per_second"] == pytest.approx(25.0)
        assert beat["eta_seconds"] == pytest.approx(2.0)
        assert beat["total_stripes"] == 100

    def test_eta_omitted_without_total(self):
        rep, clock = reporter(interval=0.0)
        clock.advance(1.0)
        assert rep.update(10)["eta_seconds"] is None

    def test_eta_omitted_when_done(self):
        rep, clock = reporter(total_stripes=10, interval=0.0)
        clock.advance(1.0)
        assert rep.update(10)["eta_seconds"] is None

    def test_counters_are_absolute(self):
        rep, clock = reporter(interval=0.0)
        clock.advance(1.0)
        beat = rep.update(
            7, windows_done=2, cross_rack_bytes=4096,
            intra_rack_bytes=512, journal_lag=3,
        )
        assert beat["stripes_done"] == 7
        assert beat["windows_done"] == 2
        assert beat["cross_rack_bytes"] == 4096
        assert beat["intra_rack_bytes"] == 512
        assert beat["journal_lag"] == 3
        assert beat["final"] is False


class TestSinks:
    def test_jsonl_sink_appends_and_closes(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        rep, clock = reporter(
            total_stripes=4, interval=0.0, sink=jsonl_sink(path)
        )
        clock.advance(1.0)
        rep.update(2)
        clock.advance(1.0)
        rep.finish(4, windows_done=1)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["type"] == "progress"
        assert lines[-1]["final"] is True
        assert lines[-1]["stripes_done"] == 4

    def test_plain_stream_writes_one_line_per_beat(self):
        stream = io.StringIO()
        rep, clock = reporter(total_stripes=4, interval=0.0, stream=stream)
        clock.advance(1.0)
        rep.update(2)
        rep.finish(4)
        out = stream.getvalue()
        assert out.count("\n") == 2
        assert "2/4 (50%)" in out

    def test_tty_stream_rewrites_line_and_closes(self):
        stream = io.StringIO()
        rep, clock = reporter(
            total_stripes=4, interval=0.0, stream=stream, tty=True
        )
        clock.advance(1.0)
        rep.update(2)
        rep.finish(4)
        out = stream.getvalue()
        assert out.count("\r\x1b[K") == 2
        assert out.endswith("\n")


class TestFormatLine:
    def test_line_contents(self):
        rep, clock = reporter(total_stripes=200, interval=0.0)
        clock.advance(2.0)
        beat = rep.update(
            100, windows_done=5, cross_rack_bytes=1 << 20, journal_lag=4
        )
        line = rep.format_line(beat)
        assert "100/200 (50%)" in line
        assert "stripes/s" in line
        assert "5 windows" in line
        assert "journal lag 4" in line
        assert "ETA 2s" in line

    def test_unknown_total(self):
        rep, clock = reporter(interval=0.0)
        clock.advance(1.0)
        line = rep.format_line(rep.update(42))
        assert "42 stripes" in line
        assert "ETA ?" in line


class TestStreamingExecutorIntegration:
    def _setup(self, stripes=24, seed=3, chunk=64):
        from repro.cluster.failure import FailureInjector
        from repro.experiments.configs import build_state
        from repro.experiments import CFS1
        from repro.recovery import CarStrategy, plan_recovery_streaming

        state = build_state(CFS1, seed=seed, with_data=True,
                            chunk_size=chunk, num_stripes=stripes)
        event = FailureInjector(rng=seed).fail_random_node(state)
        solution = CarStrategy().solve(state)
        plan = plan_recovery_streaming(state, event, solution)
        return state, plan, len(solution.solutions)

    def test_serial_streaming_reports_progress(self):
        from repro.recovery import PlanExecutor

        state, plan, affected = self._setup()
        beats = []
        rep = ProgressReporter(
            total_stripes=affected, interval=0.0, sink=beats.append
        )
        result = PlanExecutor(state).execute_streaming(
            plan, window=8, progress=rep
        )
        assert result.verified
        assert beats[-1]["final"] is True
        assert beats[-1]["stripes_done"] == affected
        assert beats[-1]["windows_done"] >= 1
        assert beats[-1]["cross_rack_bytes"] == result.cross_rack_bytes
        # Counters never go backwards.
        done = [b["stripes_done"] for b in beats]
        assert done == sorted(done)

    def test_journal_lag_reported_for_durable_streaming(self, tmp_path):
        from repro.durable.journal import RecoveryJournal
        from repro.recovery import PlanExecutor

        state, plan, affected = self._setup()
        journal = RecoveryJournal(tmp_path / "j.jsonl")
        journal.begin_session({"stripes": list(range(affected))})
        beats = []
        rep = ProgressReporter(interval=0.0, sink=beats.append)
        result = PlanExecutor(state, journal=journal).execute_streaming(
            plan, window=8, progress=rep
        )
        journal.end_session(committed=affected)
        journal.close()
        assert result.verified
        # All intents committed by the end: lag drains to zero.
        assert beats[-1]["journal_lag"] == 0
        assert all(b["journal_lag"] >= 0 for b in beats)

    def test_parallel_streaming_reports_progress(self):
        from repro.recovery import PlanExecutor

        state, plan, affected = self._setup(stripes=32)
        beats = []
        rep = ProgressReporter(
            total_stripes=affected, interval=0.0, sink=beats.append
        )
        result = PlanExecutor(state).execute_streaming(
            plan, window=8, workers=2, shm=False, progress=rep
        )
        assert result.verified
        assert beats[-1]["final"] is True
        assert beats[-1]["stripes_done"] == affected
