"""Resource sampler: lifecycle, restartability, summaries, merging."""

import json

import pytest

from repro.obs import MetricsRegistry, ResourceSampler, current_rss_kib
from repro.obs.profile import profile_scope


class TestCurrentRss:
    def test_positive(self):
        assert current_rss_kib() > 0


class TestSamplerLifecycle:
    def test_start_stop_yields_first_and_last_sample(self):
        sampler = ResourceSampler(interval=10.0)  # no mid-run samples
        sampler.start()
        sampler.stop()
        assert len(sampler.samples) == 2
        for sample in sampler.samples:
            assert sample["type"] == "resource"
            assert sample["rss_kib"] > 0
            assert sample["cpu_seconds"] >= 0
            assert sample["gc_collections"] >= 0

    def test_context_manager(self):
        with ResourceSampler(interval=10.0) as sampler:
            pass
        assert len(sampler.samples) == 2

    def test_restartable_accumulates_across_uses(self):
        # PlanExecutor brackets every execute call with the same sampler.
        sampler = ResourceSampler(interval=10.0)
        with sampler:
            pass
        with sampler:
            pass
        assert len(sampler.samples) == 4

    def test_start_while_running_raises(self):
        sampler = ResourceSampler(interval=10.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_idempotent(self):
        sampler = ResourceSampler(interval=10.0)
        sampler.start()
        sampler.stop()
        sampler.stop()
        assert len(sampler.samples) == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceSampler(interval=0)

    def test_background_thread_samples(self):
        import time

        with ResourceSampler(interval=0.005) as sampler:
            time.sleep(0.05)
        assert len(sampler.samples) > 2


class TestSummaryAndMerge:
    def test_summary_peak_and_deltas(self):
        sampler = ResourceSampler(interval=10.0)
        with sampler:
            pass
        summary = sampler.summary()
        assert summary["samples"] == 2
        assert summary["peak_rss_kib"] == max(
            s["rss_kib"] for s in sampler.samples
        )
        assert summary["cpu_seconds"] >= 0
        assert summary["duration_seconds"] >= 0

    def test_empty_summary(self):
        assert ResourceSampler(interval=10.0).summary()["samples"] == 0

    def test_merge_into_registry_as_gauges(self):
        sampler = ResourceSampler(interval=10.0)
        with sampler:
            pass
        registry = MetricsRegistry()
        summary = sampler.merge_into(registry)
        snapshot = registry.snapshot()["metrics"]
        assert (
            snapshot["profile.peak_rss_kib"]["series"][0]["value"]
            == summary["peak_rss_kib"]
        )
        assert snapshot["profile.samples"]["series"][0]["value"] == 2
        assert snapshot["profile.peak_rss_kib"]["kind"] == "gauge"

    def test_merge_is_worker_count_invariant(self):
        # Gauges are last-write-wins on merge: folding the same profile
        # snapshot through N registries leaves the same value.
        sampler = ResourceSampler(interval=10.0)
        with sampler:
            pass
        direct = MetricsRegistry()
        sampler.merge_into(direct)
        staged = MetricsRegistry()
        sampler.merge_into(staged)
        merged = MetricsRegistry()
        merged.merge(staged.snapshot(include_caches=False))
        merged.merge(staged.snapshot(include_caches=False))
        assert (
            merged.snapshot()["metrics"]["profile.peak_rss_kib"]
            == direct.snapshot()["metrics"]["profile.peak_rss_kib"]
        )

    def test_write_jsonl(self, tmp_path):
        sampler = ResourceSampler(interval=10.0)
        with sampler:
            pass
        path = sampler.write_jsonl(tmp_path / "profile.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "resource"


class TestProfileScope:
    def test_scope_merges_and_persists(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "profile.jsonl"
        with profile_scope(registry, interval=10.0, path=path) as sampler:
            assert sampler._thread is not None
        assert path.exists()
        assert "profile.peak_rss_kib" in registry.snapshot()["metrics"]


class TestExecutorIntegration:
    def test_executor_profiles_each_call(self):
        from repro.cluster.failure import FailureInjector
        from repro.experiments.configs import build_state
        from repro.experiments import CFS1
        from repro.recovery import (
            CarStrategy,
            PlanExecutor,
            plan_recovery,
            plan_recovery_streaming,
        )

        state = build_state(CFS1, seed=2, with_data=True,
                            chunk_size=64, num_stripes=12)
        event = FailureInjector(rng=2).fail_random_node(state)
        solution = CarStrategy().solve(state)
        sampler = ResourceSampler(interval=10.0)
        executor = PlanExecutor(state, profiler=sampler)
        plan = plan_recovery(state, event, solution)
        result = executor.execute(plan, solution)
        assert result.verified
        assert len(sampler.samples) == 2
        # Same executor, second call: sampler restarts and accumulates.
        splan = plan_recovery_streaming(state, event, solution)
        result = executor.execute_streaming(splan, window=4)
        assert result.verified
        assert len(sampler.samples) == 4
