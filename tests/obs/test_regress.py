"""Bench regression gate: directions, tolerance, history, CLI exit codes."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs.regress import (
    append_history,
    compare,
    history_entry,
    load_bench,
    metric_direction,
    render_comparison,
)

REPO = Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402  (tools/ is not a package)

BASELINES = [
    REPO / name
    for name in ("BENCH_kernels.json", "BENCH_durable.json",
                 "BENCH_stream.json", "BENCH_regen.json")
]


def bench_artifact(benches: dict) -> dict:
    """A minimal pytest-benchmark JSON payload."""
    return {
        "benchmarks": [
            {
                "name": name,
                "stats": {"mean": spec["mean"]},
                "extra_info": spec.get("extra", {}),
            }
            for name, spec in benches.items()
        ]
    }


def write_artifact(path: Path, benches: dict) -> Path:
    path.write_text(json.dumps(bench_artifact(benches)))
    return path


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name, direction",
        [
            ("mean_seconds", "lower"),
            ("elapsed_seconds", "lower"),
            ("peak_alloc_bytes", "lower"),
            ("peak_rss_kib", "lower"),
            ("stripes_per_second", "higher"),
            ("speedup_stripes_per_second", "higher"),
            ("cache_hit_rate", "higher"),
            ("peak_memory_ratio_eager_over_streaming", "higher"),
            ("num_stripes", None),
            ("window", None),
        ],
    )
    def test_directions(self, name, direction):
        assert metric_direction(name) == direction


class TestLoadBench:
    @pytest.mark.parametrize("path", BASELINES, ids=lambda p: p.stem)
    def test_committed_baselines_load(self, path):
        loaded = load_bench(path)
        assert loaded["suite"] == path.stem
        assert loaded["benchmarks"]
        for entry in loaded["benchmarks"].values():
            assert entry["mean_seconds"] > 0

    def test_stream_baseline_keeps_numeric_extras(self):
        loaded = load_bench(REPO / "BENCH_stream.json")
        (entry,) = loaded["benchmarks"].values()
        assert "streaming_stripes_per_second" in entry["extra"]
        assert all(
            isinstance(v, (int, float)) for v in entry["extra"].values()
        )

    def test_not_a_bench_artifact(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="not a pytest-benchmark"):
            load_bench(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"benchmarks": [{"name": "b", "stats": {}}]}')
        with pytest.raises(ValueError, match="malformed"):
            load_bench(path)


class TestCompare:
    @pytest.mark.parametrize("path", BASELINES, ids=lambda p: p.stem)
    def test_baseline_self_compare_passes(self, path):
        loaded = load_bench(path)
        report = compare(loaded, loaded, tolerance=0.0)
        assert report.ok
        assert not report.missing and not report.new

    def test_twenty_percent_throughput_drop_flagged(self):
        """The acceptance criterion: a synthetic >=20% throughput
        regression fails the comparison at 10% tolerance."""
        base = load_bench_dict(
            {"stream": {"mean": 1.0, "extra": {"stripes_per_second": 1000.0}}}
        )
        fresh = load_bench_dict(
            {"stream": {"mean": 1.0, "extra": {"stripes_per_second": 800.0}}}
        )
        report = compare(base, fresh, tolerance=0.1)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "stripes_per_second"
        assert delta.direction == "higher"
        assert delta.ratio == pytest.approx(0.8)

    def test_wall_time_regresses_upward(self):
        base = load_bench_dict({"k": {"mean": 1.0}})
        slow = load_bench_dict({"k": {"mean": 1.3}})
        fast = load_bench_dict({"k": {"mean": 0.7}})
        assert not compare(base, slow, tolerance=0.2).ok
        report = compare(base, fast, tolerance=0.2)
        assert report.ok
        assert report.improvements

    def test_within_tolerance_passes(self):
        base = load_bench_dict({"k": {"mean": 1.0}})
        fresh = load_bench_dict({"k": {"mean": 1.15}})
        report = compare(base, fresh, tolerance=0.25)
        assert report.ok and not report.improvements

    def test_one_sided_benches_reported_not_fatal(self):
        base = load_bench_dict({"a": {"mean": 1.0}, "b": {"mean": 1.0}})
        fresh = load_bench_dict({"b": {"mean": 1.0}, "c": {"mean": 1.0}})
        report = compare(base, fresh, tolerance=0.1)
        assert report.ok
        assert report.missing == ["a"]
        assert report.new == ["c"]

    def test_informational_extras_not_compared(self):
        base = load_bench_dict(
            {"k": {"mean": 1.0, "extra": {"num_stripes": 100}}}
        )
        fresh = load_bench_dict(
            {"k": {"mean": 1.0, "extra": {"num_stripes": 5}}}
        )
        assert compare(base, fresh, tolerance=0.0).ok

    def test_negative_tolerance_rejected(self):
        base = load_bench_dict({"k": {"mean": 1.0}})
        with pytest.raises(ValueError, match="tolerance"):
            compare(base, base, tolerance=-0.1)

    def test_render_names_regressions_first(self):
        base = load_bench_dict({"a": {"mean": 1.0}, "b": {"mean": 1.0}})
        fresh = load_bench_dict({"a": {"mean": 1.0}, "b": {"mean": 5.0}})
        out = render_comparison(compare(base, fresh, tolerance=0.2))
        assert "REGRESSED" in out
        assert out.index("b") < out.index("a  ")
        assert "1 regression(s)" in out


def load_bench_dict(benches: dict) -> dict:
    """Build a load_bench-shaped payload from a compact spec."""
    return {
        "suite": "synthetic",
        "benchmarks": {
            name: {
                "mean_seconds": spec["mean"],
                "extra": spec.get("extra", {}),
            }
            for name, spec in benches.items()
        },
    }


class TestHistory:
    def test_entry_and_append(self, tmp_path):
        loaded = load_bench(REPO / "BENCH_stream.json")
        entry = history_entry(loaded, "2026-08-08")
        assert entry["suite"] == "BENCH_stream"
        assert entry["timestamp"] == "2026-08-08"
        path = tmp_path / "hist.jsonl"
        append_history(path, entry)
        append_history(path, history_entry(loaded, "2026-08-09", label="x"))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["timestamp"] for e in lines] == ["2026-08-08", "2026-08-09"]
        assert lines[1]["suite"] == "x"

    def test_committed_history_parses_and_covers_all_suites(self):
        path = REPO / "BENCH_HISTORY.jsonl"
        entries = [
            json.loads(l) for l in path.read_text().splitlines() if l.strip()
        ]
        suites = {e["suite"] for e in entries}
        assert {p.stem for p in BASELINES} <= suites
        for e in entries:
            assert e["timestamp"]
            assert e["benchmarks"]


class TestBenchCompareCli:
    def test_self_compare_exits_zero(self, capsys):
        rc = bench_compare.main(
            [str(REPO / "BENCH_kernels.json"), str(REPO / "BENCH_kernels.json")]
        )
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = write_artifact(
            tmp_path / "base.json",
            {"stream": {"mean": 1.0,
                        "extra": {"stripes_per_second": 1000.0}}},
        )
        fresh = write_artifact(
            tmp_path / "fresh.json",
            {"stream": {"mean": 1.0,
                        "extra": {"stripes_per_second": 700.0}}},
        )
        rc = bench_compare.main(
            [str(base), str(fresh), "--tolerance", "0.1"]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_history_appended(self, tmp_path, capsys):
        base = write_artifact(tmp_path / "base.json", {"k": {"mean": 1.0}})
        hist = tmp_path / "hist.jsonl"
        rc = bench_compare.main(
            [str(base), str(base), "--history", str(hist),
             "--timestamp", "2026-08-08", "--label", "kernels"]
        )
        assert rc == 0
        (entry,) = [json.loads(l) for l in hist.read_text().splitlines()]
        assert entry["suite"] == "kernels"
        assert entry["timestamp"] == "2026-08-08"

    def test_history_requires_timestamp(self, tmp_path, capsys):
        base = write_artifact(tmp_path / "base.json", {"k": {"mean": 1.0}})
        rc = bench_compare.main(
            [str(base), str(base), "--history", str(tmp_path / "h.jsonl")]
        )
        assert rc == 2
        assert "requires --timestamp" in capsys.readouterr().err

    def test_malformed_artifact_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = bench_compare.main(
            [str(REPO / "BENCH_kernels.json"), str(bad)]
        )
        assert rc == 2
