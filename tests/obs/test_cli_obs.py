"""CLI observatory commands (report/export/stream --telemetry) and
the hardened trace validator."""

import json
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.obs import Tracer, attribute, read_jsonl

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import validate_trace  # noqa: E402  (tools/ is not a package)


def record_trace(path: Path) -> Path:
    t = Tracer()
    with t.span("run", run_index=0):
        with t.span("solve", strategy="car"):
            pass
        with t.span("exec.stripe", stripe_id=0, rack=1):
            t.event("exec.stage", stage="disk_read")
    return t.write_jsonl(path)


class TestParser:
    def test_new_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["export", "t.jsonl", "--out", "t.chrome.json",
             "--folded", "t.folded"]
        )
        assert args.experiment == "export"
        assert args.path == "t.jsonl"
        assert args.out == "t.chrome.json"
        assert args.folded == "t.folded"

    def test_stream_progress_flag_parses(self):
        args = build_parser().parse_args(["stream", "--progress"])
        assert args.progress is True

    @pytest.mark.parametrize("command", ["report", "export"])
    def test_trace_path_is_required(self, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command])
        assert excinfo.value.code == 2


class TestReportCommand:
    def test_report_renders_breakdown(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        rc = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Per-stage breakdown" in out
        assert "plan" in out and "execute" in out

    def test_report_matches_library_attribution(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        att = attribute(read_jsonl(trace))
        main(["report", str(trace)])
        out = capsys.readouterr().out
        for stage in att.stages:
            assert stage in out


class TestExportCommand:
    def test_export_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        out_path = tmp_path / "trace.chrome.json"
        rc = main(["export", str(trace), "--out", str(out_path)])
        assert rc == 0
        assert "perfetto" in capsys.readouterr().out
        from repro.obs import validate_chrome_trace

        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_export_default_output_path(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        rc = main(["export", str(trace)])
        assert rc == 0
        assert (tmp_path / "trace.chrome.json").exists()

    def test_export_folded_stacks(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        folded = tmp_path / "trace.folded"
        rc = main(["export", str(trace), "--out",
                   str(tmp_path / "c.json"), "--folded", str(folded)])
        assert rc == 0
        lines = folded.read_text().strip().splitlines()
        assert any(line.startswith("run;") for line in lines)


class TestStreamTelemetry:
    def test_stream_telemetry_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "telemetry"
        rc = main(["stream", "--stripes", "16", "--window", "8",
                   "--seed", "1", "--telemetry", str(out)])
        assert rc == 0
        assert "verified : yes" in capsys.readouterr().out
        for name in ("trace.jsonl", "trace.chrome.json", "metrics.json",
                     "profile.jsonl", "progress.jsonl"):
            artifact = out / name
            assert artifact.exists(), name
            assert artifact.stat().st_size > 0, name

    def test_stream_telemetry_artifacts_cross_validate(self, tmp_path,
                                                       capsys):
        out = tmp_path / "telemetry"
        main(["stream", "--stripes", "16", "--window", "8",
              "--seed", "1", "--telemetry", str(out)])
        capsys.readouterr()
        # The exported chrome trace and the raw JSONL both validate.
        assert validate_trace.main([str(out / "trace.jsonl")]) == 0
        assert validate_trace.main([str(out / "trace.chrome.json")]) == 0
        # Progress heartbeats end on a final beat covering every stripe.
        beats = [json.loads(l) for l in
                 (out / "progress.jsonl").read_text().splitlines()]
        assert beats[-1]["final"] is True
        # The merged metrics carry the resource profile gauges.
        metrics = json.loads((out / "metrics.json").read_text())
        assert "profile.peak_rss_kib" in metrics["metrics"]

    def test_stream_report_reproduces_attribution(self, tmp_path, capsys):
        out = tmp_path / "telemetry"
        main(["stream", "--stripes", "16", "--window", "8",
              "--seed", "1", "--telemetry", str(out)])
        capsys.readouterr()
        rc = main(["report", str(out / "trace.jsonl")])
        report = capsys.readouterr().out
        assert rc == 0
        att = attribute(read_jsonl(out / "trace.jsonl"))
        assert sum(b.seconds for b in att.stages.values()) == pytest.approx(
            att.total_span_seconds
        )
        for stage in ("aggregate", "ship", "execute"):
            assert stage in report


class TestValidateTraceTool:
    def test_jsonl_ok(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        assert validate_trace.main([str(trace)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_chrome_ok(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        main(["export", str(trace)])
        capsys.readouterr()
        rc = validate_trace.main([str(tmp_path / "trace.chrome.json")])
        assert rc == 0
        assert "Chrome trace events" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        rc = validate_trace.main([str(tmp_path / "nope.jsonl")])
        assert rc == 1
        assert "no such file" in capsys.readouterr().err

    def test_zero_byte_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        rc = validate_trace.main([str(empty)])
        assert rc == 1
        assert "empty trace (zero-byte file)" in capsys.readouterr().err

    def test_whitespace_only_file(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n")
        rc = validate_trace.main([str(blank)])
        assert rc == 1
        assert "empty trace (no records)" in capsys.readouterr().err

    def test_truncated_line_names_line_number(self, tmp_path, capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        lines = trace.read_text().splitlines()
        trace.write_text("\n".join(lines[:-1] + [lines[-1][:20]]) + "\n")
        rc = validate_trace.main([str(trace)])
        err = capsys.readouterr().err
        assert rc == 1
        assert f"line {len(lines)}" in err
        assert "truncated trace?" in err

    def test_empty_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        path.write_text('{"traceEvents": []}')
        rc = validate_trace.main([str(path)])
        assert rc == 1
        assert "empty trace" in capsys.readouterr().err

    def test_corrupt_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        path.write_text('{"traceEvents": [{"ph": "X"}]}')
        rc = validate_trace.main(["--chrome", str(path)])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().err

    def test_forced_jsonl_on_chrome_file_fails_cleanly(self, tmp_path,
                                                       capsys):
        trace = record_trace(tmp_path / "trace.jsonl")
        main(["export", str(trace)])
        capsys.readouterr()
        rc = validate_trace.main(
            ["--jsonl", str(tmp_path / "trace.chrome.json")]
        )
        assert rc == 1

    def test_usage_error(self, capsys):
        assert validate_trace.main([]) == 2
        assert "usage" in capsys.readouterr().err
