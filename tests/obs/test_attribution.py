"""Bottleneck attribution: stage partition, slowest stripes, critical path."""

import pytest

from repro.obs import Tracer, attribute, render_attribution, stage_of


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestStageOf:
    @pytest.mark.parametrize(
        "name, stage",
        [
            ("solve", "plan"),
            ("plan.window", "plan"),
            ("exec.stream.aggregate", "aggregate"),
            ("exec.stream.ship", "ship"),
            ("journal.append", "journal"),
            ("verify.chunk", "verify"),
            ("scrub.pass", "verify"),
            ("exec.stripe", "execute"),
            ("sim.stripe", "simulate"),
            ("run", "run"),
            ("mystery", "other"),
        ],
    )
    def test_prefix_rules(self, name, stage):
        assert stage_of(name) == stage


class TestAttributePartition:
    def test_stage_totals_equal_raw_exclusive_span_sum(self):
        """The acceptance criterion: the report's per-stage totals are
        exactly the raw spans' exclusive-time sum, no double counting."""
        t = Tracer(clock=FakeClock())
        with t.span("run"):
            with t.span("solve", strategy="car"):
                pass
            with t.span("exec.stripe", stripe_id=0):
                pass
        att = attribute(t.events)
        spans = [e for e in t.events if e["type"] == "span"]
        inclusive = {s["span_id"]: s["end"] - s["start"] for s in spans}
        child = {}
        for s in spans:
            if s["parent_id"] is not None:
                child[s["parent_id"]] = (
                    child.get(s["parent_id"], 0.0) + inclusive[s["span_id"]]
                )
        raw_exclusive = sum(
            inclusive[s["span_id"]] - child.get(s["span_id"], 0.0)
            for s in spans
        )
        stage_sum = sum(b.seconds for b in att.stages.values())
        assert stage_sum == pytest.approx(att.total_span_seconds)
        assert stage_sum == pytest.approx(raw_exclusive)
        # Exclusive partition: total equals the root span's duration.
        root = next(s for s in spans if s["parent_id"] is None)
        assert stage_sum == pytest.approx(root["end"] - root["start"])

    def test_byte_attrs_summed_per_stage(self):
        t = Tracer(clock=FakeClock())
        t.emit_span("exec.stream.ship", 0.0, 1.0,
                    cross_rack_bytes=4096, intra_rack_bytes=1024, stripes=8)
        t.emit_span("exec.stream.ship", 1.0, 2.0, cross_rack_bytes=100)
        att = attribute(t.events)
        assert att.stages["ship"].bytes == 4096 + 1024 + 100
        assert att.stages["ship"].spans == 2

    def test_events_counted_not_timed(self):
        t = Tracer(clock=FakeClock())
        with t.span("exec.stripe", stripe_id=0):
            t.event("exec.stage", stage="disk_read")
            t.event("exec.stage", stage="final_combine")
        att = attribute(t.events)
        assert att.stages["execute"].events == 2
        assert att.stages["execute"].spans == 1

    def test_run_tagged_streams_do_not_collide(self):
        # Two runs re-use span_id 1; (run, span_id) keys keep them apart.
        events = []
        for run in range(2):
            t = Tracer(clock=FakeClock())
            with t.span("exec.stripe", stripe_id=run):
                pass
            events.extend({**e, "run": run} for e in t.events)
        att = attribute(events)
        assert att.stages["execute"].spans == 2
        assert att.total_span_seconds == pytest.approx(2.0)

    def test_empty_trace(self):
        att = attribute([])
        assert att.stages == {}
        assert att.total_span_seconds == 0.0
        assert "nothing to attribute" in render_attribution(att)

    def test_malformed_records_skipped(self):
        events = [
            {"type": "span", "name": "exec.stripe", "span_id": 1,
             "parent_id": None, "start": 0.0, "end": 1.0, "attrs": None},
            {"type": "span", "name": "broken", "span_id": 2,
             "parent_id": None, "start": None, "end": 1.0},
            {"type": "event", "name": "exec.stage"},
        ]
        att = attribute(events)
        assert att.stages["execute"].spans == 1
        assert att.stages["execute"].events == 1


class TestRankingAndCriticalPath:
    def test_top_k_slowest_stripes(self):
        t = Tracer(clock=FakeClock())
        durations = {0: 1.0, 1: 5.0, 2: 3.0, 3: 2.0}
        start = 0.0
        for sid, dur in durations.items():
            t.emit_span("exec.stripe", start, start + dur, stripe_id=sid)
            start += dur
        att = attribute(t.events, top_k=2)
        assert att.stripe_span_name == "exec.stripe"
        assert att.slowest_stripes == [(1, 5.0), (2, 3.0)]

    def test_sim_stripes_used_when_no_exec(self):
        t = Tracer(clock=FakeClock())
        t.emit_span("sim.stripe", 0.0, 2.0, stripe_id=7)
        att = attribute(t.events)
        assert att.stripe_span_name == "sim.stripe"
        assert att.slowest_stripes == [(7, 2.0)]

    def test_critical_path_follows_largest_children(self):
        t = Tracer(clock=FakeClock(step=0.0))  # manual spans only
        t.emit_span("run", 0.0, 10.0)
        run_id = t.events[-1]["span_id"]
        t.emit_span("solve", 0.0, 2.0, parent_id=run_id)
        t.emit_span("exec.stripe", 2.0, 9.0, parent_id=run_id)
        att = attribute(t.events)
        names = [name for name, _ in att.critical_path]
        assert names[0] == "run"
        assert names[1] == "exec.stripe"
        assert att.critical_path_seconds == pytest.approx(10.0)


class TestEndToEndStreamingRun:
    def test_streaming_trace_attributes_cleanly(self):
        from repro.cluster.failure import FailureInjector
        from repro.experiments.configs import build_state
        from repro.experiments import CFS1
        from repro.recovery import (
            CarStrategy,
            PlanExecutor,
            plan_recovery_streaming,
        )

        state = build_state(CFS1, seed=5, with_data=True,
                            chunk_size=64, num_stripes=24)
        event = FailureInjector(rng=5).fail_random_node(state)
        solution = CarStrategy().solve(state)
        plan = plan_recovery_streaming(state, event, solution)
        tracer = Tracer()
        PlanExecutor(state, tracer).execute_streaming(plan, window=8)
        att = attribute(tracer.events)
        for stage in ("aggregate", "ship", "execute"):
            assert stage in att.stages, stage
        assert att.stages["ship"].bytes > 0
        assert sum(b.seconds for b in att.stages.values()) == pytest.approx(
            att.total_span_seconds
        )
        out = render_attribution(att)
        assert "Per-stage breakdown" in out
        assert "Slowest stripes (exec.stripe)" in out
