"""Span tracer: nesting, injected clocks, JSONL round-trip, validation."""

import pytest

from repro.obs import NULL_TRACER, Tracer, read_jsonl, validate_events


class FakeClock:
    """Deterministic clock: each call advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_tracer():
    return Tracer(clock=FakeClock())


class TestSpans:
    def test_span_records_interval(self):
        t = make_tracer()
        with t.span("work", job=7):
            pass
        (record,) = t.events
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["attrs"] == {"job": 7}
        assert record["end"] > record["start"]

    def test_parent_child_nesting(self):
        t = make_tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.events
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_siblings_share_parent(self):
        t = make_tracer()
        with t.span("outer"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        a, b, outer = t.events
        assert a["parent_id"] == b["parent_id"] == outer["span_id"]
        assert a["span_id"] != b["span_id"]

    def test_exception_recorded_and_propagated(self):
        t = make_tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        (record,) = t.events
        assert record["attrs"]["error"] == "ValueError: nope"

    def test_set_updates_open_span(self):
        t = make_tracer()
        with t.span("work") as span:
            span.set(result=42)
        assert t.events[0]["attrs"]["result"] == 42


class TestEvents:
    def test_event_attaches_to_open_span(self):
        t = make_tracer()
        with t.span("outer"):
            t.event("tick", n=1)
        tick, outer = t.events
        assert tick["type"] == "event"
        assert tick["span_id"] == outer["span_id"]

    def test_event_without_span_has_null_span_id(self):
        t = make_tracer()
        t.event("orphan")
        assert t.events[0]["span_id"] is None


class TestEmitSpan:
    def test_explicit_timestamps_bypass_clock(self):
        t = make_tracer()
        sid = t.emit_span("sim.stripe", 2.5, 7.5, stripe_id=3)
        (record,) = t.events
        assert record["start"] == 2.5 and record["end"] == 7.5
        assert record["span_id"] == sid
        assert record["attrs"]["stripe_id"] == 3

    def test_inherits_open_span_as_parent(self):
        t = make_tracer()
        with t.span("outer"):
            t.emit_span("child", 0.0, 1.0)
        child, outer = t.events
        assert child["parent_id"] == outer["span_id"]


class TestSinkAndJsonl:
    def test_sink_receives_each_record(self):
        seen = []
        t = Tracer(clock=FakeClock(), sink=seen.append)
        with t.span("a"):
            t.event("e")
        assert seen == t.events

    def test_jsonl_round_trip(self, tmp_path):
        t = make_tracer()
        with t.span("outer", k=1):
            t.event("tick")
        path = t.write_jsonl(tmp_path / "trace.jsonl")
        assert read_jsonl(path) == t.events


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", a=1) as s:
            s.set(b=2)
            NULL_TRACER.event("e")
        assert NULL_TRACER.emit_span("y", 0, 1) == 0
        assert NULL_TRACER.events == []


class TestValidation:
    def test_accepts_real_trace(self):
        t = make_tracer()
        with t.span("outer"):
            t.event("tick")
        t.emit_span("sim", 0.0, 1.0)
        assert validate_events(t.events) == 3

    @pytest.mark.parametrize(
        "record, match",
        [
            ({"type": "bogus"}, "unknown record type"),
            ({"type": "span", "name": "x"}, "missing key"),
            (
                {
                    "type": "span", "name": "x", "span_id": 1,
                    "parent_id": None, "start": 5.0, "end": 1.0, "attrs": {},
                },
                "before it starts",
            ),
            (
                {
                    "type": "event", "name": "", "span_id": None,
                    "time": 0.0, "attrs": {},
                },
                "non-empty string",
            ),
            (
                {
                    "type": "event", "name": "x", "span_id": None,
                    "time": 0.0, "attrs": "nope",
                },
                "attrs must be an object",
            ),
            ("not a dict", "not an object"),
        ],
    )
    def test_rejects_malformed_records(self, record, match):
        with pytest.raises(ValueError, match=match):
            validate_events([record])
