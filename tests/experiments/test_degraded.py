"""Tests for the degraded-read latency experiment."""

import pytest

from repro.experiments.configs import CFS1, CFS2
from repro.experiments.degraded import run_degraded_read


@pytest.fixture(scope="module")
def result():
    return run_degraded_read(CFS2, runs=2, num_stripes=20)


class TestDegradedRead:
    def test_both_strategies_present(self, result):
        assert set(result.distributions) == {"CAR", "RR"}

    def test_car_faster_on_average(self, result):
        assert (
            result.distributions["CAR"].mean < result.distributions["RR"].mean
        )

    def test_speedup_above_one(self, result):
        assert result.speedup() > 1.0

    def test_distribution_ordering(self, result):
        for d in result.distributions.values():
            assert d.p50 <= d.p99 <= d.worst
            assert d.mean <= d.worst
            assert d.samples > 0

    def test_sample_counts_match(self, result):
        assert (
            result.distributions["CAR"].samples
            == result.distributions["RR"].samples
        )

    def test_latency_scales_with_chunk_size(self):
        small = run_degraded_read(
            CFS1, runs=1, num_stripes=10, chunk_size=1 << 20
        )
        large = run_degraded_read(
            CFS1, runs=1, num_stripes=10, chunk_size=4 << 20
        )
        assert (
            large.distributions["CAR"].mean
            == pytest.approx(4 * small.distributions["CAR"].mean, rel=1e-6)
        )
