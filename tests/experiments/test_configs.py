"""Tests for the Table II/III configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import (
    ALL_CFS,
    CFS1,
    CFS2,
    CFS3,
    MB,
    PAPER_CHUNK_SIZES,
    CFSConfig,
    build_state,
)


class TestTableII:
    def test_cfs1(self):
        assert CFS1.rack_sizes == (4, 3, 3)
        assert (CFS1.k, CFS1.m) == (4, 3)
        assert CFS1.num_nodes == 10

    def test_cfs2_matches_colossus(self):
        assert (CFS2.k, CFS2.m) == (6, 3)
        assert CFS2.num_nodes == 13

    def test_cfs3_matches_hdfs_raid(self):
        assert (CFS3.k, CFS3.m) == (10, 4)
        assert CFS3.num_nodes == 20
        assert CFS3.num_racks == 5

    def test_paper_chunk_sizes(self):
        assert PAPER_CHUNK_SIZES == (4 * MB, 8 * MB, 16 * MB)

    def test_all_cfs_order(self):
        assert [c.name for c in ALL_CFS] == ["CFS1", "CFS2", "CFS3"]

    def test_stripe_width_validation(self):
        with pytest.raises(ConfigurationError):
            CFSConfig(name="bad", rack_sizes=(2, 2), k=4, m=3)

    def test_code_and_topology_factories(self):
        code = CFS2.code()
        assert (code.k, code.m) == (6, 3)
        topo = CFS2.topology()
        assert topo.rack_sizes() == (4, 3, 3, 3)


class TestBuildState:
    def test_matches_methodology(self):
        state = build_state(CFS1, seed=1)
        assert state.placement.num_stripes == 100
        assert state.placement.is_rack_fault_tolerant()
        assert state.data is None

    def test_with_data(self):
        state = build_state(CFS1, seed=1, with_data=True, chunk_size=128,
                            num_stripes=5)
        assert state.data is not None
        assert state.data.chunk(0, 0).nbytes == 128

    def test_reproducible(self):
        a = build_state(CFS2, seed=5, num_stripes=10)
        b = build_state(CFS2, seed=5, num_stripes=10)
        assert dict(a.placement.iter_chunks()) == dict(b.placement.iter_chunks())

    def test_different_seeds_differ(self):
        a = build_state(CFS2, seed=5, num_stripes=10)
        b = build_state(CFS2, seed=6, num_stripes=10)
        assert dict(a.placement.iter_chunks()) != dict(b.placement.iter_chunks())
