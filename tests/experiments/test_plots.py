"""Tests for ASCII chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plots import bar_chart, line_chart, series_chart
from repro.experiments.runner import Series


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart("traffic", {"CAR": 10.0, "RR": 30.0}, width=30)
        lines = out.splitlines()
        assert lines[0] == "traffic"
        assert len(lines) == 3
        # RR's bar is three times CAR's.
        car_bar = lines[1].count("#")
        rr_bar = lines[2].count("#")
        assert rr_bar == 30
        assert car_bar == 10

    def test_zero_values_allowed(self):
        out = bar_chart("t", {"a": 0.0, "b": 5.0})
        assert "a |  0" in out

    def test_unit_suffix(self):
        out = bar_chart("t", {"a": 2.0}, unit="MB")
        assert "2MB" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", {})

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", {"a": -1.0})


class TestLineChart:
    def test_glyphs_and_legend(self):
        out = line_chart(
            "plot",
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            height=5,
            width=20,
        )
        assert "o = one" in out
        assert "x = two" in out
        assert "o" in out and "x" in out

    def test_extremes_on_grid_corners(self):
        out = line_chart("p", {"s": [(0, 0), (10, 100)]}, height=4, width=10)
        body = out.splitlines()[1:5]
        # Max y is on the first grid row, min on the last.
        assert "o" in body[0]
        assert "o" in body[-1]

    def test_single_point(self):
        out = line_chart("p", {"s": [(5, 5)]})
        assert "o" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart("p", {})
        with pytest.raises(ConfigurationError):
            line_chart("p", {"s": []})

    def test_y_label_in_legend(self):
        out = line_chart("p", {"s": [(0, 1)]}, y_label="seconds")
        assert "(y: seconds)" in out


class TestSeriesChart:
    def test_renders_experiment_series(self):
        s = Series(label="CAR", xs=(4.0, 8.0), means=(1.0, 2.0), stds=(0, 0))
        out = series_chart("fig", [s], y_label="MB")
        assert "fig" in out
        assert "CAR" in out

    def test_deterministic(self):
        s = Series(label="CAR", xs=(4.0, 8.0), means=(1.0, 2.0), stds=(0, 0))
        assert series_chart("f", [s]) == series_chart("f", [s])


class TestCliPlotFlag:
    def test_fig8_plot(self, capsys):
        from repro.cli import main

        assert main(["fig8", "--runs", "2", "--stripes", "10", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "balancing with CAR" in out


class TestCliPlotFig7And9:
    def test_fig7_plot(self, capsys):
        from repro.cli import main

        assert main(["fig7", "--runs", "2", "--stripes", "10", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7: cross-rack traffic" in out
        assert "legend:" in out

    def test_fig9_plot(self, capsys):
        from repro.cli import main

        assert main(
            ["fig9", "--runs", "1", "--stripes", "8", "--plot"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 9: recovery time" in out
