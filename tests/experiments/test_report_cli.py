"""Tests for report rendering and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablation import run_traffic_ablation
from repro.experiments.configs import CFS1, MB
from repro.experiments.fig7 import run_fig7_single
from repro.experiments.fig8 import run_fig8_single
from repro.experiments.fig10 import run_fig10
from repro.experiments.report import (
    format_table,
    render_fig7,
    render_fig8,
    render_fig10,
    render_traffic_ablation,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_stringifies_values(self):
        out = format_table(["n"], [[1.5]])
        assert "1.5" in out


class TestRenderers:
    def test_render_fig7(self):
        res = run_fig7_single(CFS1, runs=2, num_stripes=10)
        text = render_fig7([res])
        assert "Figure 7" in text
        assert "CFS1" in text
        assert "4MB" in text and "16MB" in text

    def test_render_fig8(self):
        res = run_fig8_single(CFS1, runs=2, num_stripes=10)
        text = render_fig8([res])
        assert "Figure 8" in text
        assert "±" in text

    def test_render_fig10(self):
        res = run_fig10(runs=1, num_stripes=10, configs=(CFS1,))
        text = render_fig10(res)
        assert "Figure 10(a)" in text and "Figure 10(b)" in text

    def test_render_ablation(self):
        res = run_traffic_ablation(CFS1, runs=2, num_stripes=10)
        text = render_traffic_ablation([res])
        assert "CAR" in text and "saving" in text


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--runs", "2"])
        assert args.experiment == "fig7"
        assert args.runs == 2

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_fig7(self, capsys):
        assert main(["fig7", "--runs", "2", "--stripes", "10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_main_fig8_with_seed(self, capsys):
        assert main(["fig8", "--runs", "2", "--stripes", "10", "--seed", "7"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_main_fig10(self, capsys):
        assert main(["fig10", "--runs", "1", "--stripes", "10"]) == 0
        assert "normalised" in capsys.readouterr().out


class TestCliExtensions:
    def test_landscape_subcommand(self, capsys):
        from repro.cli import main

        assert main(["landscape", "--runs", "2", "--stripes", "15"]) == 0
        out = capsys.readouterr().out
        assert "RS + CAR" in out and "PM-MSR" in out

    def test_longrun_subcommand(self, capsys):
        from repro.cli import main

        assert main(["longrun", "--stripes", "20", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "CAR-history" in out
        assert "long-run lambda" in out


class TestTelemetryCli:
    def test_fig7_telemetry_then_trace_and_metrics(self, capsys, tmp_path):
        out_dir = tmp_path / "telemetry"
        assert main(
            ["fig7", "--runs", "2", "--stripes", "8",
             "--telemetry", str(out_dir)]
        ) == 0
        capsys.readouterr()
        trace = out_dir / "CFS1" / "trace.jsonl"
        metrics = out_dir / "CFS1" / "metrics.json"
        assert trace.is_file() and metrics.is_file()

        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace:" in out and "Spans" in out

        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out

    def test_trace_requires_path(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_metrics_requires_path(self):
        with pytest.raises(SystemExit):
            main(["metrics"])

    def test_fig7_without_telemetry_writes_nothing(self, tmp_path, capsys):
        assert main(["fig7", "--runs", "2", "--stripes", "8"]) == 0
        capsys.readouterr()
        assert not list(tmp_path.iterdir())
