"""Tests for the regenerating-code sweep (golden regression + CLI).

The golden file pins the *exact* JSON the sweep emits for a small fixed
configuration and seed — any drift in placement, strategy accounting,
bound computation or serialisation shows up as a diff against
``golden/regen_cfs1.json``.  Regenerate it (only after deliberate
behaviour changes) with::

    PYTHONPATH=src python -c "
    import json
    from repro.experiments.configs import CFS1
    from repro.experiments.regen import run_regen_single, regen_to_dict
    payload = regen_to_dict([run_regen_single(CFS1, runs=3,
                                              num_stripes=12, base_seed=7)])
    json.dump(payload, open('tests/experiments/golden/regen_cfs1.json', 'w'),
              indent=2, sort_keys=True)"
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.configs import CFS1
from repro.experiments.regen import regen_to_dict, run_regen_single
from repro.experiments.report import render_regen

GOLDEN = Path(__file__).parent / "golden" / "regen_cfs1.json"

RUNS = 3
STRIPES = 12
SEED = 7


@pytest.fixture(scope="module")
def result():
    return run_regen_single(CFS1, runs=RUNS, num_stripes=STRIPES, base_seed=SEED)


class TestGoldenRegression:
    def test_json_matches_golden_file(self, result):
        golden = json.loads(GOLDEN.read_text())
        assert regen_to_dict([result]) == golden

    def test_parallel_run_matches_golden_file(self, result):
        """Worker processes must not perturb seeds or ordering."""
        parallel = run_regen_single(
            CFS1, runs=RUNS, num_stripes=STRIPES, base_seed=SEED, workers=2
        )
        assert regen_to_dict([parallel]) == regen_to_dict([result])

    def test_golden_file_has_zero_violations(self):
        golden = json.loads(GOLDEN.read_text())
        for cfg in golden["configs"]:
            assert cfg["total_violations"] == 0
            for strat in cfg["strategies"].values():
                assert strat["violations"] == 0


class TestResultShape:
    def test_all_strategies_present(self, result):
        assert set(result.outcomes) == {"CAR", "RR", "RackMSR", "Piggyback"}

    def test_placements(self, result):
        assert result.outcomes["RackMSR"].placement == "rack_aligned"
        for name in ("CAR", "RR", "Piggyback"):
            assert result.outcomes[name].placement == "random"

    def test_rack_msr_params_derived_from_rack_count(self, result):
        # CFS1 has 3 racks: kbar = 2, dbar = 2*kbar - 2 = 2.
        assert (result.kbar, result.dbar) == (2, 2)

    def test_no_violations(self, result):
        assert result.total_violations == 0

    def test_rackmsr_exactly_on_bound(self, result):
        msr = result.outcomes["RackMSR"]
        assert msr.per_stripe_units[0] == pytest.approx(msr.bound)
        assert msr.per_stripe_units[1] == pytest.approx(0.0)

    def test_series_use_paper_chunk_sizes(self, result):
        for outcome in result.outcomes.values():
            assert outcome.series.xs == (4.0, 8.0, 16.0)

    def test_traffic_linear_in_chunk_size(self, result):
        series = result.outcomes["CAR"].series
        assert series.means[1] == pytest.approx(2 * series.means[0])
        assert series.means[2] == pytest.approx(4 * series.means[0])


class TestRenderRegen:
    def test_table_contents(self, result):
        text = render_regen([result])
        assert "Regenerating codes" in text
        assert "CFS1" in text
        for name in ("CAR", "RR", "RackMSR", "Piggyback"):
            assert name in text
        assert "rack_aligned" in text


class TestCli:
    def test_regen_subcommand_writes_json(self, capsys, tmp_path):
        out = tmp_path / "regen.json"
        assert main(
            ["regen", "--runs", "2", "--stripes", "10", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "Regenerating codes" in text
        assert str(out) in text
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "regen"
        assert [c["config"] for c in payload["configs"]] == [
            "CFS1", "CFS2", "CFS3",
        ]
        for cfg in payload["configs"]:
            assert cfg["total_violations"] == 0
