"""Tests for the experiment runner (paired runs, seeding, series)."""

import pytest

from repro.experiments.configs import CFS1, CFS2
from repro.experiments.runner import ExperimentRunner, Series, mean_std
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy


class TestMeanStd:
    def test_single_value(self):
        assert mean_std([4.0]) == (4.0, 0.0)

    def test_basic(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0
        assert std == pytest.approx(2.0 ** 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestSeries:
    def test_point_lookup(self):
        s = Series(label="x", xs=(1.0, 2.0), means=(5.0, 6.0), stds=(0.1, 0.2))
        assert s.point(2.0) == (6.0, 0.2)

    def test_missing_x(self):
        s = Series(label="x", xs=(1.0,), means=(5.0,), stds=(0.0,))
        with pytest.raises(ValueError):
            s.point(9.0)


class TestRunner:
    def test_paired_comparison(self):
        """Every strategy inside one run sees the same placement and
        failure — the testbed's paired methodology."""
        runner = ExperimentRunner(CFS1, runs=2, num_stripes=15)
        results = runner.run_all(
            {
                "CAR": lambda seed: CarStrategy(),
                "RR": lambda seed: RandomRecoveryStrategy(rng=seed),
            }
        )
        for r in results:
            assert set(r.solutions) == {"CAR", "RR"}
            car_rack = r.solutions["CAR"].failed_rack
            rr_rack = r.solutions["RR"].failed_rack
            assert car_rack == rr_rack == r.state.topology.rack_of(
                r.event.failed_node
            )

    def test_runs_differ(self):
        runner = ExperimentRunner(CFS2, runs=3, num_stripes=15)
        results = runner.run_all({"CAR": lambda seed: CarStrategy()})
        layouts = [
            tuple(sorted(r.state.placement.iter_chunks())) for r in results
        ]
        assert len(set(layouts)) > 1

    def test_reproducible_across_runner_instances(self):
        def traffic(base_seed):
            runner = ExperimentRunner(
                CFS1, runs=2, base_seed=base_seed, num_stripes=15
            )
            results = runner.run_all({"CAR": lambda seed: CarStrategy()})
            return [
                r.solutions["CAR"].total_cross_rack_traffic() for r in results
            ]

        assert traffic(42) == traffic(42)
        assert traffic(42) != traffic(43) or traffic(42) != traffic(44)

    def test_strategies_recorded(self):
        runner = ExperimentRunner(CFS1, runs=1, num_stripes=10)
        results = runner.run_all({"CAR": lambda seed: CarStrategy()})
        strategy = results[0].strategies["CAR"]
        assert strategy.last_trace is not None

    def test_stripe_override(self):
        runner = ExperimentRunner(CFS1, runs=1, num_stripes=7)
        results = runner.run_all({"CAR": lambda seed: CarStrategy()})
        assert results[0].state.placement.num_stripes == 7
