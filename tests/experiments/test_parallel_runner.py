"""The parallel experiment driver must be invisible in the results.

``run_all(workers=N)`` fans independent runs over worker processes;
every run is a pure function of ``(config, base_seed + i, factories)``
and results are gathered in submission order, so the output must be
byte-identical to the serial loop for any worker count.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    CFS1,
    CarFactory,
    ExperimentRunner,
    RandomRecoveryFactory,
)


def _runner(runs=3):
    return ExperimentRunner(CFS1, runs=runs, num_stripes=12)


def _fingerprint(results):
    """Everything observable about a result list, as plain data."""
    out = []
    for r in results:
        per_strategy = {}
        for name, sol in sorted(r.solutions.items()):
            per_strategy[name] = (
                tuple(sol.traffic_by_rack()),
                sol.load_balancing_rate(),
                tuple(
                    (s.stripe_id, tuple(sorted(s.chunks_by_rack.items())))
                    for s in sol.solutions
                ),
            )
        out.append((r.run_index, r.event.failed_node, per_strategy))
    return out


FACTORIES = {"CAR": CarFactory(), "RR": RandomRecoveryFactory()}


class TestParallelIdentity:
    def test_workers_2_identical_to_serial(self):
        serial = _runner().run_all(FACTORIES, workers=1)
        parallel = _runner().run_all(FACTORIES, workers=2)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_workers_none_is_serial_default(self):
        assert _fingerprint(_runner().run_all(FACTORIES)) == _fingerprint(
            _runner().run_all(FACTORIES, workers=1)
        )

    def test_parallel_preserves_strategy_artifacts(self):
        """Balance traces survive the pickle trip back from workers."""
        results = _runner(runs=2).run_all({"CAR": CarFactory()}, workers=2)
        for r in results:
            trace = r.strategies["CAR"].last_trace
            assert trace is not None
            assert trace.lambdas


class TestTelemetryAggregation:
    """Merged metrics must not depend on how runs were distributed."""

    def _merged_snapshot(self, tmp_path, workers, tag):
        runner = ExperimentRunner(
            CFS1, runs=4, num_stripes=12, telemetry=tmp_path / tag
        )
        results = runner.run_all(FACTORIES, workers=workers)
        return runner.merged_metrics(results).snapshot()

    def test_metric_aggregate_identical_for_any_worker_count(self, tmp_path):
        serial = self._merged_snapshot(tmp_path, None, "serial")
        two = self._merged_snapshot(tmp_path, 2, "w2")
        three = self._merged_snapshot(tmp_path, 3, "w3")
        assert serial["metrics"]
        assert serial == two == three

    def test_written_metrics_match_in_memory_merge(self, tmp_path):
        import json

        runner = ExperimentRunner(
            CFS1, runs=2, num_stripes=12, telemetry=tmp_path / "out"
        )
        results = runner.run_all(FACTORIES, workers=2)
        written = json.loads((tmp_path / "out" / "metrics.json").read_text())
        merged = runner.merged_metrics(results).snapshot(include_caches=True)
        assert written == json.loads(json.dumps(merged))

    def test_trace_records_annotated_with_run_index(self, tmp_path):
        from repro.obs import read_jsonl, validate_events

        runner = ExperimentRunner(
            CFS1, runs=3, num_stripes=12, telemetry=tmp_path / "out"
        )
        runner.run_all(FACTORIES, workers=2)
        events = read_jsonl(tmp_path / "out" / "trace.jsonl")
        assert validate_events(events) == len(events) > 0
        assert {e["run"] for e in events} == {0, 1, 2}

    def test_no_telemetry_attribute_without_directory(self):
        results = _runner(runs=1).run_all(FACTORIES)
        assert results[0].telemetry is None


class TestParallelValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            _runner().run_all(FACTORIES, workers=0)

    def test_rejects_unpicklable_factories(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            _runner().run_all(
                {"CAR": lambda seed: None}, workers=2
            )

    def test_lambdas_still_fine_serially(self):
        from repro.recovery.baselines import CarStrategy

        results = _runner(runs=1).run_all(
            {"CAR": lambda seed: CarStrategy()}
        )
        assert len(results) == 1
