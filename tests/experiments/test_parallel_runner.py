"""The parallel experiment driver must be invisible in the results.

``run_all(workers=N)`` fans independent runs over worker processes;
every run is a pure function of ``(config, base_seed + i, factories)``
and results are gathered in submission order, so the output must be
byte-identical to the serial loop for any worker count.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    CFS1,
    CarFactory,
    ExperimentRunner,
    RandomRecoveryFactory,
)


def _runner(runs=3):
    return ExperimentRunner(CFS1, runs=runs, num_stripes=12)


def _fingerprint(results):
    """Everything observable about a result list, as plain data."""
    out = []
    for r in results:
        per_strategy = {}
        for name, sol in sorted(r.solutions.items()):
            per_strategy[name] = (
                tuple(sol.traffic_by_rack()),
                sol.load_balancing_rate(),
                tuple(
                    (s.stripe_id, tuple(sorted(s.chunks_by_rack.items())))
                    for s in sol.solutions
                ),
            )
        out.append((r.run_index, r.event.failed_node, per_strategy))
    return out


FACTORIES = {"CAR": CarFactory(), "RR": RandomRecoveryFactory()}


class TestParallelIdentity:
    def test_workers_2_identical_to_serial(self):
        serial = _runner().run_all(FACTORIES, workers=1)
        parallel = _runner().run_all(FACTORIES, workers=2)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_workers_none_is_serial_default(self):
        assert _fingerprint(_runner().run_all(FACTORIES)) == _fingerprint(
            _runner().run_all(FACTORIES, workers=1)
        )

    def test_parallel_preserves_strategy_artifacts(self):
        """Balance traces survive the pickle trip back from workers."""
        results = _runner(runs=2).run_all({"CAR": CarFactory()}, workers=2)
        for r in results:
            trace = r.strategies["CAR"].last_trace
            assert trace is not None
            assert trace.lambdas


class TestTelemetryAggregation:
    """Merged metrics must not depend on how runs were distributed."""

    def _merged_snapshot(self, tmp_path, workers, tag):
        runner = ExperimentRunner(
            CFS1, runs=4, num_stripes=12, telemetry=tmp_path / tag
        )
        results = runner.run_all(FACTORIES, workers=workers)
        return runner.merged_metrics(results).snapshot()

    def test_metric_aggregate_identical_for_any_worker_count(self, tmp_path):
        serial = self._merged_snapshot(tmp_path, None, "serial")
        two = self._merged_snapshot(tmp_path, 2, "w2")
        three = self._merged_snapshot(tmp_path, 3, "w3")
        assert serial["metrics"]
        assert serial == two == three

    def test_written_metrics_match_in_memory_merge(self, tmp_path):
        import json

        runner = ExperimentRunner(
            CFS1, runs=2, num_stripes=12, telemetry=tmp_path / "out"
        )
        results = runner.run_all(FACTORIES, workers=2)
        written = json.loads((tmp_path / "out" / "metrics.json").read_text())
        merged = runner.merged_metrics(results).snapshot(include_caches=True)
        # The written file additionally carries the coordinator's
        # resource-profile gauges, sampled once in the parent process.
        profile = {
            k: v for k, v in written["metrics"].items()
            if k.startswith("profile.")
        }
        assert profile["profile.samples"]["kind"] == "gauge"
        written["metrics"] = {
            k: v for k, v in written["metrics"].items()
            if not k.startswith("profile.")
        }
        assert written == json.loads(json.dumps(merged))

    def test_trace_records_annotated_with_run_index(self, tmp_path):
        from repro.obs import read_jsonl, validate_events

        runner = ExperimentRunner(
            CFS1, runs=3, num_stripes=12, telemetry=tmp_path / "out"
        )
        runner.run_all(FACTORIES, workers=2)
        events = read_jsonl(tmp_path / "out" / "trace.jsonl")
        assert validate_events(events) == len(events) > 0
        assert {e["run"] for e in events} == {0, 1, 2}

    def test_no_telemetry_attribute_without_directory(self):
        results = _runner(runs=1).run_all(FACTORIES)
        assert results[0].telemetry is None


class TestParallelValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            _runner().run_all(FACTORIES, workers=0)

    def test_rejects_unpicklable_factories(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            _runner().run_all(
                {"CAR": lambda seed: None}, workers=2
            )

    def test_lambdas_still_fine_serially(self):
        from repro.recovery.baselines import CarStrategy

        results = _runner(runs=1).run_all(
            {"CAR": lambda seed: CarStrategy()}
        )
        assert len(results) == 1


class TestFaultArtifactPickling:
    """Fault-layer objects must survive the worker pickle boundary.

    Regression suite: ``RecoveryAbort``/``InjectedCrashError`` carry
    required constructor arguments, and exceptions with such signatures
    break default exception pickling unless ``__reduce__`` replays the
    constructor.  A worker process raising (or returning) any of these
    used to kill the whole parallel experiment with an opaque
    ``TypeError`` instead of propagating the typed failure.
    """

    @staticmethod
    def round_trip(obj):
        import pickle

        return pickle.loads(pickle.dumps(obj))

    def test_fault_injector_round_trips(self):
        from repro.faults import (
            FaultInjector,
            FaultKind,
            FaultSpec,
            PipelineStage,
        )

        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.FLOW_DROP,
                       stage=PipelineStage.CROSS_TRANSFER, max_fires=2)],
            seed=9,
        )
        clone = self.round_trip(injector)
        assert clone._specs == injector._specs
        assert clone.rng.getstate() == injector.rng.getstate()

    def test_recovery_abort_round_trips(self):
        from repro.faults import RecoveryAbort
        from repro.faults.events import FaultLog

        abort = RecoveryAbort("out of replans", FaultLog(),
                              dead_nodes=frozenset({3, 5}))
        clone = self.round_trip(abort)
        assert clone.reason == "out of replans"
        assert clone.dead_nodes == frozenset({3, 5})

    def test_injected_crash_error_round_trips(self):
        from repro.faults import FaultKind, InjectedCrashError, PipelineStage
        from repro.faults.events import FaultEvent

        event = FaultEvent(
            kind=FaultKind.HELPER_CRASH,
            stage=PipelineStage.DISK_READ,
            stripe_id=2, node=4, rack=1, attempt=0,
        )
        clone = self.round_trip(InjectedCrashError(event))
        assert clone.event == event

    def test_coordinator_crash_error_round_trips(self):
        from repro.errors import CoordinatorCrashError

        err = CoordinatorCrashError("died", records_written=17)
        clone = self.round_trip(err)
        assert clone.records_written == 17
        assert str(clone) == "died"

    def test_robust_result_round_trips_from_worker(self):
        """A full RobustExecutionResult crosses a real process boundary."""
        from concurrent.futures import ProcessPoolExecutor

        result = _robust_result_in_worker(0)  # sanity: works in-process
        assert result.verified
        with ProcessPoolExecutor(max_workers=1) as pool:
            shipped = pool.submit(_robust_result_in_worker, 0).result()
        assert shipped.verified
        assert shipped.result.cross_rack_bytes == result.result.cross_rack_bytes
        assert [f.kind for f in shipped.log.faults] == [
            f.kind for f in result.log.faults
        ]

    def test_abort_propagates_from_worker(self):
        """A worker's typed abort arrives intact, not as a pickle error."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.faults import RecoveryAbort

        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_abort_in_worker)
            with pytest.raises(RecoveryAbort, match="unbounded") as excinfo:
                future.result()
        assert excinfo.value.log.faults


def _robust_result_in_worker(seed):
    """Module-level so ProcessPoolExecutor can pickle the callable."""
    from repro.experiments.configs import build_state
    from repro.cluster.failure import FailureInjector
    from repro.faults import (
        BackoffPolicy,
        FaultInjector,
        FaultKind,
        FaultSpec,
        recover_with_faults,
    )
    from repro.faults import PipelineStage
    from repro.recovery import CarStrategy

    state = build_state(CFS1, seed=seed, with_data=True, num_stripes=8)
    event = FailureInjector(rng=seed).fail_random_node(state)
    injector = FaultInjector(
        [FaultSpec(kind=FaultKind.FLOW_DROP,
                   stage=PipelineStage.CROSS_TRANSFER, max_fires=1)],
        seed=5,
    )
    return recover_with_faults(
        state, event, CarStrategy(), injector=injector,
        backoff=BackoffPolicy(max_attempts=3),
    )


def _abort_in_worker():
    from repro.faults import FaultKind, FaultLog, PipelineStage, RecoveryAbort
    from repro.faults.events import FaultEvent

    log = FaultLog()
    log.record(FaultEvent(
        kind=FaultKind.HELPER_CRASH, stage=PipelineStage.DISK_READ,
        stripe_id=0, node=1, rack=0, attempt=0,
    ))
    raise RecoveryAbort("unbounded fault pressure", log,
                        dead_nodes=frozenset({1}))
