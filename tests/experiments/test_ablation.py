"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablation import (
    run_greedy_vs_optimal,
    run_oversubscription_sweep,
    run_traffic_ablation,
)
from repro.experiments.configs import CFS1, CFS2


class TestTrafficAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_traffic_ablation(CFS2, runs=3, num_stripes=30)

    def test_car_is_best(self, result):
        assert result.traffic["CAR"] == min(result.traffic.values())

    def test_rr_is_worst(self, result):
        assert result.traffic["RR"] == max(result.traffic.values())

    def test_each_technique_helps(self, result):
        assert result.saving_over_rr("MinRack-noAgg") > 0
        assert result.saving_over_rr("Random+Agg") > 0
        assert result.saving_over_rr("CAR") > result.saving_over_rr("Random+Agg")


class TestOversubscription:
    def test_saving_grows_with_oversubscription(self):
        points = run_oversubscription_sweep(
            CFS1, factors=(1.0, 4.0), num_stripes=20
        )
        assert points[1].saving > points[0].saving

    def test_times_grow_with_oversubscription(self):
        points = run_oversubscription_sweep(
            CFS1, factors=(1.0, 8.0), num_stripes=20
        )
        assert points[1].rr_time_per_chunk > points[0].rr_time_per_chunk


class TestGreedyVsOptimal:
    def test_greedy_near_optimal(self):
        result = run_greedy_vs_optimal(CFS1, runs=5, num_stripes=5)
        # Greedy may tie or be slightly worse, never better than optimal.
        for g, o in zip(result.greedy_lambdas, result.optimal_lambdas):
            assert g >= o - 1e-9
        assert result.mean_gap < 0.5
