"""Tests for the figure reproducers (small runs; shape assertions).

These check the *paper's qualitative claims* hold on reduced workloads:
CAR saves traffic and time, savings grow with k, λ drops with
balancing, transmission dominates computation.
"""

import pytest

from repro.experiments.configs import CFS1, CFS2, CFS3, MB
from repro.experiments.fig7 import run_fig7_single
from repro.experiments.fig8 import run_fig8_single
from repro.experiments.fig9 import run_fig9_single
from repro.experiments.fig10 import run_fig10

RUNS = 3
STRIPES = 30


@pytest.fixture(scope="module")
def fig7_cfs1():
    return run_fig7_single(CFS1, runs=RUNS, num_stripes=STRIPES)


@pytest.fixture(scope="module")
def fig7_cfs3():
    return run_fig7_single(CFS3, runs=RUNS, num_stripes=STRIPES)


class TestFig7:
    def test_car_below_rr_everywhere(self, fig7_cfs1):
        car, rr = fig7_cfs1.series["CAR"], fig7_cfs1.series["RR"]
        for c_mean, r_mean in zip(car.means, rr.means):
            assert c_mean < r_mean

    def test_traffic_linear_in_chunk_size(self, fig7_cfs1):
        car = fig7_cfs1.series["CAR"]
        assert car.means[1] == pytest.approx(2 * car.means[0])
        assert car.means[2] == pytest.approx(4 * car.means[0])

    def test_savings_significant(self, fig7_cfs1):
        assert fig7_cfs1.max_saving > 0.35

    def test_saving_grows_with_k(self, fig7_cfs1, fig7_cfs3):
        """Paper: CFS3 (k=10) saves more than CFS1 (k=4)."""
        assert fig7_cfs3.max_saving > fig7_cfs1.max_saving

    def test_series_have_paper_x_axis(self, fig7_cfs1):
        assert fig7_cfs1.series["CAR"].xs == (4.0, 8.0, 16.0)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8_single(CFS2, runs=RUNS, num_stripes=STRIPES)

    def test_balancing_beats_no_balancing(self, result):
        assert result.final_lambda < result.initial_lambda

    def test_lambda_nonincreasing_over_checkpoints(self, result):
        means = result.balanced.means
        for a, b in zip(means, means[1:]):
            assert b <= a + 1e-9

    def test_lambda_at_least_one(self, result):
        assert result.final_lambda >= 1.0

    def test_substitutions_happened(self, result):
        assert result.mean_substitutions > 0

    def test_unbalanced_series_is_flat(self, result):
        assert len(set(result.unbalanced.means)) == 1


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9_single(
            CFS2, runs=2, num_stripes=20, chunk_sizes=(4 * MB, 8 * MB)
        )

    def test_car_faster(self, result):
        for x in result.series["CAR"].xs:
            car, _ = result.series["CAR"].point(x)
            rr, _ = result.series["RR"].point(x)
            assert car < rr

    def test_time_grows_with_chunk_size(self, result):
        for name in ("CAR", "RR"):
            means = result.series[name].means
            assert means[1] > means[0]

    def test_saving_positive(self, result):
        assert result.max_saving > 0.1


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(runs=2, num_stripes=20)

    def test_transmission_dominates(self, result):
        for row in result.rows:
            assert row.transmission_ratio > 0.5

    def test_ratios_sum_to_one(self, result):
        for row in result.rows:
            assert row.transmission_ratio + row.computation_ratio == pytest.approx(1.0)

    def test_rr_computation_share_shrinks_with_k(self, result):
        shares = {
            r.config_name: r.computation_ratio
            for r in result.rows
            if r.strategy == "RR"
        }
        assert shares["CFS3"] < shares["CFS1"]

    def test_normalized_computation_close_to_one(self, result):
        for name, ratio in result.normalized_computation.items():
            assert 0.5 < ratio < 1.6, name

    def test_row_lookup(self, result):
        assert result.row("CFS1", "CAR").strategy == "CAR"
        with pytest.raises(KeyError):
            result.row("CFS9", "CAR")
