"""Tests for failure trace generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.traces import FailureTraceGenerator


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            FailureTraceGenerator(num_nodes=0)
        with pytest.raises(ConfigurationError):
            FailureTraceGenerator(num_nodes=2, mtbf_hours=0)
        with pytest.raises(ConfigurationError):
            FailureTraceGenerator(num_nodes=2, distribution="pareto")
        with pytest.raises(ConfigurationError):
            FailureTraceGenerator(num_nodes=2, weibull_shape=0)

    def test_bad_horizon(self):
        gen = FailureTraceGenerator(num_nodes=2)
        with pytest.raises(ConfigurationError):
            gen.generate(0)


class TestGeneration:
    def test_deterministic_by_seed(self):
        a = FailureTraceGenerator(5, mtbf_hours=100, seed=3).generate(1000)
        b = FailureTraceGenerator(5, mtbf_hours=100, seed=3).generate(1000)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FailureTraceGenerator(5, mtbf_hours=100, seed=3).generate(1000)
        b = FailureTraceGenerator(5, mtbf_hours=100, seed=4).generate(1000)
        assert a.events != b.events

    def test_events_sorted_and_in_horizon(self):
        trace = FailureTraceGenerator(10, mtbf_hours=50, seed=1).generate(500)
        times = [e.time_hours for e in trace]
        assert times == sorted(times)
        assert all(0 < t < 500 for t in times)
        assert all(0 <= e.node_id < 10 for e in trace)

    def test_mean_interarrival_matches_rate(self):
        """10 nodes at MTBF 100 h -> aggregate failure every ~10 h."""
        trace = FailureTraceGenerator(10, mtbf_hours=100, seed=2).generate(
            20_000
        )
        assert trace.mean_interarrival_hours() == pytest.approx(10, rel=0.25)

    def test_weibull_distribution(self):
        trace = FailureTraceGenerator(
            10, mtbf_hours=100, distribution="weibull", weibull_shape=1.5, seed=2
        ).generate(20_000)
        # Mean preserved by the scale normalisation.
        assert trace.mean_interarrival_hours() == pytest.approx(10, rel=0.25)

    def test_failures_per_node_histogram(self):
        trace = FailureTraceGenerator(4, mtbf_hours=10, seed=0).generate(1000)
        hist = trace.failures_per_node(4)
        assert sum(hist) == len(trace)
        assert all(h > 0 for h in hist)

    def test_empty_trace_mean(self):
        trace = FailureTraceGenerator(1, mtbf_hours=1e9, seed=0).generate(1.0)
        assert len(trace) == 0
        assert trace.mean_interarrival_hours() == 1.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_trace_invariants(self, seed):
        trace = FailureTraceGenerator(6, mtbf_hours=30, seed=seed).generate(300)
        times = [e.time_hours for e in trace]
        assert times == sorted(times)
        assert trace.horizon_hours == 300
