"""Tests for the long-horizon maintenance replay."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import CFS1, CFS2, build_state
from repro.recovery import CarStrategy, RandomRecoveryStrategy
from repro.workloads import FailureTraceGenerator, LongRunSimulator


def make_trace(nodes=13, seed=5, horizon=24 * 60, mtbf=1500):
    return FailureTraceGenerator(
        num_nodes=nodes, mtbf_hours=mtbf, seed=seed
    ).generate(horizon)


@pytest.fixture(scope="module")
def trace():
    return make_trace()


@pytest.fixture(scope="module")
def reports(trace):
    out = {}
    for name, factory in (
        ("CAR", lambda h: CarStrategy()),
        ("CAR-history", lambda h: CarStrategy(baseline_traffic=list(h))),
        ("RR", lambda h: RandomRecoveryStrategy(rng=9)),
    ):
        sim = LongRunSimulator(
            lambda: build_state(CFS2, seed=1, num_stripes=40),
            factory,
            chunk_size=1 << 20,
        )
        out[name] = sim.replay(trace)
    return out


class TestReplay:
    def test_every_event_repaired(self, trace, reports):
        # Nodes always hold chunks at 40 stripes x 9 chunks over 13 nodes.
        assert reports["CAR"].failures == len(trace)

    def test_car_ships_less_than_rr_cumulatively(self, reports):
        assert (
            reports["CAR"].total_cross_rack_bytes
            < reports["RR"].total_cross_rack_bytes
        )

    def test_history_aware_same_traffic(self, reports):
        """History changes *where* traffic goes, never how much."""
        assert (
            reports["CAR-history"].total_cross_rack_bytes
            == reports["CAR"].total_cross_rack_bytes
        )

    def test_history_aware_improves_long_run_lambda(self, reports):
        assert (
            reports["CAR-history"].long_run_lambda()
            < reports["CAR"].long_run_lambda()
        )

    def test_repair_hours_positive_and_car_cheaper(self, reports):
        assert reports["CAR"].total_repair_hours > 0
        assert (
            reports["CAR"].total_repair_hours
            < reports["RR"].total_repair_hours
        )

    def test_per_rack_accounting_consistent(self, reports):
        rep = reports["CAR"]
        assert sum(rep.per_rack_chunks) == sum(
            o.cross_rack_chunks for o in rep.outcomes
        )

    def test_outcomes_time_ordered(self, reports):
        times = [o.time_hours for o in reports["CAR"].outcomes]
        assert times == sorted(times)

    def test_strategy_name_recorded(self, reports):
        assert reports["CAR-history"].strategy == "CAR-history"

    def test_mean_lambda_at_least_one(self, reports):
        for rep in reports.values():
            assert rep.mean_lambda >= 1.0


class TestEdgeCases:
    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            LongRunSimulator(
                lambda: build_state(CFS1, seed=1),
                lambda h: CarStrategy(),
                chunk_size=0,
            )

    def test_empty_trace_gives_empty_report(self):
        trace = FailureTraceGenerator(10, mtbf_hours=1e9, seed=0).generate(1.0)
        sim = LongRunSimulator(
            lambda: build_state(CFS1, seed=1, num_stripes=10),
            lambda h: CarStrategy(),
        )
        rep = sim.replay(trace)
        assert rep.failures == 0
        assert rep.total_cross_rack_bytes == 0
        assert rep.mean_lambda == 1.0
        assert rep.long_run_lambda() == 1.0

    def test_failures_on_empty_nodes_skipped(self):
        """With very few stripes some nodes hold nothing; their failures
        must be no-ops, not errors."""
        trace = make_trace(nodes=10, horizon=24 * 120, mtbf=500, seed=2)
        sim = LongRunSimulator(
            lambda: build_state(CFS1, seed=1, num_stripes=1),
            lambda h: CarStrategy(),
        )
        rep = sim.replay(trace)
        assert rep.failures <= len(trace)
