"""Shared fixtures for the test suite, plus Hypothesis profiles.

Profiles (select with ``HYPOTHESIS_PROFILE=<name>``):

- ``default``: Hypothesis defaults (random seeds, local dev).
- ``ci``: derandomized with a fixed example budget, so property suites
  are reproducible run-to-run on CI (the ``regen-smoke`` job pins this).
- ``thorough``: a larger randomized budget for occasional deep local runs.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.cluster.placement import RandomPlacementPolicy

settings.register_profile("default", settings())
settings.register_profile(
    "ci", settings(derandomize=True, max_examples=50, deadline=None)
)
settings.register_profile(
    "thorough", settings(max_examples=500, deadline=None)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure.rs import RSCode


@pytest.fixture
def rs63() -> RSCode:
    """The Google-Colossus (6, 3) RS code."""
    return RSCode(6, 3)


@pytest.fixture
def small_topology() -> ClusterTopology:
    """Four racks of 4/3/3/3 nodes (the paper's CFS2 layout)."""
    return ClusterTopology.from_rack_sizes([4, 3, 3, 3])


@pytest.fixture
def small_state(rs63: RSCode, small_topology: ClusterTopology) -> ClusterState:
    """A 20-stripe CFS2-like cluster with real data, no failure yet."""
    placement = RandomPlacementPolicy(rng=random.Random(11)).place(
        small_topology, 20, rs63.k, rs63.m
    )
    data = DataStore(rs63, 20, chunk_size=512, seed=3)
    return ClusterState(small_topology, rs63, placement, data)


@pytest.fixture
def failed_state(small_state: ClusterState) -> ClusterState:
    """``small_state`` with a deterministic failed node."""
    # Node 0 stores chunks with very high probability at 20 stripes; pick
    # the first node that actually stores something to stay deterministic.
    for node in small_state.topology.nodes:
        if small_state.placement.chunks_on_node(node.node_id):
            small_state.fail_node(node.node_id)
            return small_state
    raise AssertionError("no node stores any chunk")
