"""GF(2^16) coverage for the vectorised buffer kernels.

The GF8 paths dominate usage; these tests pin the uint16 route —
table construction, axpy, dot — which wide stripes (k + m > 255) use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import GF16
from repro.gf.vector import axpy, dot_rows, mul_scalar, scale_inplace

elements16 = st.integers(min_value=0, max_value=65535)


def buf16(seed, n=32):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 65536, n, dtype=np.uint16)


class TestGF16Kernels:
    @settings(max_examples=25, deadline=None)
    @given(elements16, st.integers(0, 1000))
    def test_mul_scalar_matches_field(self, c, seed):
        buf = buf16(seed, 16)
        out = mul_scalar(GF16, c, buf)
        assert out.dtype == np.uint16
        for x, y in zip(buf.tolist(), out.tolist()):
            assert y == GF16.mul(c, x)

    @settings(max_examples=15, deadline=None)
    @given(elements16, st.integers(0, 1000))
    def test_axpy_matches_definition(self, c, seed):
        x, y = buf16(seed), buf16(seed + 1)
        expected = y ^ mul_scalar(GF16, c, x)
        axpy(GF16, c, x, y)
        assert np.array_equal(y, expected)

    def test_scale_inplace(self):
        buf = buf16(3)
        expected = mul_scalar(GF16, 777, buf)
        scale_inplace(GF16, 777, buf)
        assert np.array_equal(buf, expected)

    def test_dot_rows_grouping_invariance(self):
        coeffs = [1234, 9999, 40000]
        bufs = [buf16(i) for i in range(3)]
        whole = dot_rows(GF16, coeffs, bufs)
        split = dot_rows(GF16, coeffs[:1], bufs[:1]) ^ dot_rows(
            GF16, coeffs[1:], bufs[1:]
        )
        assert np.array_equal(whole, split)

    def test_mul_table_cache_distinct_from_gf8(self):
        """The per-constant product tables are keyed by field width."""
        from repro.gf.field import GF8

        buf8 = np.array([200], dtype=np.uint8)
        buf16_ = np.array([200], dtype=np.uint16)
        a = int(mul_scalar(GF8, 3, buf8)[0])
        b = int(mul_scalar(GF16, 3, buf16_)[0])
        assert a == GF8.mul(3, 200)
        assert b == GF16.mul(3, 200)
        # Same inputs, different reduction polynomials -> the tables
        # must not be shared (values may coincide for tiny operands, so
        # check a case where they differ).
        big8 = int(mul_scalar(GF8, 2, np.array([200], dtype=np.uint8))[0])
        big16 = int(mul_scalar(GF16, 2, np.array([200], dtype=np.uint16))[0])
        assert big8 == GF8.mul(2, 200)
        assert big16 == GF16.mul(2, 200)
        assert big8 != big16  # 400 overflows GF(2^8) and reduces
