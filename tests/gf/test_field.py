"""Tests (incl. property-based field axioms) for scalar GF arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DivisionByZeroError, FieldError
from repro.gf.field import GF4, GF8, GF16, GaloisField, gf

elements8 = st.integers(min_value=0, max_value=255)
nonzero8 = st.integers(min_value=1, max_value=255)


class TestBasics:
    def test_singletons_are_cached(self):
        assert gf(8) is GF8
        assert gf(4) is GF4
        assert gf(16) is GF16

    def test_equality_and_hash(self):
        assert GaloisField(8) == GF8
        assert hash(GaloisField(8)) == hash(GF8)
        assert GF8 != GF4

    def test_repr(self):
        assert "w=8" in repr(GF8)

    def test_order(self):
        assert GF4.order == 16
        assert GF8.order == 256
        assert GF16.order == 65536

    def test_check_rejects_out_of_range(self):
        with pytest.raises(FieldError):
            GF8.check(256)
        with pytest.raises(FieldError):
            GF8.check(-1)

    def test_add_is_xor(self):
        assert GF8.add(0b1010, 0b0110) == 0b1100

    def test_sub_is_add(self):
        assert GF8.sub(77, 33) == GF8.add(77, 33)

    def test_mul_by_zero_and_one(self):
        assert GF8.mul(0, 123) == 0
        assert GF8.mul(123, 0) == 0
        assert GF8.mul(1, 123) == 123

    def test_known_product_gf8(self):
        # 2 * 128 = 0x100 -> reduced by 0x11d -> 0x1d
        assert GF8.mul(2, 128) == 0x1D

    def test_div_inverse_of_mul(self):
        prod = GF8.mul(57, 99)
        assert GF8.div(prod, 99) == 57

    def test_div_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            GF8.div(5, 0)

    def test_inv_zero(self):
        with pytest.raises(DivisionByZeroError):
            GF8.inv(0)

    def test_pow(self):
        assert GF8.pow(2, 0) == 1
        assert GF8.pow(2, 1) == 2
        assert GF8.pow(2, 8) == GF8.mul(GF8.pow(2, 4), GF8.pow(2, 4))

    def test_pow_negative(self):
        assert GF8.pow(7, -1) == GF8.inv(7)

    def test_pow_zero_base(self):
        assert GF8.pow(0, 0) == 1
        assert GF8.pow(0, 3) == 0
        with pytest.raises(DivisionByZeroError):
            GF8.pow(0, -2)

    def test_generator_pow_cycles(self):
        assert GF8.generator_pow(0) == 1
        assert GF8.generator_pow(255) == 1  # g^(2^8-1) == 1

    def test_dot(self):
        assert GF8.dot([1, 2], [3, 4]) == 3 ^ GF8.mul(2, 4)

    def test_dot_length_mismatch(self):
        with pytest.raises(FieldError):
            GF8.dot([1], [1, 2])


class TestFieldAxioms:
    """Hypothesis: GF(2^8) satisfies the field axioms."""

    @given(elements8, elements8)
    def test_mul_commutative(self, a, b):
        assert GF8.mul(a, b) == GF8.mul(b, a)

    @given(elements8, elements8, elements8)
    def test_mul_associative(self, a, b, c):
        assert GF8.mul(GF8.mul(a, b), c) == GF8.mul(a, GF8.mul(b, c))

    @given(elements8, elements8, elements8)
    def test_distributive(self, a, b, c):
        assert GF8.mul(a, b ^ c) == GF8.mul(a, b) ^ GF8.mul(a, c)

    @given(nonzero8)
    def test_multiplicative_inverse(self, a):
        assert GF8.mul(a, GF8.inv(a)) == 1

    @given(elements8)
    def test_additive_inverse_is_self(self, a):
        assert GF8.add(a, a) == 0

    @given(elements8, nonzero8)
    def test_div_mul_roundtrip(self, a, b):
        assert GF8.mul(GF8.div(a, b), b) == a

    @given(elements8)
    def test_mul_closed(self, a):
        for b in (0, 1, 2, 255):
            assert 0 <= GF8.mul(a, b) < 256


class TestGF16:
    @settings(max_examples=50)
    @given(st.integers(min_value=1, max_value=65535))
    def test_inverse_gf16(self, a):
        assert GF16.mul(a, GF16.inv(a)) == 1

    def test_large_elements(self):
        assert GF16.mul(40000, 1) == 40000
        assert 0 <= GF16.mul(40000, 50000) < 65536


class TestGF4:
    def test_full_multiplication_table_is_a_group(self):
        seen = set()
        for a in range(1, 16):
            row = {GF4.mul(a, b) for b in range(1, 16)}
            assert row == set(range(1, 16))
            seen.add(frozenset(row))
