"""Tests for GF(2^w) table generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gf.tables import (
    PRIMITIVE_POLYNOMIALS,
    get_tables,
    supported_widths,
)


def test_supported_widths_are_sorted():
    assert supported_widths() == (4, 8, 16)


@pytest.mark.parametrize("w", supported_widths())
def test_exp_table_covers_all_nonzero_elements(w):
    t = get_tables(w)
    first_cycle = t.exp[: t.group_order]
    assert len(set(int(x) for x in first_cycle)) == t.group_order
    assert 0 not in first_cycle


@pytest.mark.parametrize("w", supported_widths())
def test_exp_table_is_doubled_for_modless_lookup(w):
    t = get_tables(w)
    assert len(t.exp) == 2 * t.group_order
    assert np.array_equal(t.exp[: t.group_order], t.exp[t.group_order :])


@pytest.mark.parametrize("w", supported_widths())
def test_log_exp_are_inverse(w):
    t = get_tables(w)
    for a in range(1, min(t.order, 300)):
        assert int(t.exp[int(t.log[a])]) == a


@pytest.mark.parametrize("w", supported_widths())
def test_inverse_table(w):
    t = get_tables(w)
    # Verify a*inv(a) == 1 via log arithmetic for a sample of elements.
    for a in range(1, min(t.order, 300)):
        inv = int(t.inv[a])
        prod = int(t.exp[int(t.log[a]) + int(t.log[inv])])
        assert prod == 1


@pytest.mark.parametrize("w", supported_widths())
def test_generator_is_two(w):
    t = get_tables(w)
    assert int(t.exp[0]) == 1
    assert int(t.exp[1]) == 2


def test_log_zero_is_sentinel():
    t = get_tables(8)
    assert int(t.log[0]) == t.group_order


def test_inv_zero_is_sentinel_zero():
    t = get_tables(8)
    assert int(t.inv[0]) == 0


def test_unsupported_width_raises():
    with pytest.raises(ConfigurationError):
        get_tables(5)


def test_tables_are_cached():
    assert get_tables(8) is get_tables(8)


def test_tables_are_readonly():
    t = get_tables(4)
    with pytest.raises(ValueError):
        t.exp[0] = 5


@pytest.mark.parametrize("w", supported_widths())
def test_dtype_matches_width(w):
    t = get_tables(w)
    expected = np.uint8 if w <= 8 else np.uint16
    assert t.dtype == np.dtype(expected)


def test_primitive_polynomials_match_jerasure():
    assert PRIMITIVE_POLYNOMIALS[4] == 0x13
    assert PRIMITIVE_POLYNOMIALS[8] == 0x11D
    assert PRIMITIVE_POLYNOMIALS[16] == 0x1100B
