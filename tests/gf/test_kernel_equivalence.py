"""Property tests: the batched GF kernels equal the scalar reference.

The batched kernels in :mod:`repro.gf.vector` (packed-lane gathers,
pair tables, split-nibble GF(2^16) tables) are pure optimisations — for
every field width they must reproduce, bit for bit, the double loop
over :meth:`GaloisField.mul` they replaced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.field import GF4, GF8, GF16, gf
from repro.gf.vector import (
    as_field_buffer,
    batch_dot,
    buffer_dtype,
    dot_rows,
    matrix_apply,
)

FIELDS = (GF4, GF8, GF16)


def reference_batch_dot(field, rows, bufs):
    """The scalar double loop the batched kernel replaces."""
    length = len(bufs[0])
    out = np.zeros((len(rows), length), dtype=buffer_dtype(field))
    for i, row in enumerate(rows):
        for c, buf in zip(row, bufs):
            for j in range(length):
                out[i, j] ^= field.mul(int(c), int(buf[j]))
    return out


@st.composite
def batch_case(draw):
    field = draw(st.sampled_from(FIELDS))
    n = draw(st.integers(1, 5))
    r = draw(st.integers(1, 6))
    length = draw(st.integers(1, 17))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    dtype = buffer_dtype(field)
    rows = rng.integers(0, field.order, (r, n), dtype=np.int64)
    # Bias toward the special coefficients the kernel short-circuits.
    for special in (0, 1):
        if draw(st.booleans()):
            rows[
                rng.integers(0, r), rng.integers(0, n)
            ] = special
    bufs = [
        rng.integers(0, field.order, length, dtype=dtype) for _ in range(n)
    ]
    return field, rows, bufs


class TestBatchDotEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(case=batch_case())
    def test_matches_scalar_reference(self, case):
        field, rows, bufs = case
        got = batch_dot(field, rows, bufs)
        want = reference_batch_dot(field, rows, bufs)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)

    @settings(max_examples=30, deadline=None)
    @given(case=batch_case())
    def test_out_buffer_reused(self, case):
        field, rows, bufs = case
        out = np.ones(
            (rows.shape[0], len(bufs[0])), dtype=buffer_dtype(field)
        )
        got = batch_dot(field, rows, bufs, out=out)
        assert got is out
        assert np.array_equal(out, reference_batch_dot(field, rows, bufs))

    @settings(max_examples=30, deadline=None)
    @given(case=batch_case())
    def test_dot_rows_is_first_row(self, case):
        field, rows, bufs = case
        got = dot_rows(field, [int(v) for v in rows[0]], bufs)
        assert np.array_equal(got, reference_batch_dot(field, rows[:1], bufs)[0])

    @settings(max_examples=30, deadline=None)
    @given(case=batch_case())
    def test_matrix_apply_rows(self, case):
        field, rows, bufs = case
        got = matrix_apply(field, rows, bufs)
        want = reference_batch_dot(field, rows, bufs)
        assert len(got) == rows.shape[0]
        for i, g in enumerate(got):
            assert np.array_equal(g, want[i])

    def test_rejects_out_of_field_coefficients(self):
        bufs = [np.zeros(4, dtype=np.uint8)]
        with pytest.raises(FieldError):
            batch_dot(GF8, np.array([[256]]), bufs)

    def test_gf16_wide_values(self):
        """Exercise both nibbles of GF(2^16) operands explicitly."""
        field = gf(16)
        rows = np.array([[0x1234, 0xFF00], [0x00FF, 0x8001]], dtype=np.int64)
        bufs = [
            np.array([0xFFFF, 0x0100, 0x0001, 0xABCD], dtype=np.uint16),
            np.array([0x8000, 0x7FFF, 0x0002, 0x0000], dtype=np.uint16),
        ]
        assert np.array_equal(
            batch_dot(field, rows, bufs), reference_batch_dot(field, rows, bufs)
        )


class TestAsFieldBufferViews:
    def test_bytes_default_is_readonly_view(self):
        raw = b"\x01\x02\x03\x04"
        buf = as_field_buffer(GF8, raw)
        assert not buf.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            buf[0] = 9

    def test_bytes_copy_flag_gives_writable(self):
        buf = as_field_buffer(GF8, b"\x01\x02", copy=True)
        assert buf.flags.writeable
        buf[0] = 7
        assert buf[0] == 7

    def test_ndarray_default_zero_copy(self):
        arr = np.arange(8, dtype=np.uint8)
        buf = as_field_buffer(GF8, arr)
        assert np.shares_memory(arr, buf)

    def test_ndarray_copy_flag_detaches(self):
        arr = np.arange(8, dtype=np.uint8)
        buf = as_field_buffer(GF8, arr, copy=True)
        assert not np.shares_memory(arr, buf)
        buf[0] = 99
        assert arr[0] == 0
