"""Tests for polynomials over GF(2^w)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DivisionByZeroError, FieldError
from repro.gf.field import GF8
from repro.gf.polynomial import Polynomial

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=255), min_size=0, max_size=8
)


def poly(*coeffs):
    return Polynomial(GF8, coeffs)


class TestConstruction:
    def test_normalisation_strips_trailing_zeros(self):
        assert poly(1, 2, 0, 0).coeffs == (1, 2)

    def test_zero(self):
        z = Polynomial.zero(GF8)
        assert z.is_zero() and z.degree == -1

    def test_one(self):
        assert Polynomial.one(GF8).evaluate(123) == 1

    def test_monomial(self):
        m = Polynomial.monomial(GF8, 3, coeff=5)
        assert m.degree == 3
        assert m.evaluate(1) == 5

    def test_monomial_negative_degree(self):
        with pytest.raises(FieldError):
            Polynomial.monomial(GF8, -1)

    def test_repr(self):
        assert "x^1" in repr(poly(0, 3))
        assert repr(Polynomial.zero(GF8)).endswith("0)")


class TestArithmetic:
    @given(coeff_lists, coeff_lists)
    def test_add_commutative(self, a, b):
        pa, pb = Polynomial(GF8, a), Polynomial(GF8, b)
        assert pa + pb == pb + pa

    @given(coeff_lists)
    def test_add_self_is_zero(self, a):
        pa = Polynomial(GF8, a)
        assert (pa + pa).is_zero()

    @given(coeff_lists, coeff_lists)
    def test_mul_commutative(self, a, b):
        pa, pb = Polynomial(GF8, a), Polynomial(GF8, b)
        assert pa * pb == pb * pa

    @given(coeff_lists, coeff_lists, st.integers(0, 255))
    def test_mul_evaluation_homomorphism(self, a, b, x):
        pa, pb = Polynomial(GF8, a), Polynomial(GF8, b)
        assert (pa * pb).evaluate(x) == GF8.mul(pa.evaluate(x), pb.evaluate(x))

    def test_mul_degrees_add(self):
        assert (poly(0, 1) * poly(0, 0, 1)).degree == 3

    def test_scale(self):
        assert poly(1, 1).scale(7).evaluate(0) == 7

    def test_cross_field_rejected(self):
        from repro.gf.field import GF4
        with pytest.raises(FieldError):
            poly(1) + Polynomial(GF4, [1])


class TestDivision:
    @given(coeff_lists, st.lists(st.integers(0, 255), min_size=1, max_size=5))
    def test_divmod_invariant(self, a, b):
        pa = Polynomial(GF8, a)
        pb = Polynomial(GF8, b)
        if pb.is_zero():
            return
        q, r = pa.divmod(pb)
        assert q * pb + r == pa
        assert r.degree < pb.degree or r.is_zero()

    def test_division_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            poly(1, 2).divmod(Polynomial.zero(GF8))

    def test_floordiv_mod_operators(self):
        a, b = poly(1, 0, 1), poly(1, 1)
        assert (a // b) * b + (a % b) == a


class TestEvaluation:
    def test_horner_matches_naive(self):
        p = poly(3, 1, 4, 1, 5)
        x = 97
        naive = 0
        for i, c in enumerate(p.coeffs):
            naive ^= GF8.mul(c, GF8.pow(x, i))
        assert p.evaluate(x) == naive

    def test_evaluate_many(self):
        p = poly(1, 1)
        assert p.evaluate_many([0, 1, 2]) == [1, 0, 3]

    def test_evaluate_rejects_out_of_field(self):
        with pytest.raises(FieldError):
            poly(1).evaluate(256)


class TestInterpolation:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=6, unique=True),
           st.integers(0, 1000))
    def test_interpolation_reproduces_points(self, xs, seed):
        import random
        rng = random.Random(seed)
        points = [(x, rng.randrange(256)) for x in xs]
        p = Polynomial.interpolate(GF8, points)
        for x, y in points:
            assert p.evaluate(x) == y
        assert p.degree < len(points)

    def test_duplicate_x_rejected(self):
        with pytest.raises(FieldError):
            Polynomial.interpolate(GF8, [(1, 2), (1, 3)])


class TestDerivative:
    def test_even_terms_vanish(self):
        p = poly(7, 5, 3, 2)  # 7 + 5x + 3x^2 + 2x^3
        d = p.derivative()
        assert d.coeffs == (5, 0, 2)

    def test_constant_derivative_is_zero(self):
        assert poly(9).derivative().is_zero()
