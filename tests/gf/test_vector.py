"""Tests for vectorised GF buffer kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import FieldError
from repro.gf.field import GF8, GF16
from repro.gf.vector import (
    as_field_buffer,
    axpy,
    buffer_dtype,
    dot_rows,
    matrix_apply,
    mul_scalar,
    scale_inplace,
    xor_into,
)

buf8 = arrays(np.uint8, st.integers(min_value=1, max_value=64),
              elements=st.integers(min_value=0, max_value=255))
coeff8 = st.integers(min_value=0, max_value=255)


def test_buffer_dtype():
    assert buffer_dtype(GF8) == np.uint8
    assert buffer_dtype(GF16) == np.uint16


class TestAsFieldBuffer:
    def test_bytes_roundtrip(self):
        buf = as_field_buffer(GF8, b"\x01\x02\x03")
        assert buf.tolist() == [1, 2, 3]

    def test_gf16_pairs_bytes(self):
        buf = as_field_buffer(GF16, b"\x01\x02\x03\x04")
        assert buf.dtype == np.uint16
        assert len(buf) == 2

    def test_gf16_odd_length_rejected(self):
        with pytest.raises(FieldError):
            as_field_buffer(GF16, b"\x01\x02\x03")

    def test_ndarray_wrong_dtype_rejected(self):
        with pytest.raises(FieldError):
            as_field_buffer(GF8, np.zeros(4, dtype=np.uint16))

    def test_ndarray_passthrough_flattens(self):
        arr = np.arange(6, dtype=np.uint8).reshape(2, 3)
        assert as_field_buffer(GF8, arr).shape == (6,)


class TestMulScalar:
    @given(buf8, coeff8)
    def test_matches_scalar_mul(self, buf, c):
        out = mul_scalar(GF8, c, buf)
        for x, y in zip(buf.tolist(), out.tolist()):
            assert y == GF8.mul(c, x)

    def test_zero_gives_zeros(self):
        buf = np.array([1, 2, 3], dtype=np.uint8)
        assert not mul_scalar(GF8, 0, buf).any()

    def test_one_copies(self):
        buf = np.array([1, 2, 3], dtype=np.uint8)
        out = mul_scalar(GF8, 1, buf)
        assert np.array_equal(out, buf)
        assert out is not buf

    def test_input_not_mutated(self):
        buf = np.array([9, 9], dtype=np.uint8)
        mul_scalar(GF8, 7, buf)
        assert buf.tolist() == [9, 9]


class TestScaleInplace:
    @given(buf8, coeff8)
    def test_matches_mul_scalar(self, buf, c):
        expected = mul_scalar(GF8, c, buf)
        work = buf.copy()
        scale_inplace(GF8, c, work)
        assert np.array_equal(work, expected)


class TestAxpy:
    @given(buf8, coeff8)
    def test_matches_definition(self, x, c):
        y = np.zeros_like(x)
        axpy(GF8, c, x, y)
        assert np.array_equal(y, mul_scalar(GF8, c, x))

    def test_zero_coeff_noop(self):
        x = np.array([5], dtype=np.uint8)
        y = np.array([7], dtype=np.uint8)
        axpy(GF8, 0, x, y)
        assert y.tolist() == [7]

    def test_one_coeff_is_xor(self):
        x = np.array([0b1100], dtype=np.uint8)
        y = np.array([0b1010], dtype=np.uint8)
        axpy(GF8, 1, x, y)
        assert y.tolist() == [0b0110]


class TestXorInto:
    def test_basic(self):
        dst = np.array([1, 2], dtype=np.uint8)
        xor_into(dst, np.array([3, 2], dtype=np.uint8))
        assert dst.tolist() == [2, 0]


class TestDotRows:
    def test_single_term(self):
        buf = np.array([2, 4], dtype=np.uint8)
        out = dot_rows(GF8, [3], [buf])
        assert np.array_equal(out, mul_scalar(GF8, 3, buf))

    @given(st.lists(coeff8, min_size=1, max_size=5), st.integers(0, 1000))
    def test_linear_in_each_argument(self, coeffs, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in coeffs]
        out = dot_rows(GF8, coeffs, bufs)
        expected = np.zeros(16, dtype=np.uint8)
        for c, b in zip(coeffs, bufs):
            expected ^= mul_scalar(GF8, c, b)
        assert np.array_equal(out, expected)

    def test_length_mismatch(self):
        with pytest.raises(FieldError):
            dot_rows(GF8, [1, 2], [np.zeros(2, dtype=np.uint8)])

    def test_empty_rejected(self):
        with pytest.raises(FieldError):
            dot_rows(GF8, [], [])

    def test_grouping_invariance(self):
        """Associativity of the combination — the partial-decode property."""
        rng = np.random.default_rng(1)
        coeffs = [5, 9, 200, 77]
        bufs = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in coeffs]
        whole = dot_rows(GF8, coeffs, bufs)
        left = dot_rows(GF8, coeffs[:2], bufs[:2])
        right = dot_rows(GF8, coeffs[2:], bufs[2:])
        assert np.array_equal(whole, left ^ right)


class TestMatrixApply:
    def test_identity(self):
        rng = np.random.default_rng(2)
        bufs = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(3)]
        eye = np.eye(3, dtype=np.uint8)
        out = matrix_apply(GF8, eye, bufs)
        for a, b in zip(out, bufs):
            assert np.array_equal(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(FieldError):
            matrix_apply(GF8, np.zeros((2, 3), dtype=np.uint8),
                         [np.zeros(4, dtype=np.uint8)] * 2)
