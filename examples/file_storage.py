#!/usr/bin/env python3
"""A client's view: files on an erasure-coded, rack-aware cluster.

Stores real files in a :class:`FileStore` (GFS/HDFS-style striping over
a (6, 3) RS code), then walks the failure lifecycle a storage operator
sees:

1. normal reads;
2. a node dies — reads keep working (degraded reads rebuild the lost
   chunks on the fly via CAR's minimum-rack partial decoding);
3. background recovery repairs the node with CAR, byte-verified;
4. a scrubbing pass proves the cluster is healthy again.

Run: ``python examples/file_storage.py``
"""

import hashlib

from repro.cluster import ClusterTopology, FileStore, Scrubber
from repro.cluster.failure import FailureInjector
from repro.erasure import RSCode
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery, traffic_report


def digest(b: bytes) -> str:
    return hashlib.sha256(b).hexdigest()[:12]


def main() -> None:
    topology = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    store = FileStore(topology, RSCode(6, 3), chunk_size=4096, rng=42)

    # 1. Write a few files and read them back.
    files = {
        "logs/app.log": b"2016-06-28 12:00:01 INFO recovery started\n" * 700,
        "data/users.db": bytes(range(256)) * 150,
        "img/logo.png": b"\x89PNG fake image payload " * 512,
    }
    for name, payload in files.items():
        info = store.write(name, payload)
        print(
            f"wrote {name}: {info.size} B in {info.stripes} stripe(s), "
            f"sha {digest(payload)}"
        )
    for name, payload in files.items():
        assert store.read(name) == payload
    print("normal reads OK\n")

    # 2. A node dies; clients keep reading.
    state = store.cluster_state()
    event = FailureInjector(rng=9).fail_random_node(state)
    print(
        f"node {topology.node(event.failed_node).name} failed "
        f"({event.num_stripes} stripes affected)"
    )
    for name, payload in files.items():
        got = store.read_degraded(name, event.failed_node)
        assert got == payload
        print(f"  degraded read {name}: sha {digest(got)} (intact)")

    # 3. Background recovery with CAR, on the store's own state.
    solution = CarStrategy().solve(state)
    plan = plan_recovery(state, event, solution)
    result = PlanExecutor(state).execute(plan, solution)
    report = traffic_report(solution, store.chunk_size, "CAR")
    print(
        f"\nrecovery: byte-exact={result.verified}; "
        f"{report.total_chunks} chunk(s) crossed the core "
        f"(lambda {report.lambda_rate:.3f})"
    )

    # 4. Scrub to prove health.
    state.heal()
    scrub = Scrubber(state).scrub()
    print(
        f"scrub: {scrub.clean_stripes}/{scrub.stripes_checked} stripes "
        f"clean, {scrub.corrupt_stripes} corruption(s)"
    )


if __name__ == "__main__":
    main()
