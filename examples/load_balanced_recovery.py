#!/usr/bin/env python3
"""Multi-stripe load balancing: watching Algorithm 2 converge.

The intro's motivating scenario: a node dies in a production CFS and a
hundred stripes must be repaired at once.  Per-stripe optimal choices
can pile traffic onto one rack; this example shows Algorithm 2
re-balancing the per-stripe solutions and prints the per-rack traffic
histogram and λ before/after, plus the λ trajectory (Figure 8's view).

Run: ``python examples/load_balanced_recovery.py``
"""

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.recovery import (
    CarSelector,
    GreedyLoadBalancer,
    MultiStripeSolution,
)

NUM_STRIPES = 100


def bar(amount: int, scale: float = 1.0) -> str:
    return "#" * int(amount * scale)


def main() -> None:
    code = RSCode(k=10, m=4)  # Facebook HDFS-RAID's code (CFS3)
    topology = ClusterTopology.from_rack_sizes([6, 4, 5, 3, 2])
    placement = RandomPlacementPolicy(rng=99).place(
        topology, NUM_STRIPES, code.k, code.m
    )
    state = ClusterState(topology, code, placement)
    event = FailureInjector(rng=99).fail_random_node(state)
    print(
        f"failed node {topology.node(event.failed_node).name}; "
        f"{event.num_stripes} stripes to repair\n"
    )

    # Build the initial (per-stripe minimal, unbalanced) solution.
    selector = CarSelector(topology, code.k)
    views = {v.stripe_id: v for v in state.views()}
    initial = MultiStripeSolution(
        [selector.initial_solution(v) for v in views.values()],
        num_racks=topology.num_racks,
        aggregated=True,
    )

    # Run Algorithm 2 and keep the iteration trace.
    balancer = GreedyLoadBalancer(iterations=50)
    balanced, trace = balancer.balance(views, initial, selector)

    print("per-rack cross-rack traffic (chunks shipped during repair):")
    print(f"{'rack':>6}  {'before':>7}  {'after':>6}")
    before, after = initial.traffic_by_rack(), balanced.traffic_by_rack()
    for rack in topology.racks:
        marker = " (failed rack)" if rack.rack_id == event.failed_rack else ""
        print(
            f"{rack.name:>6}  {before[rack.rack_id]:>7}  "
            f"{after[rack.rack_id]:>6}  {bar(after[rack.rack_id], 0.5)}{marker}"
        )

    print(
        f"\ntotal cross-rack traffic unchanged: "
        f"{initial.total_cross_rack_traffic()} chunks -> "
        f"{balanced.total_cross_rack_traffic()} chunks"
    )
    print(
        f"load balancing rate: {trace.initial_lambda:.3f} -> "
        f"{trace.final_lambda:.3f} after {trace.substitutions} substitutions"
    )
    print("\nlambda per iteration:")
    for i, lam in enumerate(trace.lambdas):
        print(f"  iter {i:>2}: {lam:.3f} {bar(int((lam - 1) * 100), 1.0)}")


if __name__ == "__main__":
    main()
