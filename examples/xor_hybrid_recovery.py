#!/usr/bin/env python3
"""Related work: hybrid single-failure recovery for XOR array codes.

Section II of the paper contrasts CAR with the earlier line of work
that minimises *disk I/O within a stripe* for XOR-based array codes
(Xiang et al. for RDP, Khan et al.'s enumeration, Zhu et al.'s greedy).
This example reproduces that trade-off on RDP and X-Code:

- conventional recovery (all row parity) vs the enumerated optimum vs
  the greedy heuristic, in symbols read;
- a byte-exact check that every hybrid choice really rebuilds the disk.

It then makes the paper's point: minimising symbols *read* is not the
same as minimising *cross-rack traffic* — the objective CAR targets.

Run: ``python examples/xor_hybrid_recovery.py``
"""

import numpy as np

from repro.erasure.xorcodes import (
    RDPCode,
    XCode,
    conventional_reads,
    enumerate_optimal,
    greedy_hybrid,
)


def demo(code, label: str, failed_disk: int = 0) -> None:
    rng = np.random.default_rng(42)
    data = [
        rng.integers(0, 256, 1024, dtype=np.uint8)
        for _ in range(len(code.data_symbols()))
    ]
    stripe = code.make_stripe(data)
    assert code.verify_stripe(stripe)

    conv = conventional_reads(code, failed_disk)
    opt = enumerate_optimal(code, failed_disk)
    gre = greedy_hybrid(code, failed_disk)

    print(f"{label}: recovering disk {failed_disk}")
    print(f"  conventional reads : {conv.read_count} symbols")
    print(
        f"  enumerated optimum : {opt.read_count} symbols "
        f"({1 - opt.read_count / conv.read_count:.0%} fewer I/Os)"
    )
    print(f"  greedy heuristic   : {gre.read_count} symbols")

    # Byte-exact verification of the optimal hybrid choice.
    broken = stripe.copy()
    broken[:, failed_disk, :] = 0
    fixed, reads = code.recover_disk(broken, failed_disk, choice=opt.choice)
    assert np.array_equal(fixed, stripe)
    assert reads == set(opt.reads)
    print("  byte-exact recovery with the optimal choice: OK\n")


def main() -> None:
    demo(RDPCode(p=7), "RDP (p=7, RAID-6)")
    demo(XCode(p=7), "X-Code (p=7, RAID-6)")
    print(
        "note: these schemes minimise symbols READ inside a stripe; in a\n"
        "multi-rack CFS the scarce resource is cross-rack bandwidth, which\n"
        "is what CAR minimises instead (see examples/quickstart.py)."
    )


if __name__ == "__main__":
    main()
