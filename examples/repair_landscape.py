#!/usr/bin/env python3
"""The repair-traffic design space: CAR among its alternatives.

The paper keeps the storage-optimal RS code and optimises *where* the
repair traffic flows; the related work changes the code itself (LRC
locality, MSR regeneration).  This example computes the whole landscape
for CFS2's parameters, runs every scheme's actual repair on real bytes
to prove the numbers, and prints the Dimakis cut-set trade-off curve
between the MSR and MBR corners.

Run: ``python examples/repair_landscape.py``
"""

import numpy as np

from repro.analysis import msr_point, repair_landscape, tradeoff_curve
from repro.erasure import LRCCode, RSCode
from repro.erasure.regenerating import PMMSRCode
from repro.experiments.configs import CFS2
from repro.experiments.plots import line_chart


def prove_msr_repair() -> str:
    """Execute one actual PM-MSR repair and count what moved."""
    code = PMMSRCode(n=12, k=6)
    rng = np.random.default_rng(0)
    packets = [
        rng.integers(0, 256, 512, dtype=np.uint8) for _ in range(code.B)
    ]
    contents = code.encode(packets)
    failed = 3
    helpers = [i for i in range(code.n) if i != failed][: code.d]
    symbols = {h: code.repair_symbol(h, failed, contents[h]) for h in helpers}
    rebuilt = code.repair(failed, symbols)
    assert all(
        np.array_equal(a, b) for a, b in zip(rebuilt, contents[failed])
    )
    downloaded = sum(s.nbytes for s in symbols.values())
    stored = sum(p.nbytes for p in contents[failed])
    return (
        f"PM-MSR(n=12, k=6): repaired a {stored}-byte node by downloading "
        f"{downloaded} bytes from d={code.d} helpers "
        f"({downloaded / stored:.1f}x, vs {code.k:.0f}x for RS)"
    )


def prove_lrc_repair() -> str:
    """Execute one actual LRC local repair."""
    code = LRCCode(k=6, l=2, g=2)
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, 512, dtype=np.uint8) for _ in range(6)]
    stripe = code.encode_stripe(data)
    helpers = code.minimal_repair_helpers(0)
    rebuilt = code.reconstruct(0, {i: stripe[i] for i in helpers})
    assert np.array_equal(rebuilt, stripe[0])
    return (
        f"LRC(6, 2, 2): repaired one chunk from {len(helpers)} group mates "
        f"instead of k = {code.k} (at {code.storage_overhead():.2f}x storage)"
    )


def main() -> None:
    print("repair cost per lost chunk, CFS2 parameters (k=6, m=3):\n")
    rows = repair_landscape(CFS2, runs=5, num_stripes=50)
    print(f"{'scheme':<26} {'total':>6} {'cross-rack':>11} {'storage':>8}")
    for r in rows:
        cross = "-" if r.cross_rack_chunks is None else f"{r.cross_rack_chunks:.2f}"
        print(
            f"{r.scheme:<26} {r.total_chunks:>6.2f} {cross:>11} "
            f"{r.storage_overhead:>7.2f}x"
        )

    print()
    print(prove_msr_repair())
    print(prove_lrc_repair())

    # The cut-set trade-off for CFS2's k with d = n - 1.
    k, n = CFS2.k, CFS2.k + CFS2.m
    curve = tradeoff_curve(float(k), n=n, k=k, d=n - 1, points=8)
    msr = msr_point(float(k), n=n, k=k, d=n - 1)
    print(
        f"\ncut-set trade-off (B={k}, k={k}, d={n - 1}); "
        f"MSR repairs at {msr.gamma:.2f} chunk-equivalents:"
    )
    print(
        line_chart(
            "gamma (repair download) vs alpha (per-node storage)",
            {"optimal curve": [(p.alpha, p.gamma) for p in curve]},
            height=8,
            width=40,
        )
    )


if __name__ == "__main__":
    main()
