#!/usr/bin/env python3
"""Degraded read: serving a client read of a lost chunk via CAR.

A MapReduce-style task (the Li et al. DSN'14 scenario the paper cites)
asks for a chunk whose node just died.  Instead of waiting for full
node recovery, we serve the single stripe on demand:

1. find the minimum-rack recovery solution for just that stripe
   (Theorem 1);
2. split the repair vector by rack and let each rack's delegate
   partially decode (Equation 7);
3. XOR the per-rack partials and hand the bytes to the client —
   shipping only ``d_j`` chunk-sized messages across the core instead
   of ``k``.

Run: ``python examples/degraded_read.py``
"""

import numpy as np

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import (
    RSCode,
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.recovery import CarSelector


def main() -> None:
    code = RSCode(k=8, m=6)  # the paper's running (8, 6) example
    topology = ClusterTopology.from_rack_sizes([4, 4, 4, 4, 4])
    placement = RandomPlacementPolicy(rng=5).place(topology, 30, code.k, code.m)
    data = DataStore(code, 30, chunk_size=32 * 1024, seed=5)
    state = ClusterState(topology, code, placement, data)

    event = FailureInjector(rng=5).fail_random_node(state)
    stripe_id = event.stripes[0]
    view = state.stripe_view(stripe_id)
    print(
        f"client read hits stripe {stripe_id}, chunk {view.lost_chunk} "
        f"on failed node {topology.node(event.failed_node).name}"
    )

    # 1. Minimum-rack solution for this one stripe.
    selector = CarSelector(topology, code.k)
    solution = selector.initial_solution(view)
    racks = [topology.rack(r).name for r in solution.intact_racks_accessed]
    print(
        f"Theorem 1: read from {len(racks)} intact rack(s) {racks} "
        f"plus {len(solution.chunks_from_rack(view.failed_rack))} local chunk(s) "
        f"in the failed rack"
    )

    # 2. Per-rack partial decoding.
    plan = split_repair_vector(
        code, solution.lost_chunk, solution.helpers, solution.rack_map()
    )
    chunks = {c: data.chunk(stripe_id, c) for c in solution.helpers}
    partials = execute_partial_decode(code, plan, chunks)
    for group in plan.groups:
        print(
            f"  rack {topology.rack(group.group_key).name} aggregates "
            f"{group.size} chunk(s) -> 1 partially decoded chunk"
        )

    # 3. Combine and serve.
    rebuilt = combine_partials(code, partials)
    assert np.array_equal(rebuilt, data.chunk(stripe_id, view.lost_chunk))
    cross = solution.num_intact_racks
    print(
        f"served {rebuilt.nbytes // 1024} KiB to the client; "
        f"{cross} chunk(s) crossed the core instead of k = {code.k} "
        f"({1 - cross / code.k:.0%} less cross-rack traffic)"
    )


if __name__ == "__main__":
    main()
