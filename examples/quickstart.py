#!/usr/bin/env python3
"""Quickstart: recover a failed node with CAR and compare against RR.

Walks the full public API in ~60 lines:

1. build a CFS topology (racks of nodes, GbE with a shared uplink);
2. erasure-code 50 stripes with a (6, 3) Reed-Solomon code and place
   them rack-fault-tolerantly;
3. fail a random node;
4. solve the recovery with CAR (minimum racks + partial decoding +
   load balancing) and with the paper's RR baseline;
5. execute CAR's plan on real bytes and verify every reconstructed
   chunk, then compare cross-rack traffic and simulated recovery time.

Run: ``python examples/quickstart.py``
"""

from repro import (
    ClusterState,
    ClusterTopology,
    CarStrategy,
    DataStore,
    FailureInjector,
    PlanExecutor,
    RandomPlacementPolicy,
    RandomRecoveryStrategy,
    RecoverySimulator,
    RSCode,
    plan_recovery,
    reduction_ratio,
    traffic_report,
)

MB = 1 << 20
CHUNK_SIZE = 4 * MB


def main() -> None:
    # 1. A CFS with four racks (4/3/3/3 nodes) — the paper's CFS2 layout.
    topology = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    code = RSCode(k=6, m=3)  # Google Colossus' code

    # 2. Place 50 stripes at random while keeping at most m = 3 chunks
    #    of any stripe in one rack (single-rack fault tolerance).
    placement = RandomPlacementPolicy(rng=2016).place(topology, 50, code.k, code.m)
    data = DataStore(code, 50, chunk_size=64 * 1024, seed=2016)
    state = ClusterState(topology, code, placement, data)

    # 3. Fail a random node, as the paper's methodology does.
    event = FailureInjector(rng=7).fail_random_node(state)
    failed = topology.node(event.failed_node)
    print(f"failed node: {failed.name} -> {event.num_stripes} stripes to repair")

    # 4. Solve with CAR and with the RR baseline.
    car_solution = CarStrategy(load_balance=True).solve(state)
    rr_solution = RandomRecoveryStrategy(rng=7).solve(state)

    # 5a. Execute CAR's plan on the stored bytes and verify.
    plan = plan_recovery(state, event, car_solution)
    result = PlanExecutor(state).execute(plan, car_solution)
    print(f"byte-exact reconstruction of all stripes: {result.verified}")

    # 5b. Compare cross-rack repair traffic (Figure 7's metric).
    car_report = traffic_report(car_solution, CHUNK_SIZE, "CAR")
    rr_report = traffic_report(rr_solution, CHUNK_SIZE, "RR")
    print(
        f"cross-rack traffic: CAR {car_report.total_bytes / MB:.0f} MB "
        f"vs RR {rr_report.total_bytes / MB:.0f} MB "
        f"({reduction_ratio(rr_report, car_report):.1%} saved)"
    )
    print(
        f"load balancing rate: CAR {car_report.lambda_rate:.3f} "
        f"vs RR {rr_report.lambda_rate:.3f}"
    )

    # 5c. Compare simulated recovery time (Figure 9's metric).
    simulator = RecoverySimulator(state)
    car_time = simulator.simulate(plan, CHUNK_SIZE)
    rr_time = simulator.simulate(
        plan_recovery(state, event, rr_solution), CHUNK_SIZE
    )
    print(
        f"recovery time/chunk: CAR {car_time.time_per_chunk:.3f}s "
        f"vs RR {rr_time.time_per_chunk:.3f}s "
        f"({1 - car_time.time_per_chunk / rr_time.time_per_chunk:.1%} saved)"
    )


if __name__ == "__main__":
    main()
