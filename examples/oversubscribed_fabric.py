#!/usr/bin/env python3
"""Bandwidth diversity: how core over-subscription changes the picture.

The paper's premise is that cross-rack bandwidth is the scarce resource
in a CFS.  This example sweeps the rack-uplink over-subscription factor
and simulates full-node recovery under CAR and RR over the fluid
network model with Table III's heterogeneous hardware, printing the
recovery time per chunk and the widening gap — plus the Figure 10-style
transmission/computation breakdown at one operating point.

Run: ``python examples/oversubscribed_fabric.py``
"""

from repro.cluster import (
    BandwidthProfile,
    ClusterState,
    ClusterTopology,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.recovery import CarStrategy, RandomRecoveryStrategy, plan_recovery
from repro.sim import HardwareModel, RecoverySimulator, StripeSerialTimingModel

MB = 1 << 20
CHUNK = 4 * MB
STRIPES = 40


def build(oversubscription: float):
    bandwidth = BandwidthProfile(
        node_nic_gbps=1.0, rack_uplink_gbps=1.0 / oversubscription
    )
    topology = ClusterTopology.from_rack_sizes([4, 3, 3, 3], bandwidth=bandwidth)
    code = RSCode(k=6, m=3)
    placement = RandomPlacementPolicy(rng=11).place(topology, STRIPES, code.k, code.m)
    state = ClusterState(topology, code, placement)
    event = FailureInjector(rng=11).fail_random_node(state)
    return state, event


def main() -> None:
    print(f"{'oversub':>8}  {'CAR s/chunk':>11}  {'RR s/chunk':>10}  {'saving':>7}")
    for factor in (1, 2, 4, 8):
        state, event = build(factor)
        simulator = RecoverySimulator(state, hardware=HardwareModel(state.topology))
        times = {}
        for strategy in (CarStrategy(), RandomRecoveryStrategy(rng=11)):
            solution = strategy.solve(state)
            plan = plan_recovery(state, event, solution)
            times[strategy.name] = simulator.simulate(plan, CHUNK).time_per_chunk
        saving = 1 - times["CAR"] / times["RR"]
        print(
            f"{factor:>6}:1  {times['CAR']:>11.3f}  {times['RR']:>10.3f}  "
            f"{saving:>6.1%}"
        )

    # Breakdown at 4:1 oversubscription (Figure 10's style).
    state, event = build(4)
    model = StripeSerialTimingModel(state)
    print("\ntransmission vs computation breakdown (4:1 oversubscription):")
    for strategy in (CarStrategy(), RandomRecoveryStrategy(rng=11)):
        solution = strategy.solve(state)
        plan = plan_recovery(state, event, solution)
        timing = model.evaluate(plan, CHUNK)
        print(
            f"  {strategy.name:>4}: transmission {timing.transmission_ratio:.1%}, "
            f"computation {timing.computation_ratio:.1%}"
        )


if __name__ == "__main__":
    main()
