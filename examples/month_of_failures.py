#!/usr/bin/env python3
"""Operational view: ninety days of failures on one cluster.

Generates a synthetic per-node failure trace (exponential MTBF, the
memoryless model of Ford et al.'s availability study) and replays it
with three repair policies:

- RR       — the paper's baseline;
- CAR      — per-event minimum traffic + per-event balancing;
- CAR-history — the extension: Algorithm 2 balancing against the
  *cumulative* per-rack traffic, so the repair burden also evens out
  across the quarter, not just within each event.

Run: ``python examples/month_of_failures.py``
"""

from repro.experiments.configs import CFS2, build_state
from repro.recovery import CarStrategy, RandomRecoveryStrategy
from repro.workloads import FailureTraceGenerator, LongRunSimulator

HORIZON_DAYS = 90
MTBF_HOURS = 1500  # aggressive, to get a rich trace on 13 nodes


def main() -> None:
    trace = FailureTraceGenerator(
        num_nodes=CFS2.num_nodes, mtbf_hours=MTBF_HOURS, seed=21
    ).generate(horizon_hours=24 * HORIZON_DAYS)
    print(
        f"{HORIZON_DAYS}-day trace on {CFS2.num_nodes} nodes: "
        f"{len(trace)} failures, one every "
        f"{trace.mean_interarrival_hours():.0f} h on average\n"
    )

    factories = {
        "RR": lambda hist: RandomRecoveryStrategy(rng=33),
        "CAR": lambda hist: CarStrategy(),
        "CAR-history": lambda hist: CarStrategy(baseline_traffic=list(hist)),
    }
    print(
        f"{'policy':>12}  {'cross-rack':>10}  {'repair time':>11}  "
        f"{'event λ':>8}  {'long-run λ':>10}"
    )
    reports = {}
    for name, factory in factories.items():
        simulator = LongRunSimulator(
            lambda: build_state(CFS2, seed=8, num_stripes=100),
            factory,
            chunk_size=4 << 20,
        )
        rep = simulator.replay(trace)
        reports[name] = rep
        print(
            f"{name:>12}  {rep.total_cross_rack_bytes / 2**30:>7.1f} GiB"
            f"  {rep.total_repair_hours * 60:>9.1f} min"
            f"  {rep.mean_lambda:>8.3f}  {rep.long_run_lambda():>10.3f}"
        )

    print("\ncumulative cross-rack chunks sourced per rack (CAR vs CAR-history):")
    car, hist = reports["CAR"], reports["CAR-history"]
    for rack, (a, b) in enumerate(zip(car.per_rack_chunks, hist.per_rack_chunks)):
        print(f"  A{rack + 1}: {a:>5} vs {b:>5}")
    print(
        "\ntakeaway: per-event balancing does not imply long-run balance;\n"
        "feeding Algorithm 2 the cumulative per-rack history fixes that\n"
        "at zero extra traffic."
    )


if __name__ == "__main__":
    main()
