#!/usr/bin/env python3
"""Gate benchmark runs against the committed baselines.

Usage::

    PYTHONPATH=src python tools/bench_compare.py BENCH_kernels.json fresh.json
    PYTHONPATH=src python tools/bench_compare.py BENCH_stream.json fresh.json \
        --tolerance 0.5
    PYTHONPATH=src python tools/bench_compare.py BENCH_kernels.json fresh.json \
        --history BENCH_HISTORY.jsonl --timestamp 2026-08-08 --label kernels

Compares a fresh pytest-benchmark artifact against a committed
``BENCH_*.json`` baseline with :mod:`repro.obs.regress` — direction-
aware per metric (wall time and bytes regress upward, throughput and
speedups downward), one-sided benches reported but never fatal (smoke
runs execute subsets).  Exits:

- 0 — nothing regressed beyond tolerance;
- 1 — at least one regression (the table names each one);
- 2 — usage or unreadable/malformed artifact.

``--history`` appends the *fresh* run to the committed
``BENCH_HISTORY.jsonl`` trajectory (one JSON line per suite per
recording; ``--timestamp`` keeps the entry reproducible).  History is
appended regardless of verdict — a regression that ships is still part
of the trajectory.  The CI ``bench-regress`` job runs this with a
generous tolerance, since runner hardware differs from the machine the
baselines were recorded on.
"""

from __future__ import annotations

import argparse
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_compare.py",
        description=(
            "Diff a fresh pytest-benchmark JSON artifact against a "
            "committed baseline; exit 1 on regression."
        ),
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("fresh", help="freshly recorded benchmark artifact")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "allowed fractional drift per metric before it counts as a "
            "regression (default 0.25; CI uses a larger value because "
            "runner hardware varies)"
        ),
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="append the fresh run to this BENCH_HISTORY.jsonl trajectory",
    )
    parser.add_argument(
        "--timestamp",
        default=None,
        help=(
            "ISO date recorded in the history entry (required with "
            "--history; explicit so entries are reproducible)"
        ),
    )
    parser.add_argument(
        "--label",
        default=None,
        help="suite label for the history entry (default: fresh file stem)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs.regress import (
        append_history,
        compare,
        history_entry,
        load_bench,
        render_comparison,
    )

    if args.history is not None and args.timestamp is None:
        print("bench_compare.py: --history requires --timestamp",
              file=sys.stderr)
        return 2
    try:
        baseline = load_bench(args.baseline)
        fresh = load_bench(args.fresh)
    except (OSError, ValueError) as exc:
        print(f"bench_compare.py: {exc}", file=sys.stderr)
        return 2
    try:
        report = compare(baseline, fresh, tolerance=args.tolerance)
    except ValueError as exc:
        print(f"bench_compare.py: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(report))
    if args.history is not None:
        entry = history_entry(fresh, args.timestamp, label=args.label)
        path = append_history(args.history, entry)
        print(f"appended {entry['suite']} @ {entry['timestamp']} to {path}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
