#!/usr/bin/env python3
"""Validate a telemetry trace JSONL file against the event schema.

Usage::

    PYTHONPATH=src python tools/validate_trace.py out/CFS1/trace.jsonl

Exits 0 and prints a one-line summary when every record is a
well-formed span/event; exits 1 with the offending record otherwise.
Used by the CI telemetry smoke job.
"""

from __future__ import annotations

import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: validate_trace.py <trace.jsonl>", file=sys.stderr)
        return 2
    from repro.obs import read_jsonl, validate_events

    path = Path(args[0])
    events = read_jsonl(path)
    try:
        count = validate_events(events)
    except ValueError as exc:
        print(f"{path}: INVALID — {exc}", file=sys.stderr)
        return 1
    spans = sum(1 for e in events if e["type"] == "span")
    print(f"{path}: OK — {count} records ({spans} spans, "
          f"{count - spans} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
