#!/usr/bin/env python3
"""Validate a telemetry trace against its schema.

Usage::

    PYTHONPATH=src python tools/validate_trace.py out/CFS1/trace.jsonl
    PYTHONPATH=src python tools/validate_trace.py out/trace.chrome.json
    PYTHONPATH=src python tools/validate_trace.py --chrome export.json

Handles both artifact forms:

- raw tracer JSONL (one span/event record per line) — validated with
  :func:`repro.obs.validate_events`;
- exported Chrome Trace Event JSON (``{"traceEvents": [...]}`` or the
  bare array form) — validated with
  :func:`repro.obs.validate_chrome_trace`.

The format is auto-detected from the first non-whitespace character
(``{``/``[`` on a parseable whole-file JSON document means a Chrome
trace; otherwise JSONL) and can be forced with ``--chrome`` /
``--jsonl``.

Exits 0 with a one-line summary when valid.  Exits 1 — with a clear
message, not a traceback — on an empty trace, a truncated/corrupt
line, or a schema violation.  Used by the CI telemetry smoke and
bench-regress jobs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

USAGE = "usage: validate_trace.py [--chrome|--jsonl] <trace file>"


def _validate_chrome(path: Path) -> int:
    from repro.obs import validate_chrome_trace

    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        print(f"{path}: INVALID — not parseable JSON ({exc})",
              file=sys.stderr)
        return 1
    try:
        count = validate_chrome_trace(payload)
    except ValueError as exc:
        print(f"{path}: INVALID — {exc}", file=sys.stderr)
        return 1
    if count == 0:
        print(f"{path}: INVALID — empty trace (no trace events)",
              file=sys.stderr)
        return 1
    print(f"{path}: OK — {count} Chrome trace events")
    return 0


def _validate_jsonl(path: Path) -> int:
    from repro.obs import validate_events

    events = []
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                print(
                    f"{path}: INVALID — line {lineno} is not parseable "
                    f"JSON (truncated trace?): {exc}",
                    file=sys.stderr,
                )
                return 1
    if not events:
        print(f"{path}: INVALID — empty trace (no records)",
              file=sys.stderr)
        return 1
    try:
        count = validate_events(events)
    except ValueError as exc:
        print(f"{path}: INVALID — {exc}", file=sys.stderr)
        return 1
    spans = sum(1 for e in events if e["type"] == "span")
    print(f"{path}: OK — {count} records ({spans} spans, "
          f"{count - spans} events)")
    return 0


def _looks_like_chrome(path: Path) -> bool:
    """True when the whole file is one JSON document (not JSONL).

    A single-line JSONL trace of exactly one record also parses whole —
    but a tracer record is an object with a ``type`` key, which a Chrome
    trace container never has at the top level.
    """
    try:
        text = path.read_text(encoding="utf-8")
        payload = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return False
    if isinstance(payload, list):
        return True
    return isinstance(payload, dict) and "type" not in payload


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    force = None
    for flag, mode in (("--chrome", "chrome"), ("--jsonl", "jsonl")):
        if flag in args:
            args.remove(flag)
            force = mode
    if len(args) != 1:
        print(USAGE, file=sys.stderr)
        return 2
    path = Path(args[0])
    if not path.exists():
        print(f"{path}: INVALID — no such file", file=sys.stderr)
        return 1
    if path.stat().st_size == 0:
        print(f"{path}: INVALID — empty trace (zero-byte file)",
              file=sys.stderr)
        return 1
    if force == "chrome" or (force is None and _looks_like_chrome(path)):
        return _validate_chrome(path)
    return _validate_jsonl(path)


if __name__ == "__main__":
    sys.exit(main())
