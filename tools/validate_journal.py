#!/usr/bin/env python3
"""Validate a recovery write-ahead journal against its schema.

Usage::

    PYTHONPATH=src python tools/validate_journal.py out/journal.jsonl

Exits 0 and prints a one-line summary when the journal is structurally
sound (contiguous sequence numbers, known record types, every commit
payload matching its checksum, intents before commits); exits 1 with
the failure otherwise.  Works on *crashed* journals too — a torn final
line is recoverable by design, and an incomplete journal is still valid
as long as every record it does contain checks out.  Used by the CI
crash-resume smoke job.
"""

from __future__ import annotations

import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: validate_journal.py <journal.jsonl>", file=sys.stderr)
        return 2
    from repro.durable.journal import (
        JournalReplay,
        read_journal,
        validate_journal_records,
    )
    from repro.errors import JournalError

    path = Path(args[0])
    try:
        records = read_journal(path)
        count = validate_journal_records(records)
    except (OSError, JournalError) as exc:
        print(f"{path}: INVALID — {exc}", file=sys.stderr)
        return 1
    replay = JournalReplay(records)
    status = "complete" if replay.complete else (
        f"crashed, {len(replay.pending)} stripes pending"
    )
    print(
        f"{path}: OK — {count} records, {len(replay.committed)} stripes "
        f"committed, {replay.total_cross_transfers} cross-rack transfers "
        f"({status})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
