"""Benchmark: regenerate Tables II and III (evaluation configurations).

These are inputs rather than results, but regenerating them validates
that the configuration layer produces exactly the paper's settings and
measures the cost of building a full experiment state.
"""

from __future__ import annotations

from repro.experiments.configs import ALL_CFS, build_state
from repro.experiments.report import format_table
from repro.sim.hardware import TABLE_III_PROFILES


def test_table2_configurations(benchmark):
    def build_all():
        return [build_state(cfg, seed=1) for cfg in ALL_CFS]

    states = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for cfg in ALL_CFS:
        sizes = list(cfg.rack_sizes) + [""] * (5 - len(cfg.rack_sizes))
        rows.append([cfg.name, *sizes, f"k={cfg.k},m={cfg.m}"])
    print("\nTable II - configurations of three CFS settings\n"
          + format_table(["CFS", "A1", "A2", "A3", "A4", "A5", "RS code"], rows))
    # Validate against the paper's Table II.
    assert [tuple(c.rack_sizes) for c in ALL_CFS] == [
        (4, 3, 3),
        (4, 3, 3, 3),
        (6, 4, 5, 3, 2),
    ]
    assert [(c.k, c.m) for c in ALL_CFS] == [(4, 3), (6, 3), (10, 4)]
    # The methodology: 100 stripes, rack-fault-tolerant random placement.
    for state in states:
        assert state.placement.num_stripes == 100
        assert state.placement.is_rack_fault_tolerant()


def test_table3_hardware(benchmark):
    profiles = benchmark.pedantic(
        lambda: list(TABLE_III_PROFILES), rounds=1, iterations=1
    )
    rows = [
        [p.name, p.cpu_label, f"{p.memory_gb}GB", p.os_label, p.disk_label]
        for p in profiles
    ]
    print("\nTable III - configurations of nodes in each rack\n"
          + format_table(["Rack", "CPU", "Memory", "OS", "Disk"], rows))
    assert [p.memory_gb for p in profiles] == [16, 8, 8, 4, 8]
    assert profiles[0].cpu_label.startswith("AMD Opteron")
    assert profiles[3].disk_label == "300GB"
