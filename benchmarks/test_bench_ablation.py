"""Benchmarks: the ablation studies DESIGN.md calls out.

Not figures from the paper — they decompose *why* CAR wins and where
its advantage scales, and validate the greedy balancer against the
enumerated optimum.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    run_greedy_vs_optimal,
    run_oversubscription_sweep,
    run_traffic_ablation,
)
from repro.experiments.configs import ALL_CFS, CFS1, CFS2
from repro.experiments.report import (
    render_greedy_vs_optimal,
    render_oversubscription,
    render_traffic_ablation,
)


def test_traffic_decomposition(benchmark, scale):
    runs, stripes = scale

    def run():
        return [
            run_traffic_ablation(cfg, runs=runs, num_stripes=stripes)
            for cfg in ALL_CFS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_traffic_ablation(results))
    for res in results:
        # Both techniques contribute; their composition (CAR) is best.
        assert res.saving_over_rr("MinRack-noAgg") > 0
        assert res.saving_over_rr("Random+Agg") > 0
        assert res.traffic["CAR"] == min(res.traffic.values())


def test_oversubscription_sweep(benchmark):
    points = benchmark.pedantic(
        run_oversubscription_sweep,
        kwargs={"config": CFS1, "factors": (1.0, 2.0, 4.0, 8.0), "num_stripes": 30},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_oversubscription(CFS1.name, points))
    # CAR's recovery-time advantage widens monotonically with scarcity.
    savings = [p.saving for p in points]
    assert savings == sorted(savings)
    assert savings[-1] > savings[0] + 0.1


def test_greedy_vs_enumerated_optimum(benchmark):
    def run():
        return [
            run_greedy_vs_optimal(cfg, runs=6, num_stripes=5)
            for cfg in (CFS1, CFS2)
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_greedy_vs_optimal(results))
    for res in results:
        for g, o in zip(res.greedy_lambdas, res.optimal_lambdas):
            assert g >= o - 1e-9  # optimum is a lower bound
        assert res.mean_gap < 0.35  # greedy is near-optimal
