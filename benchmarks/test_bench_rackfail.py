"""Benchmark: whole-rack failure recovery (placement-guarantee exercise).

The paper constrains placement to survive rack loss but never measures
that event; this bench does.  For each rack of CFS2: rebuild every lost
chunk (up to ``m`` per stripe) from the minimum number of surviving
racks, with one partially decoded chunk per (rack, target) shipped
across the core, verified byte-exactly.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterState, DataStore
from repro.experiments.configs import CFS2, build_state
from repro.experiments.report import format_table
from repro.recovery.rackfail import RackRecovery


def _recover_every_rack(stripes: int):
    state = build_state(
        CFS2, seed=31, with_data=True, chunk_size=512, num_stripes=stripes
    )
    recovery = RackRecovery(state)
    rows = []
    for rack in range(state.topology.num_racks):
        solution = recovery.solve(rack)
        verified = recovery.execute(solution)
        rows.append(
            (
                rack,
                solution.lost_chunk_count,
                solution.total_cross_rack_chunks(aggregated=True),
                solution.total_cross_rack_chunks(aggregated=False),
                verified,
            )
        )
    return rows


def test_rack_failure_recovery(benchmark, scale):
    _, stripes = scale
    rows = benchmark.pedantic(
        _recover_every_rack, args=(stripes,), rounds=1, iterations=1
    )
    table = [
        [f"A{rack + 1}", lost, agg, direct, f"{1 - agg / direct:.1%}", ok]
        for rack, lost, agg, direct, ok in rows
    ]
    print(
        "\nwhole-rack failure recovery on CFS2 (chunk units)\n"
        + format_table(
            ["rack", "lost chunks", "cross (agg)", "cross (direct)",
             "saving", "byte-exact"],
            table,
        )
    )
    for rack, lost, agg, direct, verified in rows:
        assert verified
        assert lost > 0
        assert agg < direct  # aggregation helps rack repair too
