"""Benchmark: a quarter of failures — cumulative repair cost and balance.

Extension beyond the paper: replay a 90-day synthetic failure trace
(exponential per-node MTBF) and compare the *cumulative* cross-rack
traffic, repair hours, and long-run rack balance of RR, CAR, and the
history-aware CAR variant (Algorithm 2 with a cumulative-traffic
baseline).
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import CFS2, build_state
from repro.experiments.report import format_table
from repro.recovery import CarStrategy, RandomRecoveryStrategy
from repro.workloads import FailureTraceGenerator, LongRunSimulator


def _replay_all(stripes: int):
    trace = FailureTraceGenerator(
        num_nodes=CFS2.num_nodes, mtbf_hours=1500, seed=11
    ).generate(horizon_hours=24 * 90)
    factories = {
        "RR": lambda h: RandomRecoveryStrategy(rng=13),
        "CAR": lambda h: CarStrategy(),
        "CAR-history": lambda h: CarStrategy(baseline_traffic=list(h)),
    }
    reports = {}
    for name, factory in factories.items():
        sim = LongRunSimulator(
            lambda: build_state(CFS2, seed=3, num_stripes=stripes),
            factory,
            chunk_size=4 << 20,
        )
        reports[name] = sim.replay(trace)
    return trace, reports


def test_longrun_quarter(benchmark, scale):
    _, stripes = scale
    trace, reports = benchmark.pedantic(
        _replay_all, args=(stripes,), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            rep.failures,
            f"{rep.total_cross_rack_bytes / 2**30:.1f} GiB",
            f"{rep.total_repair_hours:.3f} h",
            f"{rep.mean_lambda:.3f}",
            f"{rep.long_run_lambda():.3f}",
        ]
        for name, rep in reports.items()
    ]
    print(
        f"\n90-day failure trace ({len(trace)} failures) on CFS2\n"
        + format_table(
            ["strategy", "repairs", "cross-rack", "repair time",
             "mean event λ", "long-run λ"],
            rows,
        )
    )
    car, rr, hist = reports["CAR"], reports["RR"], reports["CAR-history"]
    # Cumulative savings persist over the horizon.
    assert car.total_cross_rack_bytes < rr.total_cross_rack_bytes
    assert car.total_repair_hours < rr.total_repair_hours
    # History-aware: identical traffic, better long-run balance.
    assert hist.total_cross_rack_bytes == car.total_cross_rack_bytes
    assert hist.long_run_lambda() <= car.long_run_lambda() + 1e-9
