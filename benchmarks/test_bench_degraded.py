"""Benchmark: degraded-read latency distributions, CAR vs RR.

Extension beyond the paper's figures: per-request latency of serving a
read of a lost chunk, across all three CFS settings.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ALL_CFS
from repro.experiments.degraded import run_degraded_read
from repro.experiments.report import format_table


def test_degraded_read_latency(benchmark, scale):
    runs, stripes = scale

    def run_all():
        return [
            run_degraded_read(cfg, runs=runs, num_stripes=stripes)
            for cfg in ALL_CFS
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for res in results:
        for name in ("CAR", "RR"):
            d = res.distributions[name]
            rows.append(
                [
                    res.config_name,
                    name,
                    f"{d.mean * 1000:.0f}ms",
                    f"{d.p50 * 1000:.0f}ms",
                    f"{d.p99 * 1000:.0f}ms",
                    f"{d.worst * 1000:.0f}ms",
                    d.samples,
                ]
            )
    print(
        "\ndegraded-read latency per lost-chunk request (4MB chunks)\n"
        + format_table(
            ["CFS", "strategy", "mean", "p50", "p99", "max", "reqs"], rows
        )
    )
    for res in results:
        car = res.distributions["CAR"]
        rr = res.distributions["RR"]
        # Shape: CAR serves degraded reads faster on average and at p99.
        assert car.mean < rr.mean, res.config_name
        assert car.p99 <= rr.p99 * 1.05, res.config_name
        assert res.speedup() > 1.0
