"""Shared settings for the benchmark harness.

Every figure of the paper's evaluation has a bench that regenerates its
rows/series (reduced run counts keep the suite fast; pass
``--paper-scale`` to use the paper's 50 runs x 100 stripes).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at the paper's full scale (50 runs, 100 stripes)",
    )


@pytest.fixture(scope="session")
def scale(request):
    """(runs, stripes) for traffic/balance benches."""
    if request.config.getoption("--paper-scale"):
        return 50, 100
    return 5, 50


@pytest.fixture(scope="session")
def sim_scale(request):
    """(runs, stripes) for benches that run the fluid simulator."""
    if request.config.getoption("--paper-scale"):
        return 5, 100
    return 2, 30
