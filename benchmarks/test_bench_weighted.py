"""Benchmark: bandwidth-aware balancing on heterogeneous uplinks.

Extension beyond the paper (in the direction of Zhu et al.'s cost-based
heterogeneous recovery, which the paper cites): one rack's uplink runs
at quarter speed.  Capacity-blind Algorithm 2 balances chunk *counts*
and keeps loading the slow uplink; the weighted variant balances drain
*times*.  Both are measured end to end with the fluid simulator.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    BandwidthProfile,
    ClusterState,
    ClusterTopology,
    FailureInjector,
    RandomPlacementPolicy,
)
from repro.erasure import RSCode
from repro.experiments.report import format_table
from repro.recovery import (
    CarStrategy,
    plan_recovery,
    solve_bandwidth_aware,
)
from repro.sim import RecoverySimulator

MB = 1 << 20
SLOW_RACK = 1
UPLINKS = (1.0, 0.25, 1.0, 1.0)


def _build(seed: int, stripes: int):
    code = RSCode(6, 3)
    topo = ClusterTopology.from_rack_sizes(
        [4, 3, 3, 3],
        bandwidth=BandwidthProfile(
            node_nic_gbps=1.0,
            rack_uplink_gbps=1.0,
            per_rack_uplink_gbps=UPLINKS,
        ),
    )
    placement = RandomPlacementPolicy(rng=seed).place(topo, stripes, 6, 3)
    state = ClusterState(topo, code, placement)
    event = FailureInjector(rng=seed).fail_random_node(state)
    return state, event


def _compare(runs: int, stripes: int):
    rows = []
    for run in range(runs):
        seed = 900 + run
        state, event = _build(seed, stripes)
        if state.topology.rack_of(state.failed_node) == SLOW_RACK:
            continue  # the slow rack holds no replacement in this drill
        plain = CarStrategy(iterations=100).solve(state)
        weighted, _ = solve_bandwidth_aware(
            state, capacities=UPLINKS, iterations=100
        )
        simulator = RecoverySimulator(state, include_disk=False)
        t_plain = simulator.simulate(
            plan_recovery(state, event, plain), 4 * MB
        ).time_per_chunk
        t_weighted = simulator.simulate(
            plan_recovery(state, event, weighted), 4 * MB
        ).time_per_chunk
        rows.append(
            (
                plain.traffic_by_rack()[SLOW_RACK],
                weighted.traffic_by_rack()[SLOW_RACK],
                t_plain,
                t_weighted,
            )
        )
    return rows


def test_weighted_balancing_on_slow_uplink(benchmark, scale):
    runs, stripes = scale
    rows = benchmark.pedantic(
        _compare, args=(max(runs, 3), stripes), rounds=1, iterations=1
    )
    assert rows, "every sampled failure hit the slow rack; reseed"
    n = len(rows)
    plain_slow = sum(r[0] for r in rows) / n
    weighted_slow = sum(r[1] for r in rows) / n
    t_plain = sum(r[2] for r in rows) / n
    t_weighted = sum(r[3] for r in rows) / n
    print(
        "\nheterogeneous uplinks (rack A2 at 0.25 Gb/s), CFS2-like cluster\n"
        + format_table(
            ["balancer", "slow-rack chunks", "time/chunk"],
            [
                ["Algorithm 2 (capacity-blind)", f"{plain_slow:.1f}",
                 f"{t_plain:.3f}s"],
                ["bandwidth-aware", f"{weighted_slow:.1f}",
                 f"{t_weighted:.3f}s"],
            ],
        )
    )
    # The weighted balancer drains the slow uplink less and finishes
    # recovery no slower (usually faster).
    assert weighted_slow <= plain_slow
    assert t_weighted <= t_plain * 1.02
