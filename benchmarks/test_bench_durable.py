"""Durability overhead: journalling + integrity checksums vs the bare path.

Three configurations of the same recovery execute end to end:

- **off** — the default :class:`PlanExecutor` path (no checksums, no
  journal): the integrity/journal hooks exist but must cost nothing;
- **verify** — every transferred payload checksummed at creation and
  re-verified on receipt;
- **durable** — verification plus the write-ahead journal (intent,
  stage, and payload-carrying commit records, flushed per append).

The assertions bound the relative cost so a regression that makes the
disabled path pay for durability (or makes durability pathologically
expensive) fails the bench rather than silently landing.
"""

from __future__ import annotations

import time

from repro.cluster.failure import FailureInjector
from repro.durable.journal import JournalReplay
from repro.durable.session import RecoverySession
from repro.experiments.configs import CFS2, build_state
from repro.recovery import CarStrategy, PlanExecutor, plan_recovery

STRIPES = 24
CHUNK = 4096
SEED = 13


def build():
    state = build_state(CFS2, seed=SEED, with_data=True,
                        chunk_size=CHUNK, num_stripes=STRIPES)
    event = FailureInjector(rng=SEED).fail_random_node(state)
    solution = CarStrategy().solve(state)
    plan = plan_recovery(state, event, solution)
    return state, event, solution, plan


def median_seconds(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def test_disabled_path_overhead_bounded(benchmark, tmp_path):
    state, event, solution, plan = build()

    def off():
        return PlanExecutor(state).execute(plan, solution)

    def verify():
        return PlanExecutor(state, verify_integrity=True).execute(
            plan, solution
        )

    result = benchmark.pedantic(off, rounds=5, iterations=1)
    assert result.verified

    t_off = median_seconds(off)
    t_verify = median_seconds(verify)
    print(f"\nbench_durable: off={t_off * 1e3:.2f}ms "
          f"verify={t_verify * 1e3:.2f}ms "
          f"(x{t_verify / t_off:.2f})")
    # Checksumming every payload is real work, but bounded work; and
    # the disabled path must not be paying for it (generous CI-noise
    # margins on both bounds).
    assert t_verify < 4.0 * t_off + 0.05
    assert t_off < 2.0 * t_verify  # off is never *slower* than verify


def test_journalled_session_overhead_bounded(benchmark, tmp_path):
    state, event, solution, plan = build()

    def off():
        return PlanExecutor(state).execute(plan, solution)

    runs = iter(range(10_000))

    def durable():
        path = tmp_path / f"bench-{next(runs)}.jsonl"
        state2 = build_state(CFS2, seed=SEED, with_data=True,
                             chunk_size=CHUNK, num_stripes=STRIPES)
        event2 = FailureInjector(rng=SEED).fail_random_node(state2)
        return RecoverySession(
            state2, event2, CarStrategy(), path
        ).run()

    out = benchmark.pedantic(durable, rounds=3, iterations=1)
    assert out.verified

    t_off = median_seconds(off)
    t_durable = median_seconds(durable, rounds=3)
    print(f"\nbench_durable: off={t_off * 1e3:.2f}ms "
          f"durable={t_durable * 1e3:.2f}ms "
          f"(x{t_durable / t_off:.2f})")
    # The durable path re-solves, checksums, and writes a flushed JSONL
    # record per stage — still the same order of magnitude.
    assert t_durable < 25.0 * t_off + 0.25


def test_journal_size_is_bounded(tmp_path):
    """Journal bytes scale with committed payloads, not pipeline chatter."""
    state, event, solution, plan = build()
    path = tmp_path / "size.jsonl"
    out = RecoverySession(state, event, CarStrategy(), path).run()
    assert out.verified
    replay = JournalReplay.load(path)
    stripes = len(replay.committed)
    size = path.stat().st_size
    # Base64 payload ~4/3 chunk per commit plus bounded per-record
    # overhead: journal stays within ~2.5 kB + 2x chunk per stripe.
    assert size < stripes * (2 * CHUNK + 2500)
    print(f"\nbench_durable: journal {size} B for {stripes} stripes "
          f"({size // stripes} B/stripe, chunk {CHUNK} B)")
