"""Benchmark: regenerate Figure 8 (load-balancing rate vs iterations)."""

from __future__ import annotations

import pytest

from repro.experiments.configs import ALL_CFS
from repro.experiments.fig8 import run_fig8_single
from repro.experiments.report import render_fig8


@pytest.mark.parametrize("config", ALL_CFS, ids=lambda c: c.name)
def test_fig8_panel(benchmark, config, scale):
    runs, stripes = scale
    result = benchmark.pedantic(
        run_fig8_single,
        kwargs={"config": config, "runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_fig8([result]))
    # Shape: balancing strictly improves lambda and plateaus near 1.
    assert result.final_lambda < result.initial_lambda
    assert 1.0 <= result.final_lambda < 1.3
    # Shape: lambda is non-increasing across iteration checkpoints.
    means = result.balanced.means
    assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
    # The paper's CFS1 anchor values: ~1.22 unbalanced, ~1.02 balanced.
    if config.name == "CFS1":
        assert 1.05 < result.initial_lambda < 1.45
        assert result.final_lambda < 1.15
