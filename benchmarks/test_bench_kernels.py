"""Microbenchmarks of the hot kernels under the recovery pipeline.

These time the building blocks the figures depend on — GF buffer
kernels, RS encode/decode/repair, Theorem 1 selection, Algorithm 2
balancing, and max-min water-filling — using pytest-benchmark's
statistical timing (multiple rounds, real measurements).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.failure import FailureInjector
from repro.erasure.rs import RSCode
from repro.experiments.configs import CFS2, build_state
from repro.gf.field import GF8
from repro.gf.vector import dot_rows, mul_scalar
from repro.network.simulator import maxmin_rates
from repro.recovery.balancer import GreedyLoadBalancer
from repro.recovery.baselines import CarStrategy
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution

MB = 1 << 20


@pytest.fixture(scope="module")
def chunk_1mb():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, MB, dtype=np.uint8)


def test_gf_mul_scalar_throughput(benchmark, chunk_1mb):
    result = benchmark(mul_scalar, GF8, 0x57, chunk_1mb)
    assert result.shape == chunk_1mb.shape


def test_gf_dot_rows_k6(benchmark, chunk_1mb):
    bufs = [chunk_1mb] * 6
    coeffs = [3, 5, 7, 11, 13, 17]
    result = benchmark(dot_rows, GF8, coeffs, bufs)
    assert result.shape == chunk_1mb.shape


def test_rs_encode_6_3(benchmark):
    code = RSCode(6, 3)
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, 256 * 1024, dtype=np.uint8) for _ in range(6)]
    parity = benchmark(code.encode, data)
    assert len(parity) == 3


def test_rs_repair_vector_10_4(benchmark):
    code = RSCode(10, 4)
    helpers = list(range(1, 11))
    y = benchmark(code.repair_vector, 0, helpers)
    assert len(y) == 10


def test_rs_single_chunk_repair(benchmark):
    code = RSCode(6, 3)
    rng = np.random.default_rng(2)
    data = [rng.integers(0, 256, 256 * 1024, dtype=np.uint8) for _ in range(6)]
    stripe = code.encode_stripe(data)
    helpers = {i: stripe[i] for i in range(1, 7)}
    rebuilt = benchmark(code.reconstruct, 0, helpers)
    assert np.array_equal(rebuilt, stripe[0])


def test_theorem1_selection_100_stripes(benchmark):
    state = build_state(CFS2, seed=1)
    FailureInjector(rng=1).fail_random_node(state)
    views = state.views()
    selector = CarSelector(state.topology, state.code.k)

    def select_all():
        return [selector.initial_solution(v) for v in views]

    solutions = benchmark(select_all)
    assert len(solutions) == len(views)


def test_algorithm2_balancing_100_stripes(benchmark):
    state = build_state(CFS2, seed=2)
    FailureInjector(rng=2).fail_random_node(state)
    views = {v.stripe_id: v for v in state.views()}
    selector = CarSelector(state.topology, state.code.k)
    initial = MultiStripeSolution(
        [selector.initial_solution(v) for v in views.values()],
        num_racks=state.topology.num_racks,
        aggregated=True,
    )

    def balance():
        return GreedyLoadBalancer(iterations=50).balance(
            views, initial, selector
        )

    balanced, trace = benchmark(balance)
    assert balanced.load_balancing_rate() <= initial.load_balancing_rate() + 1e-12


def test_car_end_to_end_solve(benchmark):
    state = build_state(CFS2, seed=3)
    FailureInjector(rng=3).fail_random_node(state)
    solution = benchmark(lambda: CarStrategy().solve(state))
    assert solution.aggregated


def test_maxmin_waterfill_200_flows(benchmark):
    rng = np.random.default_rng(4)
    incidence = rng.random((50, 200)) < 0.1
    for f in range(200):
        if not incidence[:, f].any():
            incidence[rng.integers(50), f] = True
    caps = rng.uniform(10.0, 100.0, 50)
    rates = benchmark(maxmin_rates, incidence, caps)
    assert (incidence @ rates <= caps + 1e-6).all()
