"""The service-layer contention curve: repair cap vs client latency.

One :func:`~repro.service.bench.run_bench_service` sweep boots the full
in-process cluster (coordinator + chunkservers over real sockets) per
repair-bandwidth cap, kills a node, and measures both sides of the
paper's tradeoff in modelled time:

- **recovery throughput** — repaired bytes per modelled second;
- **foreground p50/p99** — degraded-read latency of clients racing the
  repair on the same modelled cross-rack link.

The assertions pin the *direction* of the tradeoff (a tighter cap must
slow recovery and improve foreground latency), which is exactly what
the admission controller exists to provide; absolute numbers ship as
``extra_info`` for the bench-regress gate.
"""

from __future__ import annotations

from repro.service.bench import render_service_table, run_bench_service

CAPS = (16 * 1024, 64 * 1024, None)


def test_repair_cap_trades_recovery_for_latency(benchmark, tmp_path):
    rows = benchmark.pedantic(
        lambda: run_bench_service(CAPS, workdir=tmp_path / "sweep"),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_service_table(rows))

    assert len(rows) == len(CAPS)
    for row in rows:
        assert row["verified"], "service repair must verify byte-for-byte"
        assert row["stripes"] > 0
        assert row["contended_reads"] > 0, (
            "no reads raced the repair: the curve measured nothing"
        )

    tight, _, uncapped = rows
    # A tight cap throttles recovery hard (the gap is ~10x, so the
    # margin is generous against scheduler noise)...
    assert (
        tight["recovery_throughput_bytes_per_s"]
        < 0.5 * uncapped["recovery_throughput_bytes_per_s"]
    )
    # ...and buys the foreground reads a visibly better median.
    assert (
        tight["client_p50_model_s"] < 1.5 * uncapped["client_p50_model_s"]
    )
    # Throughput is monotone non-decreasing as the cap loosens.
    throughputs = [r["recovery_throughput_bytes_per_s"] for r in rows]
    assert throughputs[0] < throughputs[-1]

    # Metric names follow the regress gate's direction conventions:
    # ``*_per_second`` regresses downward, ``*_seconds`` upward.
    benchmark.extra_info.update(
        {
            "capped_recovery_bytes_per_second": (
                tight["recovery_throughput_bytes_per_s"]
            ),
            "uncapped_recovery_bytes_per_second": (
                uncapped["recovery_throughput_bytes_per_s"]
            ),
            "capped_client_p50_model_seconds": tight["client_p50_model_s"],
            "uncapped_client_p50_model_seconds": (
                uncapped["client_p50_model_s"]
            ),
            "capped_client_p99_model_seconds": tight["client_p99_model_s"],
            "uncapped_client_p99_model_seconds": (
                uncapped["client_p99_model_s"]
            ),
            "stripes": tight["stripes"],
            "chunk_size": tight["chunk_size"],
        }
    )
