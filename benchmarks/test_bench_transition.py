"""Benchmark: replication-to-EC transition traffic (cited work, [18]).

Regenerates the rack-aware-vs-blind comparison of Li et al. (DSN'15),
the encoding-transition paper CAR cites for the bandwidth-diversity
premise: choosing the encoder rack where replicas already live removes
most cross-rack block fetches.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.cluster.transition import (
    RackAwareTransition,
    RandomTransition,
    ReplicatedStore,
)
from repro.experiments.report import format_table


def _run(runs: int, blocks: int):
    topo = ClusterTopology.from_rack_sizes([4, 3, 3, 3, 3])
    totals = {"rack-aware": 0, "random": 0}
    fetches = {"rack-aware": 0, "random": 0}
    stripes = 0
    for seed in range(runs):
        store = ReplicatedStore(topo, num_blocks=blocks, rng=seed)
        aware = RackAwareTransition(k=6, m=3).plan(store)
        blind = RandomTransition(k=6, m=3, rng=seed).plan(store)
        totals["rack-aware"] += aware.total_cross_rack_chunks
        totals["random"] += blind.total_cross_rack_chunks
        fetches["rack-aware"] += aware.cross_rack_block_fetches
        fetches["random"] += blind.cross_rack_block_fetches
        stripes += aware.stripes
    return totals, fetches, stripes


def test_transition_traffic(benchmark, scale):
    runs, blocks = scale
    totals, fetches, stripes = benchmark.pedantic(
        _run, args=(runs, max(blocks, 36)), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{totals[name] / stripes:.2f}",
            f"{fetches[name] / stripes:.2f}",
        ]
        for name in ("random", "rack-aware")
    ]
    print(
        "\nreplication -> RS(6,3) transition, cross-rack chunks per stripe\n"
        + format_table(["encoder choice", "total", "block fetches"], rows)
    )
    saving = 1 - totals["rack-aware"] / totals["random"]
    print(f"rack-aware saving: {saving:.1%}")
    assert totals["rack-aware"] < totals["random"]
    # With 3 replicas over 5 racks, the best rack nearly always holds
    # several of the six blocks: fetches drop by more than a third.
    assert fetches["rack-aware"] < 0.67 * fetches["random"]
