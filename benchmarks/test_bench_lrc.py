"""Benchmark: LRC locality vs CAR-over-RS (related-work ablation).

Contrasts the two answers to expensive single-failure repair at equal
stripe width and equal storage overhead (LRC(8, 2, 2) vs RS(8, 4), both
12 chunks / 1.5x):

- cross-rack repair traffic: LRC with rack-aligned groups vs CAR vs RR;
- the price LRC pays: single-rack fault tolerance.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterState,
    ClusterTopology,
    FailureInjector,
    GroupAlignedPlacementPolicy,
    RandomPlacementPolicy,
)
from repro.erasure import LRCCode, RSCode
from repro.experiments.report import format_table
from repro.recovery import (
    CarStrategy,
    LrcLocalRecoveryStrategy,
    RandomRecoveryStrategy,
    lrc_groups_for_placement,
)

RACKS = (6, 6, 4, 4)


def _run_comparison(runs: int, stripes: int):
    rows = []
    for run in range(runs):
        seed = 600 + run
        # LRC cluster with rack-aligned groups.
        lrc = LRCCode(k=8, l=2, g=2)
        topo = ClusterTopology.from_rack_sizes(list(RACKS))
        placement = GroupAlignedPlacementPolicy(
            lrc_groups_for_placement(lrc), rng=seed
        ).place(topo, stripes, lrc.k, lrc.m)
        lrc_state = ClusterState(topo, lrc, placement)
        FailureInjector(rng=seed).fail_random_node(lrc_state)
        lrc_traffic = (
            LrcLocalRecoveryStrategy().solve(lrc_state).total_cross_rack_traffic()
        )
        lrc_stripes = len(lrc_state.affected_stripes())

        # RS cluster at the same width/overhead.
        rs = RSCode(8, 4)
        topo2 = ClusterTopology.from_rack_sizes(list(RACKS))
        placement2 = RandomPlacementPolicy(rng=seed).place(topo2, stripes, 8, 4)
        rs_state = ClusterState(topo2, rs, placement2)
        FailureInjector(rng=seed).fail_random_node(rs_state)
        car = CarStrategy().solve(rs_state).total_cross_rack_traffic()
        rr = RandomRecoveryStrategy(rng=seed).solve(rs_state).total_cross_rack_traffic()
        rs_stripes = len(rs_state.affected_stripes())
        rows.append(
            (
                lrc_traffic / lrc_stripes,
                car / rs_stripes,
                rr / rs_stripes,
            )
        )
    n = len(rows)
    return tuple(sum(col) / n for col in zip(*rows))


def test_lrc_vs_car_traffic(benchmark, scale):
    runs, stripes = scale
    lrc_avg, car_avg, rr_avg = benchmark.pedantic(
        _run_comparison, args=(runs, stripes), rounds=1, iterations=1
    )
    print(
        "\nLRC(8,2,2) rack-aligned vs RS(8,4) — cross-rack chunks per repaired stripe\n"
        + format_table(
            ["strategy", "chunks/stripe"],
            [
                ["LRC local (aligned)", f"{lrc_avg:.2f}"],
                ["RS + CAR", f"{car_avg:.2f}"],
                ["RS + RR", f"{rr_avg:.2f}"],
            ],
        )
    )
    # LRC local repair (mostly rack-local) beats CAR, which beats RR.
    assert lrc_avg < car_avg < rr_avg
    # Data-chunk repairs are rack-local, so LRC averages well under one
    # cross-rack chunk per stripe (only global-parity repairs cross).
    assert lrc_avg < 1.0


def test_lrc_gives_up_rack_tolerance(benchmark):
    """The trade-off side: the aligned placement is NOT single-rack
    fault tolerant, while the paper's RS placement always is."""

    def build():
        lrc = LRCCode(k=8, l=2, g=2)
        topo = ClusterTopology.from_rack_sizes(list(RACKS))
        placement = GroupAlignedPlacementPolicy(
            lrc_groups_for_placement(lrc), rng=0
        ).place(topo, 10, lrc.k, lrc.m)
        return lrc, ClusterState(topo, lrc, placement)

    lrc, state = benchmark.pedantic(build, rounds=1, iterations=1)
    vulnerable_patterns = 0
    for stripe in range(10):
        for rack in range(state.topology.num_racks):
            lost = [
                c
                for c in range(lrc.n)
                if state.placement.rack_of_chunk(stripe, c) == rack
            ]
            survivors = [c for c in range(lrc.n) if c not in lost]
            if not lrc.is_recoverable(survivors):
                vulnerable_patterns += 1
    print(
        f"\nrack-loss patterns that lose data under aligned LRC: "
        f"{vulnerable_patterns} of {10 * state.topology.num_racks}"
    )
    assert vulnerable_patterns > 0
