"""Benchmark: the regenerating-code sweep (CAR vs RR vs RackMSR vs Piggyback).

Prints the sweep table — per-stripe cross-rack chunk units, analytic
bounds, λ — and asserts the constructions' qualitative shape: zero
bound violations anywhere, RackMSR exactly at its cut-set bound with
perfect balance on aligned placements, Piggyback strictly cheaper than
RR (it is RR with half-chunk savings piggybacked on).
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import rack_aware_msr_cross_rack
from repro.experiments.configs import ALL_CFS
from repro.experiments.regen import run_regen_single
from repro.experiments.report import render_regen


@pytest.mark.parametrize("config", ALL_CFS, ids=lambda c: c.name)
def test_regen_panel(benchmark, config, scale):
    runs, stripes = scale
    result = benchmark.pedantic(
        run_regen_single,
        kwargs={"config": config, "runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_regen([result]))
    # Every measured per-stripe figure respects its analytic bound.
    assert result.total_violations == 0
    # RackMSR sits exactly on the rack-level cut-set bound.
    msr = result.outcomes["RackMSR"]
    expected = rack_aware_msr_cross_rack(1.0, result.kbar, result.dbar)
    assert msr.per_stripe_units[0] == pytest.approx(expected)
    assert msr.per_stripe_units[1] == pytest.approx(0.0)
    # Piggyback strictly undercuts RR (same placement, half-chunk reads).
    assert (
        result.outcomes["Piggyback"].per_stripe_units[0]
        < result.outcomes["RR"].per_stripe_units[0]
    )
    # Traffic scales linearly with chunk size.
    series = msr.series
    assert series.means[2] == pytest.approx(4 * series.means[0], rel=1e-9)


def test_regen_rackmsr_beats_rr_everywhere(benchmark, scale):
    """RackMSR's 2-chunk repair undercuts RR's k-chunk repair on every CFS."""
    runs, stripes = scale

    def run():
        return [
            run_regen_single(cfg, runs=runs, num_stripes=stripes)
            for cfg in ALL_CFS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for res in results:
        assert (
            res.outcomes["RackMSR"].per_stripe_units[0]
            < res.outcomes["RR"].per_stripe_units[0]
        )
