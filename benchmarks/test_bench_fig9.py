"""Benchmark: regenerate Figure 9 (recovery time per lost chunk).

Runs the fluid network simulation of both strategies' full recovery
plans over the GbE fabric with Table III hardware.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ALL_CFS
from repro.experiments.fig9 import run_fig9_single
from repro.experiments.report import render_fig9


@pytest.mark.parametrize("config", ALL_CFS, ids=lambda c: c.name)
def test_fig9_panel(benchmark, config, sim_scale):
    runs, stripes = sim_scale
    result = benchmark.pedantic(
        run_fig9_single,
        kwargs={"config": config, "runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_fig9([result]))
    car, rr = result.series["CAR"], result.series["RR"]
    # Shape: CAR faster at every chunk size.
    for c, r in zip(car.means, rr.means):
        assert c < r
    # Shape: time grows with chunk size for both strategies.
    for series in (car, rr):
        assert series.means[0] < series.means[1] < series.means[2]
    # Shape: meaningful saving (paper: up to 53.8 %).
    assert result.max_saving > 0.15


def test_fig9_saving_grows_with_k(benchmark, sim_scale):
    runs, stripes = sim_scale

    def run():
        return [
            run_fig9_single(cfg, runs=runs, num_stripes=stripes)
            for cfg in (ALL_CFS[0], ALL_CFS[2])
        ]

    cfs1, cfs3 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cfs3.max_saving > cfs1.max_saving
