"""End-to-end streaming hot path vs the eager path at large stripe counts.

One recovery of every affected stripe in a large cluster, run twice over
the identical solution:

- **eager** — `plan_recovery` materialises every per-stripe plan, then
  `PlanExecutor.execute` decodes stripe by stripe and retains every
  rebuilt buffer in the result;
- **streaming** — `plan_recovery_streaming` yields plans lazily and
  `execute_streaming` consumes them in bounded windows with batched GF
  dispatch, handing rebuilt bytes to a sink.

Both passes are timed once (they run for seconds — statistical rounds
would add minutes for no precision) and their Python allocation peaks
are captured with ``tracemalloc`` over exactly the plan+execute phase,
so the comparison isolates what the streaming path claims to fix:
per-stripe planning overhead and O(stripes) retention.

The numbers land in the pytest-benchmark JSON artifact
(``--benchmark-json=BENCH_stream.json``) under ``extra_info`` —
stripes/sec, peak memory, peak process RSS, cross-rack bytes, and the
streaming/eager ratios — so the perf trajectory is visible PR-over-PR.
At ``--paper-scale`` (10^5+ stripes, the committed baseline) the bench
asserts the acceptance floor: >= 2x stripes/sec and >= 4x lower peak
memory.
"""

from __future__ import annotations

import resource
import time
import tracemalloc

import pytest

from repro.cluster.failure import FailureInjector
from repro.experiments.configs import CFS1, build_state
from repro.recovery import (
    CarStrategy,
    PlanExecutor,
    plan_recovery,
    plan_recovery_streaming,
)

#: Tiny chunks: the bench measures coordination overhead (planning,
#: dispatch, retention), which is what dominates real runs once chunk
#: I/O streams at disk speed — GF throughput per byte is identical on
#: both paths and has its own kernel bench.
CHUNK = 64
SEED = 0
WINDOW = 256


@pytest.fixture(scope="module")
def stream_scale(request):
    """Total stripes: smoke-sized by default, 10^5+ at --paper-scale."""
    if request.config.getoption("--paper-scale"):
        return 120_000
    return 2_000


def _build(num_stripes):
    state = build_state(
        CFS1, seed=SEED, with_data=True, chunk_size=CHUNK,
        num_stripes=num_stripes, placement_policy="rack_aligned",
    )
    event = FailureInjector(rng=SEED).fail_random_node(state)
    solution = CarStrategy().solve(state)
    return state, event, solution


def _timed_peak(fn):
    """(result, elapsed_seconds, tracemalloc_peak_bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_streaming_vs_eager_end_to_end(benchmark, stream_scale):
    state, event, solution = _build(stream_scale)
    affected = len(solution.solutions)

    def eager_pass():
        plan = plan_recovery(state, event, solution)
        return PlanExecutor(state).execute(plan, solution)

    eager, eager_s, eager_peak = _timed_peak(eager_pass)
    assert eager.verified

    ok_count = 0

    def sink(stripe_id, rebuilt, ok):
        nonlocal ok_count
        ok_count += ok

    def streaming_pass():
        plan = plan_recovery_streaming(state, event, solution)
        return PlanExecutor(state).execute_streaming(
            plan, window=WINDOW, sink=sink
        )

    streamed, stream_s, stream_peak = benchmark.pedantic(
        lambda: _timed_peak(streaming_pass), rounds=1, iterations=1
    )
    assert ok_count == affected
    assert streamed.cross_rack_bytes == eager.cross_rack_bytes
    assert streamed.intra_rack_bytes == eager.intra_rack_bytes
    assert streamed.bytes_computed_by_node == eager.bytes_computed_by_node

    speedup = eager_s / stream_s
    mem_ratio = eager_peak / stream_peak
    benchmark.extra_info.update(
        {
            "num_stripes": stream_scale,
            "affected_stripes": affected,
            "window": WINDOW,
            "chunk_size": CHUNK,
            "eager_seconds": eager_s,
            "eager_stripes_per_second": affected / eager_s,
            "eager_peak_alloc_bytes": eager_peak,
            "streaming_seconds": stream_s,
            "streaming_stripes_per_second": affected / stream_s,
            "streaming_peak_alloc_bytes": stream_peak,
            "speedup_stripes_per_second": speedup,
            "peak_memory_ratio_eager_over_streaming": mem_ratio,
            "cross_rack_bytes": eager.cross_rack_bytes,
            "intra_rack_bytes": eager.intra_rack_bytes,
            "peak_rss_kib": resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss,
        }
    )
    if stream_scale >= 100_000:
        # The acceptance floor for the committed baseline.
        assert speedup >= 2.0, f"streaming only {speedup:.2f}x faster"
        assert mem_ratio >= 4.0, f"peak memory only {mem_ratio:.2f}x lower"
    else:
        # Smoke scale: direction must already be right, with headroom
        # left so CI timing noise cannot flake the job.
        assert speedup >= 0.8
        assert mem_ratio >= 1.5
