"""Telemetry overhead on the kernel hot path.

The instrumentation contract (docs/OBSERVABILITY.md) is that with no
telemetry scope active the guarded call sites cost one module-attribute
load — under 5% on the kernel bench.  These benches time the same GF
kernels with telemetry off (the default for every other bench in this
suite) and on, plus a direct bound on the disabled-guard cost.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gf.field import GF8
from repro.gf.vector import batch_dot, mul_scalar
from repro.obs import MetricsRegistry, telemetry_scope
from repro.obs import metrics as _metrics

MB = 1 << 20


@pytest.fixture(scope="module")
def chunk_1mb():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, MB, dtype=np.uint8)


@pytest.fixture
def enabled_scope():
    with telemetry_scope(MetricsRegistry()):
        yield


def test_mul_scalar_telemetry_off(benchmark, chunk_1mb):
    assert _metrics.CURRENT is None
    result = benchmark(mul_scalar, GF8, 0x57, chunk_1mb)
    assert result.shape == chunk_1mb.shape


def test_mul_scalar_telemetry_on(benchmark, chunk_1mb, enabled_scope):
    result = benchmark(mul_scalar, GF8, 0x57, chunk_1mb)
    assert result.shape == chunk_1mb.shape


def test_batch_dot_telemetry_off(benchmark, chunk_1mb):
    assert _metrics.CURRENT is None
    matrix = [[3, 5, 7, 11, 13, 17]]
    bufs = [chunk_1mb] * 6
    rows = benchmark(batch_dot, GF8, matrix, bufs)
    assert rows[0].shape == chunk_1mb.shape


def test_batch_dot_telemetry_on(benchmark, chunk_1mb, enabled_scope):
    matrix = [[3, 5, 7, 11, 13, 17]]
    bufs = [chunk_1mb] * 6
    rows = benchmark(batch_dot, GF8, matrix, bufs)
    assert rows[0].shape == chunk_1mb.shape


def test_disabled_guard_under_5_percent_of_kernel(chunk_1mb):
    """The CURRENT-is-None check is <5% of one 1 MB kernel dispatch."""
    assert _metrics.CURRENT is None

    def guard_cost(iters=20_000):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(iters):
                if _metrics.CURRENT is not None:  # the disabled path
                    raise AssertionError
            best = min(best, time.perf_counter() - start)
        return best / iters

    def kernel_cost(iters=5):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(iters):
                mul_scalar(GF8, 0x57, chunk_1mb)
            best = min(best, time.perf_counter() - start)
        return best / iters

    assert guard_cost() < 0.05 * kernel_cost()


def test_disabled_progress_and_profiler_guards_under_5_percent(chunk_1mb):
    """The observatory guards obey the same contract as the metrics
    guard: with no reporter/sampler attached the executor pays one
    ``is None`` check per window (progress) and per execute call
    (profiler) — under 5% of one 1 MB kernel dispatch."""
    progress = None
    profiler = None

    def guard_cost(iters=20_000):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(iters):
                if progress is not None:  # per-window disabled path
                    raise AssertionError
                if profiler is not None:  # per-call disabled path
                    raise AssertionError
            best = min(best, time.perf_counter() - start)
        return best / iters

    def kernel_cost(iters=5):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(iters):
                mul_scalar(GF8, 0x57, chunk_1mb)
            best = min(best, time.perf_counter() - start)
        return best / iters

    assert guard_cost() < 0.05 * kernel_cost()
