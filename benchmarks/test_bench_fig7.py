"""Benchmark: regenerate Figure 7 (cross-rack repair traffic, CAR vs RR).

Prints the same rows the paper plots — total cross-rack traffic in MB
per CFS setting and chunk size — and asserts the paper's qualitative
shape (CAR always below RR; saving grows with k; traffic linear in
chunk size).
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ALL_CFS
from repro.experiments.fig7 import run_fig7_single
from repro.experiments.report import render_fig7


@pytest.mark.parametrize("config", ALL_CFS, ids=lambda c: c.name)
def test_fig7_panel(benchmark, config, scale):
    runs, stripes = scale
    result = benchmark.pedantic(
        run_fig7_single,
        kwargs={"config": config, "runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_fig7([result]))
    car, rr = result.series["CAR"], result.series["RR"]
    # Shape: CAR strictly below RR at every chunk size.
    for c, r in zip(car.means, rr.means):
        assert c < r
    # Shape: traffic scales linearly with chunk size.
    assert car.means[2] == pytest.approx(4 * car.means[0], rel=1e-9)
    # Shape: substantial saving, in the paper's 50-70 % band.
    assert 0.30 < result.max_saving < 0.85


def test_fig7_saving_grows_with_k(benchmark, scale):
    """The cross-panel claim: the saving at CFS3 (k=10) exceeds CFS1 (k=4)."""
    runs, stripes = scale

    def run():
        return [
            run_fig7_single(cfg, runs=runs, num_stripes=stripes)
            for cfg in (ALL_CFS[0], ALL_CFS[2])
        ]

    cfs1, cfs3 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cfs3.max_saving > cfs1.max_saving
