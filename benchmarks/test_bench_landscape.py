"""Benchmark: the repair-traffic landscape around CAR.

Positions the paper's contribution among its related work with concrete
numbers: per repaired chunk, how much data moves in total and across
racks for RS+RR, RS+CAR, rack-aligned LRC, and PM-MSR — plus the
Dimakis cut-set corner points for the same (k, d).
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import mbr_point, msr_point, tradeoff_curve
from repro.analysis.landscape import repair_landscape
from repro.experiments.configs import CFS2
from repro.experiments.report import format_table


def test_repair_landscape(benchmark, scale):
    runs, stripes = scale
    rows = benchmark.pedantic(
        repair_landscape,
        kwargs={"config": CFS2, "runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r.scheme,
            f"{r.total_chunks:.2f}",
            "-" if r.cross_rack_chunks is None else f"{r.cross_rack_chunks:.2f}",
            f"{r.storage_overhead:.2f}x",
        ]
        for r in rows
    ]
    print(
        "\nrepair cost per lost chunk (chunk units), CFS2 (k=6, m=3)\n"
        + format_table(
            ["scheme", "total", "cross-rack", "storage"], table
        )
    )
    by = {r.scheme: r for r in rows}
    assert (
        by["RS + CAR"].cross_rack_chunks < by["RS + RR"].cross_rack_chunks
    )
    lrc = next(r for r in rows if r.scheme.startswith("LRC"))
    msr = next(r for r in rows if r.scheme.startswith("PM-MSR"))
    assert lrc.cross_rack_chunks == 0.0
    assert msr.total_chunks == pytest.approx(2.0)
    # The ordering the literature predicts: MSR < LRC-local < RS totals.
    assert msr.total_chunks < lrc.total_chunks < by["RS + RR"].total_chunks


def test_cutset_tradeoff_curve(benchmark):
    k, d, B = 6, 10, 6.0

    def compute():
        return (
            msr_point(B, n=12, k=k, d=d),
            mbr_point(B, n=12, k=k, d=d),
            tradeoff_curve(B, n=12, k=k, d=d, points=6),
        )

    msr, mbr, curve = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[p.label, f"{p.alpha:.3f}", f"{p.gamma:.3f}"] for p in curve]
    print(
        f"\nstorage/repair-bandwidth trade-off (B={B:g}, k={k}, d={d})\n"
        + format_table(["point", "alpha", "gamma"], rows)
    )
    assert curve[0].gamma == pytest.approx(msr.gamma, rel=1e-6)
    assert curve[-1].gamma == pytest.approx(mbr.gamma, rel=1e-6)
