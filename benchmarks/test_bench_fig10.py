"""Benchmark: regenerate Figure 10 (transmission vs computation time)."""

from __future__ import annotations

import pytest

from repro.experiments.fig10 import run_fig10
from repro.experiments.report import render_fig10


def test_fig10_both_panels(benchmark, scale):
    runs, stripes = scale
    result = benchmark.pedantic(
        run_fig10,
        kwargs={"runs": runs, "num_stripes": stripes},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_fig10(result))
    # Panel (a) shape: transmission dominates for every bar.
    for row in result.rows:
        assert row.transmission_ratio > 0.6, (row.config_name, row.strategy)
    # Panel (a) shape: computation share shrinks as k grows (RR and CAR).
    for strategy in ("RR", "CAR"):
        shares = {
            r.config_name: r.computation_ratio
            for r in result.rows
            if r.strategy == strategy
        }
        assert shares["CFS3"] < shares["CFS1"], strategy
    # Panel (b) shape: CAR's total decode time within ~25 % of RR's
    # (the paper reports ~10 %; heterogeneity across delegates widens it
    # slightly at reduced run counts).
    for name, ratio in result.normalized_computation.items():
        assert 0.7 < ratio < 1.35, name
