"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so the package installs in fully offline environments where the
``wheel`` package (required for PEP 660 editable builds) is unavailable
and pip falls back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CAR: cross-rack-aware single failure recovery for erasure-coded "
        "clustered file systems (reproduction of Shen, Shu, Lee - DSN 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro-car = repro.cli:main"]},
)
