"""Repair algebra: splitting a repair vector into per-rack partial decodes.

This module implements the algebra behind Section IV-C of the paper.
Reconstruction of a lost chunk under a linear MDS code is the linear
combination ``H_lost = sum_i y_i * H'_i`` over ``k`` helper chunks
(Equation 6).  Because field addition is associative, the sum can be
regrouped by rack: each rack computes its *partially decoded chunk*
``sum_{i in rack} y_i * H'_i`` (Equation 7) and ships exactly one
chunk-sized buffer; the replacement node XORs the per-rack partials.

:func:`split_repair_vector` performs the grouping; :class:`PartialDecodePlan`
carries it; :func:`execute_partial_decode` runs it on real buffers so the
byte-exactness of the regrouping is directly testable.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import CodingError
from repro.erasure.code import ErasureCode
from repro.gf.field import gf
from repro.gf.vector import dot_rows

__all__ = [
    "AggregationGroup",
    "PartialDecodePlan",
    "split_repair_vector",
    "execute_partial_decode",
    "combine_partials",
]


@dataclass(frozen=True)
class AggregationGroup:
    """One rack's share of a repair: which helpers it combines, and how.

    Attributes:
        group_key: opaque identifier of the rack (or aggregation domain).
        helper_indices: chunk indices (within the stripe) this group reads.
        coefficients: matching repair-vector coefficients, same order.
    """

    group_key: Hashable
    helper_indices: tuple[int, ...]
    coefficients: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.helper_indices) != len(self.coefficients):
            raise CodingError("helper/coefficient length mismatch in group")
        if not self.helper_indices:
            raise CodingError("aggregation group must not be empty")

    @property
    def size(self) -> int:
        """Number of chunks this group aggregates."""
        return len(self.helper_indices)


@dataclass(frozen=True)
class PartialDecodePlan:
    """A complete per-rack decomposition of one chunk repair.

    Attributes:
        lost_index: stripe-local index of the chunk being rebuilt.
        groups: one :class:`AggregationGroup` per participating rack.
    """

    lost_index: int
    groups: tuple[AggregationGroup, ...]

    @property
    def helper_count(self) -> int:
        """Total helpers across all groups (always ``k``)."""
        return sum(g.size for g in self.groups)

    @property
    def group_count(self) -> int:
        """Number of aggregation domains (racks) involved."""
        return len(self.groups)

    def group_for(self, key: Hashable) -> AggregationGroup:
        """Return the group with the given key.

        Raises:
            KeyError: if no group has that key.
        """
        for g in self.groups:
            if g.group_key == key:
                return g
        raise KeyError(key)


def split_repair_vector(
    code: ErasureCode,
    lost_index: int,
    helper_indices: Sequence[int],
    group_of: Mapping[int, Hashable],
) -> PartialDecodePlan:
    """Group a repair vector by aggregation domain (rack).

    Args:
        code: the erasure code of the stripe.
        lost_index: index of the lost chunk.
        helper_indices: exactly ``k`` surviving chunk indices to use.
        group_of: maps each helper index to its rack key.

    Returns:
        A :class:`PartialDecodePlan` whose groups partition the helpers.

    Raises:
        CodingError: if a helper has no group assignment.
    """
    helpers = list(helper_indices)
    y = code.repair_vector(lost_index, helpers)
    by_group: dict[Hashable, list[tuple[int, int]]] = {}
    for idx, coeff in zip(helpers, y):
        if idx not in group_of:
            raise CodingError(f"helper chunk {idx} has no rack assignment")
        by_group.setdefault(group_of[idx], []).append((idx, coeff))
    groups = tuple(
        AggregationGroup(
            group_key=key,
            helper_indices=tuple(i for i, _ in pairs),
            coefficients=tuple(c for _, c in pairs),
        )
        for key, pairs in by_group.items()
    )
    return PartialDecodePlan(lost_index=lost_index, groups=groups)


def execute_partial_decode(
    code: ErasureCode,
    plan: PartialDecodePlan,
    chunks: Mapping[int, np.ndarray],
) -> dict[Hashable, np.ndarray]:
    """Compute each rack's partially decoded chunk from real buffers.

    Args:
        code: the stripe's erasure code (supplies the field width).
        plan: the per-rack decomposition.
        chunks: helper chunk index -> buffer.

    Returns:
        group key -> partially decoded buffer (one chunk-sized buffer per
        rack, per the paper's aggregation claim).
    """
    field = gf(code.w)
    partials: dict[Hashable, np.ndarray] = {}
    for group in plan.groups:
        try:
            bufs = [chunks[i] for i in group.helper_indices]
        except KeyError as exc:
            raise CodingError(f"missing helper chunk {exc.args[0]}") from exc
        partials[group.group_key] = dot_rows(
            field, list(group.coefficients), bufs
        )
    return partials


def combine_partials(
    code: ErasureCode, partials: Mapping[Hashable, np.ndarray]
) -> np.ndarray:
    """XOR per-rack partials into the reconstructed chunk.

    This is the replacement node's final step (Algorithm 1, line 6).
    """
    if not partials:
        raise CodingError("no partials to combine")
    bufs = list(partials.values())
    out = bufs[0].copy()
    for b in bufs[1:]:
        np.bitwise_xor(out, b, out=out)
    return out
