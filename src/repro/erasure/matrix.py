"""Dense matrix algebra over GF(2^w).

Matrices are stored as 2-D numpy arrays of the field's element dtype and
wrapped in :class:`GFMatrix`, which provides multiplication, Gauss-Jordan
inversion, rank, and the classical erasure-coding constructors
(Vandermonde, Cauchy, and their systematic reductions).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import CodingError, FieldError, SingularMatrixError
from repro.gf.field import GaloisField

__all__ = ["GFMatrix"]


class GFMatrix:
    """An ``r x c`` matrix with entries in GF(2^w).

    The underlying numpy array is owned by the instance; constructors
    copy their input.  All arithmetic stays within the field.
    """

    __slots__ = ("field", "data")

    def __init__(self, field: GaloisField, data: np.ndarray | Sequence[Sequence[int]]) -> None:
        arr = np.array(data, dtype=field.tables.dtype, copy=True)
        if arr.ndim != 2:
            raise FieldError(f"matrix data must be 2-D, got shape {arr.shape}")
        if arr.size and int(arr.max()) >= field.order:
            raise FieldError(
                f"matrix contains values outside GF(2^{field.w})"
            )
        self.field = field
        self.data = arr

    # -- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, field: GaloisField, rows: int, cols: int) -> "GFMatrix":
        """The ``rows x cols`` all-zero matrix."""
        return cls(field, np.zeros((rows, cols), dtype=field.tables.dtype))

    @classmethod
    def identity(cls, field: GaloisField, n: int) -> "GFMatrix":
        """The ``n x n`` identity matrix."""
        return cls(field, np.eye(n, dtype=field.tables.dtype))

    @classmethod
    def vandermonde(cls, field: GaloisField, rows: int, cols: int) -> "GFMatrix":
        """Vandermonde matrix ``V[i, j] = (i)^j`` over the field.

        Rows are indexed by the field elements ``0, 1, 2, ...`` (with the
        convention ``0^0 = 1``).  Any ``cols`` rows of this matrix are
        linearly independent when the row indices are distinct elements,
        which is what makes it an MDS generator.
        """
        if rows > field.order:
            raise CodingError(
                f"a {rows}-row Vandermonde matrix needs {rows} distinct "
                f"elements but GF(2^{field.w}) has only {field.order}"
            )
        out = np.zeros((rows, cols), dtype=field.tables.dtype)
        for i in range(rows):
            acc = 1
            for j in range(cols):
                out[i, j] = acc
                acc = field.mul(acc, i)
        return cls(field, out)

    @classmethod
    def cauchy(
        cls, field: GaloisField, xs: Sequence[int], ys: Sequence[int]
    ) -> "GFMatrix":
        """Cauchy matrix ``C[i, j] = 1 / (xs[i] + ys[j])``.

        Requires all ``xs[i] + ys[j]`` nonzero and the xs (resp. ys)
        pairwise distinct; every square submatrix is then invertible.
        """
        if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
            raise CodingError("Cauchy construction requires distinct xs and ys")
        out = np.zeros((len(xs), len(ys)), dtype=field.tables.dtype)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                s = field.add(x, y)
                if s == 0:
                    raise CodingError(
                        f"Cauchy construction: xs[{i}] + ys[{j}] == 0"
                    )
                out[i, j] = field.inv(s)
        return cls(field, out)

    # -- shape / access ---------------------------------------------------

    @property
    def rows(self) -> int:
        """Number of rows."""
        return int(self.data.shape[0])

    @property
    def cols(self) -> int:
        """Number of columns."""
        return int(self.data.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, cols)``."""
        return (self.rows, self.cols)

    def __getitem__(self, idx: tuple[int, int]) -> int:
        return int(self.data[idx])

    def row(self, i: int) -> np.ndarray:
        """Copy of row ``i``."""
        return self.data[i, :].copy()

    def take_rows(self, indices: Sequence[int]) -> "GFMatrix":
        """New matrix consisting of the given rows, in order."""
        return GFMatrix(self.field, self.data[list(indices), :])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFMatrix)
            and other.field == self.field
            and other.data.shape == self.data.shape
            and bool(np.array_equal(other.data, self.data))
        )

    def __hash__(self) -> int:  # pragma: no cover - matrices are rarely hashed
        return hash((self.field, self.data.tobytes(), self.shape))

    def __repr__(self) -> str:
        return f"GFMatrix(GF(2^{self.field.w}), shape={self.shape})"

    def copy(self) -> "GFMatrix":
        """Deep copy."""
        return GFMatrix(self.field, self.data)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "GFMatrix") -> "GFMatrix":
        self._check_compat(other)
        if other.shape != self.shape:
            raise FieldError(f"shape mismatch: {self.shape} vs {other.shape}")
        return GFMatrix(self.field, np.bitwise_xor(self.data, other.data))

    def _check_compat(self, other: "GFMatrix") -> None:
        if other.field != self.field:
            raise FieldError("matrices are over different fields")

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        self._check_compat(other)
        if self.cols != other.rows:
            raise FieldError(
                f"cannot multiply {self.shape} by {other.shape}"
            )
        f = self.field
        out = np.zeros((self.rows, other.cols), dtype=f.tables.dtype)
        # Row-by-row schoolbook multiply through the log tables; matrix
        # dimensions here are tiny (k + m <= ~20) so clarity wins.
        for i in range(self.rows):
            for j in range(other.cols):
                acc = 0
                for t in range(self.cols):
                    acc ^= f.mul(int(self.data[i, t]), int(other.data[t, j]))
                out[i, j] = acc
        return GFMatrix(f, out)

    def mul_vector(self, vec: Sequence[int]) -> list[int]:
        """Matrix-vector product over the field."""
        if len(vec) != self.cols:
            raise FieldError(f"vector length {len(vec)} != cols {self.cols}")
        f = self.field
        out = []
        for i in range(self.rows):
            acc = 0
            for t in range(self.cols):
                acc ^= f.mul(int(self.data[i, t]), int(vec[t]))
            out.append(acc)
        return out

    def transpose(self) -> "GFMatrix":
        """Matrix transpose."""
        return GFMatrix(self.field, self.data.T)

    # -- elimination ------------------------------------------------------

    def invert(self) -> "GFMatrix":
        """Inverse via Gauss-Jordan elimination.

        Raises:
            SingularMatrixError: if the matrix is not square or singular.
        """
        if self.rows != self.cols:
            raise SingularMatrixError(f"cannot invert non-square {self.shape}")
        n = self.rows
        f = self.field
        # Work in a wide augmented matrix [A | I].
        aug = np.zeros((n, 2 * n), dtype=np.int64)
        aug[:, :n] = self.data
        aug[:, n:] = np.eye(n, dtype=np.int64)
        for col in range(n):
            pivot = next(
                (r for r in range(col, n) if aug[r, col] != 0), None
            )
            if pivot is None:
                raise SingularMatrixError("matrix is singular over the field")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            inv_p = f.inv(int(aug[col, col]))
            for j in range(2 * n):
                aug[col, j] = f.mul(int(aug[col, j]), inv_p)
            for r in range(n):
                if r == col or aug[r, col] == 0:
                    continue
                factor = int(aug[r, col])
                for j in range(2 * n):
                    aug[r, j] ^= f.mul(factor, int(aug[col, j]))
        return GFMatrix(f, aug[:, n:])

    def rank(self) -> int:
        """Rank over the field (row echelon form)."""
        f = self.field
        work = self.data.astype(np.int64, copy=True)
        rank = 0
        for col in range(self.cols):
            pivot = next(
                (r for r in range(rank, self.rows) if work[r, col] != 0), None
            )
            if pivot is None:
                continue
            if pivot != rank:
                work[[rank, pivot]] = work[[pivot, rank]]
            inv_p = f.inv(int(work[rank, col]))
            for j in range(self.cols):
                work[rank, j] = f.mul(int(work[rank, j]), inv_p)
            for r in range(self.rows):
                if r == rank or work[r, col] == 0:
                    continue
                factor = int(work[r, col])
                for j in range(self.cols):
                    work[r, j] ^= f.mul(factor, int(work[rank, j]))
            rank += 1
            if rank == self.rows:
                break
        return rank

    def is_invertible(self) -> bool:
        """True iff square and full-rank."""
        return self.rows == self.cols and self.rank() == self.rows

    # -- linear solving -----------------------------------------------------

    def independent_rows(self) -> list[int]:
        """Indices of a maximal linearly independent subset of rows.

        Greedy: rows are considered in order and kept iff they increase
        the rank — so the returned list is the lexicographically first
        basis, which decode paths use to prefer low-index (data) chunks.
        """
        f = self.field
        work = self.data.astype(np.int64, copy=True)
        kept: list[int] = []
        pivot_cols: list[int] = []
        for r in range(self.rows):
            # Reduce row r by previously chosen pivots.
            row = work[r].copy()
            for prow, pcol in zip(kept, pivot_cols):
                factor = int(row[pcol])
                if factor:
                    for j in range(self.cols):
                        row[j] ^= f.mul(factor, int(work[prow, j]))
            nonzero = np.nonzero(row)[0]
            if nonzero.size == 0:
                continue
            pcol = int(nonzero[0])
            inv_p = f.inv(int(row[pcol]))
            for j in range(self.cols):
                row[j] = f.mul(int(row[j]), inv_p)
            work[r] = row
            kept.append(r)
            pivot_cols.append(pcol)
            if len(kept) == self.cols:
                break
        return kept

    def solve_right(self, rhs: Sequence[int]) -> list[int]:
        """Solve ``x @ self == rhs`` for a row vector ``x``.

        Used to express one generator row (``rhs``) as a combination of
        helper rows (``self``) — the general repair-vector computation
        for non-MDS codes, where fewer than ``cols`` helpers may
        suffice.

        Raises:
            SingularMatrixError: if ``rhs`` is not in the row span.
        """
        if len(rhs) != self.cols:
            raise FieldError(
                f"rhs length {len(rhs)} does not match cols {self.cols}"
            )
        f = self.field
        # Gaussian elimination on the transposed system:
        # self^T (cols x rows) @ x^T = rhs^T.
        a = self.data.T.astype(np.int64)  # (cols, rows)
        aug = np.zeros((self.cols, self.rows + 1), dtype=np.int64)
        aug[:, : self.rows] = a
        aug[:, self.rows] = [f.check(int(v)) for v in rhs]
        n_rows, n_cols = self.cols, self.rows
        pivots: list[tuple[int, int]] = []
        row_idx = 0
        for col in range(n_cols):
            pivot = next(
                (r for r in range(row_idx, n_rows) if aug[r, col] != 0), None
            )
            if pivot is None:
                continue
            if pivot != row_idx:
                aug[[row_idx, pivot]] = aug[[pivot, row_idx]]
            inv_p = f.inv(int(aug[row_idx, col]))
            for j in range(n_cols + 1):
                aug[row_idx, j] = f.mul(int(aug[row_idx, j]), inv_p)
            for r in range(n_rows):
                if r == row_idx or aug[r, col] == 0:
                    continue
                factor = int(aug[r, col])
                for j in range(n_cols + 1):
                    aug[r, j] ^= f.mul(factor, int(aug[row_idx, j]))
            pivots.append((row_idx, col))
            row_idx += 1
            if row_idx == n_rows:
                break
        # Inconsistency check: a zero row with nonzero rhs.
        for r in range(row_idx, n_rows):
            if aug[r, n_cols] != 0 and not aug[r, :n_cols].any():
                raise SingularMatrixError(
                    "target row is not in the span of the helper rows"
                )
        x = [0] * n_cols
        for r, c in pivots:
            x[c] = int(aug[r, n_cols])
        # Verify (also catches inconsistent systems with free variables).
        if self.field is not None:
            check = GFMatrix(self.field, [x]) @ self
            if [int(v) for v in check.data[0]] != [
                f.check(int(v)) for v in rhs
            ]:
                raise SingularMatrixError(
                    "target row is not in the span of the helper rows"
                )
        return x

    # -- systematic reduction ----------------------------------------------

    def to_systematic(self) -> "GFMatrix":
        """Reduce a ``(k+m) x k`` generator so its top ``k`` rows are I.

        Column operations (equivalently, right-multiplication by the
        inverse of the top square block) preserve the MDS property while
        making the code systematic.  This is the standard Vandermonde →
        systematic-RS transformation.

        Raises:
            SingularMatrixError: if the top ``k x k`` block is singular.
        """
        k = self.cols
        if self.rows < k:
            raise SingularMatrixError(
                f"generator must have at least cols={k} rows, got {self.rows}"
            )
        top = GFMatrix(self.field, self.data[:k, :])
        return self @ top.invert()
