"""Product-Matrix MSR regenerating codes — Rashmi, Shah, Kumar (2011).

The paper's related work (Section II-B) cites regenerating codes
(Dimakis et al.) as the information-theoretic answer to repair traffic:
at the *minimum-storage* (MSR) point, a failed node downloads
``d * B / (k * (d - k + 1))`` symbols from ``d`` helpers instead of
``B`` symbols from ``k``.  The product-matrix construction realises the
MSR point for ``d = 2k - 2`` with ``beta = 1``:

- each node stores ``alpha = k - 1`` symbols (the node's *content*);
- the ``B = k (k - 1)`` message symbols fill two symmetric
  ``alpha x alpha`` matrices ``S1, S2``;
- node ``i``'s content is ``psi_i^T M`` with ``M = [S1; S2]`` and
  ``psi_i = [phi_i^T, lambda_i phi_i^T]`` a Vandermonde row;
- **repair**: each of ``d`` helpers sends the single symbol
  ``psi_j^T M phi_f``; the replacement inverts the ``d x d`` helper
  matrix to get ``M phi_f = [S1 phi_f; S2 phi_f]`` and, using the
  symmetry of ``S1, S2``, reassembles ``phi_f^T S1 + lambda_f phi_f^T
  S2`` — exactly its lost content.

Repair downloads ``d = 2(k - 1)`` symbols to rebuild ``alpha = k - 1``
symbols: a **2x** blowup, versus the ``k x`` blowup of RS — the bound
CAR's cross-rack traffic is compared against in the analysis bench.

:class:`RackAwareMSRCode` lifts the construction to the paper's
two-tier network (Chen & Barg, arXiv:1901.04419): code nodes are racks,
each rack's content is striped over ``u`` physical nodes, and because
every product-matrix operation is elementwise over packet positions,
repairing one *node* runs the rack-level repair on that node's slice
only.  Each of ``dbar`` helper racks ships exactly one packet across
the core — meeting the rack-aware cut-set bound
``dbar * alpha / (dbar - kbar + 1)`` with equality — while intra-rack
reads are free, exactly the cost model CAR is built on.

Symbols here are numpy buffers (packets), so all claims are verified on
real bytes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GaloisField, gf
from repro.gf.vector import buffer_dtype, dot_rows

__all__ = ["PMMSRCode", "RackAwareMSRCode"]


class PMMSRCode:
    """Product-matrix MSR code with ``d = 2k - 2`` and ``beta = 1``.

    Args:
        n: number of storage nodes (``n > d``).
        k: reconstruction threshold (``k >= 2``).
        w: GF(2^w) width.

    Attributes:
        d: helpers contacted per repair (``2k - 2``).
        alpha: symbols stored per node (``k - 1``).
        B: message symbols per stripe (``k * (k - 1)``).
    """

    def __init__(self, n: int, k: int, w: int = 8) -> None:
        if k < 2:
            raise InvalidCodeParametersError("PM-MSR requires k >= 2")
        d = 2 * k - 2
        if n <= d:
            raise InvalidCodeParametersError(
                f"PM-MSR requires n > d = {d}, got n = {n}"
            )
        self.n = n
        self.k = k
        self.d = d
        self.alpha = k - 1
        self.B = k * (k - 1)
        self.w = w
        self.field: GaloisField = gf(w)
        if n + 1 >= self.field.order:
            raise InvalidCodeParametersError(
                f"n = {n} does not fit GF(2^{w})"
            )
        self._xs = self._pick_points()
        self._phi = self._build_phi()
        self._lambdas = [
            self.field.pow(x, self.alpha) for x in self._xs
        ]
        self._psi = self._build_psi()

    # -- construction ------------------------------------------------------

    def _pick_points(self) -> list[int]:
        """Distinct nonzero x_i with pairwise-distinct x_i^alpha.

        Distinct lambdas are required for the repair interference
        cancellation; greedily select candidates.
        """
        xs: list[int] = []
        seen_lambda: set[int] = set()
        for candidate in range(1, self.field.order):
            lam = self.field.pow(candidate, self.alpha)
            if lam in seen_lambda:
                continue
            xs.append(candidate)
            seen_lambda.add(lam)
            if len(xs) == self.n:
                return xs
        raise InvalidCodeParametersError(
            f"cannot find {self.n} points with distinct lambda in GF(2^{self.w})"
        )

    def _build_phi(self) -> GFMatrix:
        f = self.field
        rows = []
        for x in self._xs:
            acc, row = 1, []
            for _ in range(self.alpha):
                row.append(acc)
                acc = f.mul(acc, x)
            rows.append(row)
        return GFMatrix(f, rows)

    def _build_psi(self) -> GFMatrix:
        f = self.field
        rows = []
        for i in range(self.n):
            phi_row = [int(v) for v in self._phi.data[i]]
            lam = self._lambdas[i]
            rows.append(phi_row + [f.mul(lam, int(v)) for v in phi_row])
        return GFMatrix(f, rows)

    # -- message layout -----------------------------------------------------

    def _message_matrices(
        self, packets: Sequence[np.ndarray]
    ) -> list[list[np.ndarray | None]]:
        """Arrange B packets into M = [S1; S2] (symmetric blocks).

        Returns M as a (d x alpha) grid of packet references.
        """
        if len(packets) != self.B:
            raise CodingError(
                f"PM-MSR encodes exactly B={self.B} packets, got {len(packets)}"
            )
        a = self.alpha
        per_block = a * (a + 1) // 2
        grid: list[list[np.ndarray | None]] = [
            [None] * a for _ in range(self.d)
        ]
        idx = 0
        for block in range(2):
            base = block * a
            for r in range(a):
                for c in range(r, a):
                    grid[base + r][c] = packets[idx]
                    grid[base + c][r] = packets[idx]
                    idx += 1
        assert idx == 2 * per_block == self.B
        return grid

    # -- encode ------------------------------------------------------------

    def _check_packets(self, packets: Sequence[np.ndarray]) -> None:
        dtype = buffer_dtype(self.field)
        shapes = {p.shape for p in packets}
        if len(shapes) > 1:
            raise CodingError(f"packets have differing shapes: {shapes}")
        for p in packets:
            if p.dtype != dtype:
                raise CodingError(
                    f"packet dtype {p.dtype} does not match field dtype {dtype}"
                )

    def encode(self, packets: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        """Encode B message packets into per-node contents.

        Returns ``n`` contents, each a list of ``alpha`` packets
        (node ``i``'s content is ``psi_i^T M``).
        """
        self._check_packets(packets)
        m = self._message_matrices(packets)
        contents: list[list[np.ndarray]] = []
        for i in range(self.n):
            psi = [int(v) for v in self._psi.data[i]]
            row = []
            for col in range(self.alpha):
                column = [m[r][col] for r in range(self.d)]
                row.append(dot_rows(self.field, psi, column))
            contents.append(row)
        return contents

    # -- decode (any k nodes) -------------------------------------------------

    def _coefficient_row(self, node: int, col: int) -> list[int]:
        """Coefficients of stored symbol (node, col) over the B packets."""
        f = self.field
        psi = [int(v) for v in self._psi.data[node]]
        coeffs = [0] * self.B
        a = self.alpha
        per_block = a * (a + 1) // 2

        def packet_index(block: int, r: int, c: int) -> int:
            lo, hi = min(r, c), max(r, c)
            # index of (lo, hi) in the upper-triangle enumeration
            offset = lo * a - lo * (lo - 1) // 2 + (hi - lo)
            return block * per_block + offset

        for r in range(self.d):
            block, rr = divmod(r, a)
            coeffs[packet_index(block, rr, col)] ^= psi[r]
        return coeffs

    def decode(
        self, contents: Mapping[int, Sequence[np.ndarray]]
    ) -> list[np.ndarray]:
        """Reconstruct all B packets from any ``k`` node contents."""
        nodes = sorted(contents)[: self.k]
        if len(nodes) < self.k:
            raise InsufficientChunksError(
                f"decode needs k={self.k} nodes, got {len(contents)}"
            )
        rows = []
        bufs = []
        for node in nodes:
            content = list(contents[node])
            if len(content) != self.alpha:
                raise CodingError(
                    f"node {node} content must have alpha={self.alpha} packets"
                )
            for col in range(self.alpha):
                rows.append(self._coefficient_row(node, col))
                bufs.append(content[col])
        system = GFMatrix(self.field, rows)  # B x B
        inverse = system.invert()
        out = []
        for r in range(self.B):
            coeffs = [int(v) for v in inverse.data[r]]
            out.append(dot_rows(self.field, coeffs, bufs))
        return out

    # -- repair ------------------------------------------------------------

    def repair_symbol(
        self, helper: int, failed: int, helper_content: Sequence[np.ndarray]
    ) -> np.ndarray:
        """What helper ``helper`` sends: ``psi_helper^T M phi_failed``.

        One packet — this is beta = 1, the whole point of MSR.
        """
        if helper == failed:
            raise CodingError("a failed node cannot help its own repair")
        phi_f = [int(v) for v in self._phi.data[failed]]
        if len(helper_content) != self.alpha:
            raise CodingError(
                f"helper content must have alpha={self.alpha} packets"
            )
        return dot_rows(self.field, phi_f, list(helper_content))

    def repair(
        self, failed: int, symbols: Mapping[int, np.ndarray]
    ) -> list[np.ndarray]:
        """Rebuild node ``failed`` from ``d`` helper repair symbols.

        Args:
            failed: index of the failed node.
            symbols: helper node -> the packet from :meth:`repair_symbol`.

        Returns:
            The failed node's ``alpha`` content packets.
        """
        helpers = sorted(symbols)
        if len(helpers) != self.d:
            raise InsufficientChunksError(
                f"repair needs exactly d={self.d} helpers, got {len(helpers)}"
            )
        if failed in helpers:
            raise CodingError("helper set must not contain the failed node")
        f = self.field
        # Invert the d x d matrix of helper psi rows to recover
        # M phi_f = [S1 phi_f ; S2 phi_f].
        psi_rows = self._psi.take_rows(helpers)
        inverse = psi_rows.invert()
        bufs = [symbols[h] for h in helpers]
        m_phi = []
        for r in range(self.d):
            coeffs = [int(v) for v in inverse.data[r]]
            m_phi.append(dot_rows(f, coeffs, bufs))
        s1_phi = m_phi[: self.alpha]
        s2_phi = m_phi[self.alpha :]
        # Content col c of node f: phi_f^T S1 e_c + lambda_f phi_f^T S2 e_c
        # = (S1 phi_f)[c] + lambda_f (S2 phi_f)[c] by symmetry.
        lam = self._lambdas[failed]
        out = []
        for c in range(self.alpha):
            buf = s1_phi[c].copy()
            from repro.gf.vector import axpy

            axpy(f, lam, s2_phi[c], buf)
            out.append(buf)
        return out

    # -- metrics ------------------------------------------------------------

    def repair_traffic_ratio(self) -> float:
        """Downloaded symbols per repaired symbol: ``d / alpha`` (= 2)."""
        return self.d / self.alpha

    def rs_equivalent_repair_ratio(self) -> float:
        """What an RS code with the same (B, k) downloads per repaired
        symbol: ``k`` (read k nodes' worth to rebuild one)."""
        return float(self.k)

    def __reduce__(self):
        # The field/Vandermonde state is derived from (n, k, w); rebuild
        # from the constructor so instances ship cheaply to pool workers.
        return (self.__class__, (self.n, self.k, self.w))

    def __repr__(self) -> str:
        return (
            f"PMMSRCode(n={self.n}, k={self.k}, d={self.d}, "
            f"alpha={self.alpha}, B={self.B}, w={self.w})"
        )


class RackAwareMSRCode:
    """Rack-aware MSR code: a product-matrix MSR code over racks,
    striped across the ``u`` nodes of each rack.

    The two-tier model (Chen & Barg, arXiv:1901.04419): ``nbar`` racks
    of ``u`` nodes each; intra-rack transfer is free, only cross-rack
    packets count.  Rack ``i`` plays code node ``i`` of a
    :class:`PMMSRCode` ``(nbar, kbar)`` with ``dbar = 2 kbar - 2``.  The
    rack's ``alpha = kbar - 1`` super-symbols are striped so node ``j``
    of every rack holds packet-slice ``j`` — i.e. ``u`` independent
    product-matrix instances run side by side, instance ``j`` living
    entirely on the ``j``-th node of each rack.

    Repairing one *node* ``(rack f, slot j)`` therefore runs the
    rack-level repair on instance ``j`` alone: node ``j`` of each of
    ``dbar`` helper racks computes its repair symbol locally (free) and
    ships **one packet** across the core.  Cross-rack download is
    ``dbar`` packets for ``alpha`` packets rebuilt — exactly the
    rack-aware MSR bound ``dbar * alpha / (dbar - kbar + 1)`` with
    equality, and no intra-rack traffic at all.

    Any ``kbar`` complete racks reconstruct the whole stripe (the code
    is MDS over racks, not over arbitrary nodes — losing a full rack
    costs one code node).

    Args:
        nbar: number of racks (``nbar > 2 kbar - 2``).
        kbar: rack-level reconstruction threshold (``kbar >= 2``).
        u: nodes per rack (stripe slices).
        w: GF(2^w) width.

    Attributes:
        dbar: helper racks contacted per repair.
        alpha: packets stored per node.
        B: message packets per stripe (``u * kbar * (kbar - 1)``).
    """

    def __init__(self, nbar: int, kbar: int, u: int, w: int = 8) -> None:
        if u < 1:
            raise InvalidCodeParametersError(
                f"rack-aware MSR needs u >= 1 nodes per rack, got {u}"
            )
        self.rack_code = PMMSRCode(nbar, kbar, w)
        self.nbar = nbar
        self.kbar = kbar
        self.u = u
        self.w = w
        self.dbar = self.rack_code.d
        self.alpha = self.rack_code.alpha
        self.B = self.rack_code.B * u

    @property
    def num_nodes(self) -> int:
        """Physical nodes across all racks."""
        return self.nbar * self.u

    # -- encode ------------------------------------------------------------

    def encode(
        self, packets: Sequence[np.ndarray]
    ) -> list[list[list[np.ndarray]]]:
        """Encode ``B`` message packets into per-node contents.

        Message packet ``b * u + j`` belongs to stripe instance ``j``.
        Returns ``contents[rack][slot]`` = that node's ``alpha`` packets.
        """
        if len(packets) != self.B:
            raise CodingError(
                f"rack-aware MSR encodes exactly B={self.B} packets, "
                f"got {len(packets)}"
            )
        per_instance: list[list[list[np.ndarray]]] = [
            self.rack_code.encode(list(packets[j :: self.u]))
            for j in range(self.u)
        ]
        return [
            [per_instance[j][rack] for j in range(self.u)]
            for rack in range(self.nbar)
        ]

    # -- decode (any kbar complete racks) -----------------------------------

    def decode(
        self, racks: Mapping[int, Sequence[Sequence[np.ndarray]]]
    ) -> list[np.ndarray]:
        """Reconstruct all ``B`` packets from any ``kbar`` rack contents.

        Args:
            racks: rack id -> that rack's ``u x alpha`` content grid.
        """
        if len(racks) < self.kbar:
            raise InsufficientChunksError(
                f"decode needs kbar={self.kbar} racks, got {len(racks)}"
            )
        for rack, grid in racks.items():
            if len(grid) != self.u:
                raise CodingError(
                    f"rack {rack} content must have u={self.u} node slots"
                )
        out: list[np.ndarray | None] = [None] * self.B
        for j in range(self.u):
            instance = self.rack_code.decode(
                {rack: list(grid[j]) for rack, grid in racks.items()}
            )
            for b, packet in enumerate(instance):
                out[b * self.u + j] = packet
        return [p for p in out if p is not None]

    # -- repair ------------------------------------------------------------

    def repair_symbol(
        self,
        helper_rack: int,
        failed_rack: int,
        slot: int,
        helper_node_content: Sequence[np.ndarray],
    ) -> np.ndarray:
        """The one packet node ``(helper_rack, slot)`` ships cross-rack.

        Computed entirely from that node's own ``alpha`` packets — no
        intra-rack gathering is needed, so a single-node repair costs
        **zero** intra-rack traffic on the helper side.
        """
        if not 0 <= slot < self.u:
            raise CodingError(f"slot {slot} out of range for u={self.u}")
        return self.rack_code.repair_symbol(
            helper_rack, failed_rack, list(helper_node_content)
        )

    def repair_node(
        self, failed_rack: int, slot: int, symbols: Mapping[int, np.ndarray]
    ) -> list[np.ndarray]:
        """Rebuild node ``(failed_rack, slot)`` from ``dbar`` helper packets.

        Args:
            symbols: helper rack -> the packet from :meth:`repair_symbol`.

        Returns:
            The node's ``alpha`` content packets, byte-identical to what
            :meth:`encode` placed there.
        """
        if not 0 <= slot < self.u:
            raise CodingError(f"slot {slot} out of range for u={self.u}")
        return self.rack_code.repair(failed_rack, symbols)

    # -- metrics ------------------------------------------------------------

    def cross_rack_repair_packets(self) -> int:
        """Packets crossing the core per single-node repair: ``dbar``."""
        return self.dbar

    def cross_rack_chunk_units(self) -> float:
        """Cross-rack download per repair in node-chunk units:
        ``dbar / alpha`` (= 2 at the ``dbar = 2 kbar - 2`` point)."""
        return self.dbar / self.alpha

    def storage_overhead(self) -> float:
        """Raw-to-useful storage ratio: ``nbar / kbar``."""
        return self.nbar / self.kbar

    def __reduce__(self):
        return (self.__class__, (self.nbar, self.kbar, self.u, self.w))

    def __repr__(self) -> str:
        return (
            f"RackAwareMSRCode(nbar={self.nbar}, kbar={self.kbar}, "
            f"u={self.u}, dbar={self.dbar}, alpha={self.alpha}, "
            f"B={self.B}, w={self.w})"
        )
