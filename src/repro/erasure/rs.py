"""Systematic Reed-Solomon codes over GF(2^w).

Two classical constructions are provided, selected by ``construction``:

- ``"vandermonde"`` (default): start from the ``(k+m) x k`` Vandermonde
  matrix over distinct field elements and right-multiply by the inverse
  of its top square block so the first ``k`` rows become the identity.
  Column operations preserve the any-k-rows-invertible (MDS) property.
- ``"cauchy"``: stack the identity on an ``m x k`` Cauchy matrix with
  disjoint coordinate sets; every square submatrix of a Cauchy matrix is
  invertible, so the code is MDS by construction.

Decoding any erasure pattern reduces to inverting the ``k x k`` submatrix
of the generator formed by the surviving rows (Equation 4 of the paper);
single-chunk repair uses the *repair vector* ``y = g_lost · X``
(Equation 6), which is also the quantity CAR splits per rack for partial
decoding.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.cache import BoundedCache
from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.code import ErasureCode
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GaloisField, gf
from repro.gf.vector import buffer_dtype, dot_rows, matrix_apply

__all__ = ["RSCode", "default_width_for"]

_CONSTRUCTIONS = ("vandermonde", "cauchy")


def default_width_for(k: int, m: int) -> int:
    """Smallest supported field width that fits a ``(k, m)`` code.

    A ``(k, m)`` RS code needs ``k + m`` distinct evaluation points for
    the Vandermonde construction (and ``k + m`` disjoint coordinates for
    Cauchy), so we need ``2^w >= k + m`` with a little headroom for the
    Cauchy coordinate split.  Widths below 8 are never chosen by default
    because chunk buffers carry whole bytes (GF(2^4) is available
    explicitly for algebra-level work, not byte-buffer coding).
    """
    for w in (8, 16):
        if (1 << w) >= k + m + 1:
            return w
    raise InvalidCodeParametersError(f"no supported field fits k+m={k + m}")


class RSCode(ErasureCode):
    """A systematic MDS ``(k, m)`` Reed-Solomon code.

    Args:
        k: number of data chunks per stripe (``>= 1``).
        m: number of parity chunks per stripe (``>= 1``).
        w: field width; defaults to the smallest width that fits.
        construction: ``"vandermonde"`` or ``"cauchy"``.

    Raises:
        InvalidCodeParametersError: if the parameters cannot form an MDS
            code in the chosen field.
    """

    def __init__(
        self,
        k: int,
        m: int,
        w: int | None = None,
        construction: str = "vandermonde",
    ) -> None:
        if k < 1 or m < 1:
            raise InvalidCodeParametersError(f"k and m must be >= 1, got ({k}, {m})")
        if construction not in _CONSTRUCTIONS:
            raise InvalidCodeParametersError(
                f"unknown construction {construction!r}; choose from {_CONSTRUCTIONS}"
            )
        if w is None:
            w = default_width_for(k, m)
        field = gf(w)
        if k + m + 1 > field.order:
            raise InvalidCodeParametersError(
                f"(k={k}, m={m}) does not fit in GF(2^{w})"
            )
        self.k = k
        self.m = m
        self.w = w
        self.construction = construction
        self.field: GaloisField = field
        self.generator: GFMatrix = self._build_generator()
        # Cache decode matrices keyed by the surviving-row tuple and
        # repair vectors keyed by (lost, helpers); repair is called once
        # per stripe during recovery and patterns repeat heavily.
        self._inverse_cache = BoundedCache(maxsize=512, name="rs.decode_matrix")
        self._repair_cache = BoundedCache(maxsize=2048, name="rs.repair_vector")

    def __reduce__(self):
        # Rebuild from parameters: the generator is deterministic and the
        # caches warm back up — keeps cluster states cheap to ship to
        # process-pool experiment workers.
        return (RSCode, (self.k, self.m, self.w, self.construction))

    # -- construction -----------------------------------------------------

    def _build_generator(self) -> GFMatrix:
        if self.construction == "vandermonde":
            vand = GFMatrix.vandermonde(self.field, self.k + self.m, self.k)
            return vand.to_systematic()
        # Cauchy: xs are the parity coordinates, ys the data coordinates.
        ys = list(range(self.k))
        xs = list(range(self.k, self.k + self.m))
        cauchy = GFMatrix.cauchy(self.field, xs, ys)
        ident = GFMatrix.identity(self.field, self.k)
        stacked = np.vstack([ident.data, cauchy.data])
        return GFMatrix(self.field, stacked)

    @property
    def parity_rows(self) -> np.ndarray:
        """The ``m x k`` parity part of the generator matrix."""
        return self.generator.data[self.k :, :]

    # -- encode / decode -----------------------------------------------------

    def _check_chunks(self, chunks: Sequence[np.ndarray]) -> int:
        sizes = {c.shape for c in chunks}
        if len(sizes) > 1:
            raise CodingError(f"chunks have differing shapes: {sizes}")
        dtype = buffer_dtype(self.field)
        for c in chunks:
            if c.dtype != dtype:
                raise CodingError(
                    f"chunk dtype {c.dtype} does not match field dtype {dtype}"
                )
        return len(chunks)

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity chunks from the ``k`` data chunks."""
        if len(data_chunks) != self.k:
            raise CodingError(
                f"encode expects exactly k={self.k} data chunks, got {len(data_chunks)}"
            )
        self._check_chunks(data_chunks)
        return matrix_apply(self.field, self.parity_rows, list(data_chunks))

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Return the full stripe: the data chunks followed by parity."""
        return list(data_chunks) + self.encode(data_chunks)

    def _invert_rows(self, rows: tuple[int, ...]) -> GFMatrix:
        """Inverse of the generator's submatrix for the given row indices."""
        return self._inverse_cache.get_or_build(
            rows, lambda: self.generator.take_rows(list(rows)).invert()
        )

    def decode(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct all ``k`` data chunks from any ``k`` available chunks."""
        if len(available) < self.k:
            raise InsufficientChunksError(
                f"need at least k={self.k} chunks, got {len(available)}"
            )
        indices = sorted(available)[: self.k]
        for i in indices:
            if not 0 <= i < self.n:
                raise CodingError(f"chunk index {i} out of range for n={self.n}")
        bufs = [available[i] for i in indices]
        self._check_chunks(bufs)
        inverse = self._invert_rows(tuple(indices))
        return matrix_apply(self.field, inverse.data, bufs)

    def decode_all(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct the *entire* stripe (data + parity chunks)."""
        data = self.decode(available)
        return self.encode_stripe(data)

    # -- single-failure repair ------------------------------------------------

    def _repair_vector_uncached(self, lost_index: int, helpers: tuple[int, ...]) -> tuple[int, ...]:
        """``y = g_lost · X`` as one vectorised log/exp pass.

        The double loop over ``mul`` calls is replaced with table
        gathers: products are ``exp[log[a] + log[b]]`` computed for the
        whole ``k x k`` operand grid at once, zero operands masked out,
        then XOR-reduced down the columns.
        """
        inverse = self._invert_rows(helpers)
        t = self.field.tables
        g_lost = self.generator.row(lost_index).astype(np.int64)
        x = inverse.data.astype(np.int64)
        nonzero = (g_lost[:, None] != 0) & (x != 0)
        logs = t.log[g_lost][:, None] + t.log[x]
        logs[~nonzero] = 0  # log[0] is a sentinel; keep indices in range
        products = t.exp[logs]
        products[~nonzero] = 0
        return tuple(int(v) for v in np.bitwise_xor.reduce(products, axis=0))

    def repair_vector(
        self, lost_index: int, helper_indices: Sequence[int]
    ) -> list[int]:
        """Coefficients ``y = g_lost · X`` over the chosen helpers.

        ``X`` is the inverse of the generator submatrix for the helper
        rows; the returned list is ordered to match ``helper_indices``.
        The result is cached per ``(lost_index, helpers)`` — recovery
        plans repeat the same few helper patterns across stripes.
        """
        if not 0 <= lost_index < self.n:
            raise CodingError(f"lost index {lost_index} out of range")
        helpers = tuple(helper_indices)
        if len(helpers) != self.k:
            raise InsufficientChunksError(
                f"repair needs exactly k={self.k} helpers, got {len(helpers)}"
            )
        if lost_index in helpers:
            raise CodingError("helper set must not contain the lost chunk")
        if len(set(helpers)) != len(helpers):
            raise CodingError("helper indices must be distinct")
        return list(
            self._repair_cache.get_or_build(
                (lost_index, helpers),
                lambda: self._repair_vector_uncached(lost_index, helpers),
            )
        )

    def reconstruct(
        self, lost_index: int, helpers: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild one chunk from exactly ``k`` helper chunks."""
        indices = sorted(helpers)
        y = self.repair_vector(lost_index, indices)
        bufs = [helpers[i] for i in indices]
        self._check_chunks(bufs)
        return dot_rows(self.field, y, bufs)

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RSCode)
            and (other.k, other.m, other.w, other.construction)
            == (self.k, self.m, self.w, self.construction)
        )

    def __hash__(self) -> int:
        return hash((self.k, self.m, self.w, self.construction))

    def __repr__(self) -> str:
        return (
            f"RSCode(k={self.k}, m={self.m}, w={self.w}, "
            f"construction={self.construction!r})"
        )
