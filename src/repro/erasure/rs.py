"""Systematic Reed-Solomon codes over GF(2^w).

Two classical constructions are provided, selected by ``construction``:

- ``"vandermonde"`` (default): start from the ``(k+m) x k`` Vandermonde
  matrix over distinct field elements and right-multiply by the inverse
  of its top square block so the first ``k`` rows become the identity.
  Column operations preserve the any-k-rows-invertible (MDS) property.
- ``"cauchy"``: stack the identity on an ``m x k`` Cauchy matrix with
  disjoint coordinate sets; every square submatrix of a Cauchy matrix is
  invertible, so the code is MDS by construction.

Decoding any erasure pattern reduces to inverting the ``k x k`` submatrix
of the generator formed by the surviving rows (Equation 4 of the paper);
single-chunk repair uses the *repair vector* ``y = g_lost · X``
(Equation 6), which is also the quantity CAR splits per rack for partial
decoding.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from functools import lru_cache

import numpy as np

from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.erasure.code import ErasureCode
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GaloisField, gf
from repro.gf.vector import buffer_dtype, dot_rows, matrix_apply

__all__ = ["RSCode", "default_width_for"]

_CONSTRUCTIONS = ("vandermonde", "cauchy")


def default_width_for(k: int, m: int) -> int:
    """Smallest supported field width that fits a ``(k, m)`` code.

    A ``(k, m)`` RS code needs ``k + m`` distinct evaluation points for
    the Vandermonde construction (and ``k + m`` disjoint coordinates for
    Cauchy), so we need ``2^w >= k + m`` with a little headroom for the
    Cauchy coordinate split.  Widths below 8 are never chosen by default
    because chunk buffers carry whole bytes (GF(2^4) is available
    explicitly for algebra-level work, not byte-buffer coding).
    """
    for w in (8, 16):
        if (1 << w) >= k + m + 1:
            return w
    raise InvalidCodeParametersError(f"no supported field fits k+m={k + m}")


class RSCode(ErasureCode):
    """A systematic MDS ``(k, m)`` Reed-Solomon code.

    Args:
        k: number of data chunks per stripe (``>= 1``).
        m: number of parity chunks per stripe (``>= 1``).
        w: field width; defaults to the smallest width that fits.
        construction: ``"vandermonde"`` or ``"cauchy"``.

    Raises:
        InvalidCodeParametersError: if the parameters cannot form an MDS
            code in the chosen field.
    """

    def __init__(
        self,
        k: int,
        m: int,
        w: int | None = None,
        construction: str = "vandermonde",
    ) -> None:
        if k < 1 or m < 1:
            raise InvalidCodeParametersError(f"k and m must be >= 1, got ({k}, {m})")
        if construction not in _CONSTRUCTIONS:
            raise InvalidCodeParametersError(
                f"unknown construction {construction!r}; choose from {_CONSTRUCTIONS}"
            )
        if w is None:
            w = default_width_for(k, m)
        field = gf(w)
        if k + m + 1 > field.order:
            raise InvalidCodeParametersError(
                f"(k={k}, m={m}) does not fit in GF(2^{w})"
            )
        self.k = k
        self.m = m
        self.w = w
        self.construction = construction
        self.field: GaloisField = field
        self.generator: GFMatrix = self._build_generator()
        # Cache decode matrices keyed by the surviving-row tuple; repair is
        # called once per stripe during recovery and patterns repeat.
        self._inverse_cache = lru_cache(maxsize=512)(self._invert_rows)

    # -- construction -----------------------------------------------------

    def _build_generator(self) -> GFMatrix:
        if self.construction == "vandermonde":
            vand = GFMatrix.vandermonde(self.field, self.k + self.m, self.k)
            return vand.to_systematic()
        # Cauchy: xs are the parity coordinates, ys the data coordinates.
        ys = list(range(self.k))
        xs = list(range(self.k, self.k + self.m))
        cauchy = GFMatrix.cauchy(self.field, xs, ys)
        ident = GFMatrix.identity(self.field, self.k)
        stacked = np.vstack([ident.data, cauchy.data])
        return GFMatrix(self.field, stacked)

    @property
    def parity_rows(self) -> np.ndarray:
        """The ``m x k`` parity part of the generator matrix."""
        return self.generator.data[self.k :, :]

    # -- encode / decode -----------------------------------------------------

    def _check_chunks(self, chunks: Sequence[np.ndarray]) -> int:
        sizes = {c.shape for c in chunks}
        if len(sizes) > 1:
            raise CodingError(f"chunks have differing shapes: {sizes}")
        dtype = buffer_dtype(self.field)
        for c in chunks:
            if c.dtype != dtype:
                raise CodingError(
                    f"chunk dtype {c.dtype} does not match field dtype {dtype}"
                )
        return len(chunks)

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity chunks from the ``k`` data chunks."""
        if len(data_chunks) != self.k:
            raise CodingError(
                f"encode expects exactly k={self.k} data chunks, got {len(data_chunks)}"
            )
        self._check_chunks(data_chunks)
        return matrix_apply(self.field, self.parity_rows, list(data_chunks))

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Return the full stripe: the data chunks followed by parity."""
        return list(data_chunks) + self.encode(data_chunks)

    def _invert_rows(self, rows: tuple[int, ...]) -> GFMatrix:
        """Inverse of the generator's submatrix for the given row indices."""
        return self.generator.take_rows(list(rows)).invert()

    def decode(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct all ``k`` data chunks from any ``k`` available chunks."""
        if len(available) < self.k:
            raise InsufficientChunksError(
                f"need at least k={self.k} chunks, got {len(available)}"
            )
        indices = sorted(available)[: self.k]
        for i in indices:
            if not 0 <= i < self.n:
                raise CodingError(f"chunk index {i} out of range for n={self.n}")
        bufs = [available[i] for i in indices]
        self._check_chunks(bufs)
        inverse = self._inverse_cache(tuple(indices))
        return matrix_apply(self.field, inverse.data, bufs)

    def decode_all(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct the *entire* stripe (data + parity chunks)."""
        data = self.decode(available)
        return self.encode_stripe(data)

    # -- single-failure repair ------------------------------------------------

    def repair_vector(
        self, lost_index: int, helper_indices: Sequence[int]
    ) -> list[int]:
        """Coefficients ``y = g_lost · X`` over the chosen helpers.

        ``X`` is the inverse of the generator submatrix for the helper
        rows; the returned list is ordered to match ``helper_indices``.
        """
        if not 0 <= lost_index < self.n:
            raise CodingError(f"lost index {lost_index} out of range")
        helpers = list(helper_indices)
        if len(helpers) != self.k:
            raise InsufficientChunksError(
                f"repair needs exactly k={self.k} helpers, got {len(helpers)}"
            )
        if lost_index in helpers:
            raise CodingError("helper set must not contain the lost chunk")
        if len(set(helpers)) != len(helpers):
            raise CodingError("helper indices must be distinct")
        inverse = self._inverse_cache(tuple(helpers))
        g_lost = self.generator.row(lost_index).tolist()
        # y = g_lost (1 x k) times X (k x k)
        f = self.field
        y = []
        for col in range(self.k):
            acc = 0
            for t in range(self.k):
                acc ^= f.mul(int(g_lost[t]), int(inverse.data[t, col]))
            y.append(acc)
        return y

    def reconstruct(
        self, lost_index: int, helpers: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild one chunk from exactly ``k`` helper chunks."""
        indices = sorted(helpers)
        y = self.repair_vector(lost_index, indices)
        bufs = [helpers[i] for i in indices]
        self._check_chunks(bufs)
        return dot_rows(self.field, y, bufs)

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RSCode)
            and (other.k, other.m, other.w, other.construction)
            == (self.k, self.m, self.w, self.construction)
        )

    def __hash__(self) -> int:
        return hash((self.k, self.m, self.w, self.construction))

    def __repr__(self) -> str:
        return (
            f"RSCode(k={self.k}, m={self.m}, w={self.w}, "
            f"construction={self.construction!r})"
        )
