"""XOR-based array codes (related-work substrate).

RDP and X-Code plus the hybrid single-failure-recovery optimisers that
the paper's related work (Xiang'10, Khan'12, Zhu'12) built for them.
Used by the ablation benches to contrast intra-stripe I/O minimisation
with CAR's cross-rack traffic minimisation.
"""

from repro.erasure.xorcodes.arraycode import ArrayCode, ParitySet, Symbol
from repro.erasure.xorcodes.hybrid import (
    HybridSolution,
    balanced_split_rdp,
    conventional_reads,
    enumerate_optimal,
    greedy_hybrid,
    recovery_options,
)
from repro.erasure.xorcodes.rdp import RDPCode, is_prime
from repro.erasure.xorcodes.xcode import XCode

__all__ = [
    "ArrayCode",
    "ParitySet",
    "Symbol",
    "RDPCode",
    "XCode",
    "is_prime",
    "HybridSolution",
    "recovery_options",
    "conventional_reads",
    "enumerate_optimal",
    "greedy_hybrid",
    "balanced_split_rdp",
]
