"""X-Code — Xu & Bruck, IEEE Trans. Information Theory 1999.

X-Code is the other RAID-6 array code the paper's related work targets
(Xu et al., ToC 2014 study its single-failure recovery).  For a prime
``p`` the stripe is a ``p x p`` symbol array in which the first ``p-2``
rows hold data and the last two rows hold parity computed along
diagonals of slopes +1 and -1:

- ``C[p-2, i] = XOR_j C[j, (i + j + 2) mod p]``  (diagonal parity)
- ``C[p-1, i] = XOR_j C[j, (i - j - 2) mod p]``  (anti-diagonal parity)

with ``j`` ranging over the data rows ``0 .. p-3``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import InvalidCodeParametersError
from repro.erasure.xorcodes.arraycode import ArrayCode, ParitySet, Symbol
from repro.erasure.xorcodes.rdp import is_prime

__all__ = ["XCode"]


class XCode(ArrayCode):
    """X-Code over a prime ``p``: ``(k = p-2, m = 2)`` per-disk, XOR-only."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 5:
            raise InvalidCodeParametersError(
                f"X-Code requires a prime p >= 5, got {p}"
            )
        self.p = p
        self.rows = p
        self.disks = p

    @property
    def k(self) -> int:
        """Equivalent data-disk count (storage efficiency (p-2)/p)."""
        return self.p - 2

    @property
    def m(self) -> int:
        """Equivalent parity-disk count (always 2)."""
        return 2

    @lru_cache(maxsize=None)
    def parity_sets(self) -> tuple[ParitySet, ...]:
        p = self.p
        sets: list[ParitySet] = []
        for i in range(p):
            diag = {(j, (i + j + 2) % p) for j in range(p - 2)}
            diag.add((p - 2, i))
            sets.append(ParitySet(kind="diagonal", index=i, symbols=frozenset(diag)))
        for i in range(p):
            anti = {(j, (i - j - 2) % p) for j in range(p - 2)}
            anti.add((p - 1, i))
            sets.append(
                ParitySet(kind="antidiagonal", index=i, symbols=frozenset(anti))
            )
        return tuple(sets)

    def data_symbols(self) -> tuple[Symbol, ...]:
        return tuple(
            (r, d) for d in range(self.p) for r in range(self.p - 2)
        )

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        p = self.p
        for i in range(p):
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for j in range(p - 2):
                np.bitwise_xor(acc, stripe[j, (i + j + 2) % p], out=acc)
            stripe[p - 2, i, :] = acc
        for i in range(p):
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for j in range(p - 2):
                np.bitwise_xor(acc, stripe[j, (i - j - 2) % p], out=acc)
            stripe[p - 1, i, :] = acc
        return stripe
