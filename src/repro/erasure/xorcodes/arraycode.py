"""Base machinery for XOR-based array codes (RDP, X-Code).

The paper's related-work section (II-B/II-C) contrasts CAR with
single-failure recovery schemes built for XOR-based array codes.  We
implement the two canonical RAID-6 array codes it cites — RDP (Corbett
et al., FAST'04) and X-Code (Xu & Bruck, IT'99) — so the benchmark suite
can situate CAR's RS-based recovery against the hybrid-recovery line of
work (Xiang et al., SIGMETRICS'10; Khan et al., FAST'12).

An array code stripe is a ``rows x disks`` array of equal-sized
*symbols*; each disk (column) stores ``rows`` symbols.  Parity is
computed with XOR only.  Symbols are numpy ``uint8`` buffers.

A *parity set* is the fundamental recovery unit: a maximal set of symbol
coordinates that XOR to zero.  Any one symbol of a parity set can be
rebuilt by XORing the others.  Concrete codes enumerate their parity
sets; generic erase/recover logic lives here.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import CodingError, InsufficientChunksError

__all__ = ["Symbol", "ParitySet", "ArrayCode"]

#: Coordinate of a symbol within a stripe: (row, disk).
Symbol = tuple[int, int]


@dataclass(frozen=True)
class ParitySet:
    """A set of symbol coordinates whose XOR is zero.

    Attributes:
        kind: label of the parity family ("row", "diagonal", ...).
        index: which parity group within the family.
        symbols: the member coordinates.
    """

    kind: str
    index: int
    symbols: frozenset[Symbol]

    def peers_of(self, symbol: Symbol) -> frozenset[Symbol]:
        """The other members, i.e. what must be read to rebuild ``symbol``."""
        if symbol not in self.symbols:
            raise CodingError(f"{symbol} not in parity set {self.kind}#{self.index}")
        return self.symbols - {symbol}


class ArrayCode(abc.ABC):
    """An XOR-based array code over a ``rows x disks`` symbol grid."""

    #: Number of symbol rows per stripe.
    rows: int
    #: Number of disks (columns) per stripe.
    disks: int

    @abc.abstractmethod
    def parity_sets(self) -> tuple[ParitySet, ...]:
        """All parity sets of the code."""

    @abc.abstractmethod
    def data_symbols(self) -> tuple[Symbol, ...]:
        """Coordinates holding user data, in canonical order."""

    @abc.abstractmethod
    def encode(self, stripe: np.ndarray) -> np.ndarray:
        """Fill the parity symbols of ``stripe`` in place and return it.

        ``stripe`` has shape ``(rows, disks, symbol_len)``.
        """

    # -- generic helpers -------------------------------------------------

    def all_symbols(self) -> tuple[Symbol, ...]:
        """Every coordinate in the grid."""
        return tuple((r, d) for r in range(self.rows) for d in range(self.disks))

    def parity_sets_containing(self, symbol: Symbol) -> tuple[ParitySet, ...]:
        """Parity sets that include ``symbol`` (its recovery options)."""
        return tuple(ps for ps in self.parity_sets() if symbol in ps.symbols)

    def empty_stripe(self, symbol_len: int) -> np.ndarray:
        """Zeroed stripe array of shape ``(rows, disks, symbol_len)``."""
        return np.zeros((self.rows, self.disks, symbol_len), dtype=np.uint8)

    def make_stripe(self, data: Sequence[np.ndarray]) -> np.ndarray:
        """Build and encode a stripe from per-symbol data buffers.

        Args:
            data: one buffer per entry of :meth:`data_symbols`, in order.
        """
        symbols = self.data_symbols()
        if len(data) != len(symbols):
            raise CodingError(
                f"expected {len(symbols)} data symbols, got {len(data)}"
            )
        lengths = {len(b) for b in data}
        if len(lengths) != 1:
            raise CodingError("data symbols must all have the same length")
        stripe = self.empty_stripe(lengths.pop())
        for (r, d), buf in zip(symbols, data):
            stripe[r, d, :] = buf
        return self.encode(stripe)

    def verify_stripe(self, stripe: np.ndarray) -> bool:
        """True iff every parity set of ``stripe`` XORs to zero."""
        for ps in self.parity_sets():
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for r, d in ps.symbols:
                np.bitwise_xor(acc, stripe[r, d], out=acc)
            if acc.any():
                return False
        return True

    def recover_disk(
        self,
        stripe: np.ndarray,
        failed_disk: int,
        choice: Mapping[Symbol, ParitySet] | None = None,
    ) -> tuple[np.ndarray, set[Symbol]]:
        """Rebuild every symbol of ``failed_disk``; return (stripe, reads).

        Args:
            stripe: the stripe with the failed column zeroed (its content
                is ignored and overwritten).
            failed_disk: column index to rebuild.
            choice: optional map from each lost symbol to the parity set
                used to rebuild it; defaults to the first available set.
                This is the knob hybrid recovery optimises.

        Returns:
            The repaired stripe and the set of symbol coordinates read
            from surviving disks (the I/O cost hybrid recovery minimises).

        Raises:
            InsufficientChunksError: if some lost symbol has no parity
                set fully contained in the surviving symbols.
        """
        lost = [(r, failed_disk) for r in range(self.rows)]
        lost_set = set(lost)
        reads: set[Symbol] = set()
        repaired = stripe.copy()
        for sym in lost:
            options = self.parity_sets_containing(sym)
            if choice is not None and sym in choice:
                ps = choice[sym]
                if sym not in ps.symbols:
                    raise CodingError(f"chosen parity set does not cover {sym}")
            else:
                usable = [
                    p for p in options if not (p.symbols - {sym}) & lost_set
                ]
                if not usable:
                    raise InsufficientChunksError(
                        f"no usable parity set for symbol {sym}"
                    )
                ps = usable[0]
            peers = ps.peers_of(sym)
            if peers & lost_set:
                raise InsufficientChunksError(
                    f"parity set for {sym} references other lost symbols"
                )
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for r, d in peers:
                np.bitwise_xor(acc, repaired[r, d], out=acc)
                reads.add((r, d))
            repaired[sym[0], sym[1], :] = acc
        return repaired, reads

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rows={self.rows}, disks={self.disks})"
