"""RDP (Row-Diagonal Parity) code — Corbett et al., FAST 2004.

RDP is the double-fault-tolerant array code the paper cites as the
prototypical XOR-based code that prior single-failure-recovery work
(Xiang et al., SIGMETRICS'10) optimises.  For a prime ``p`` the stripe
is a ``(p-1) x (p+1)`` symbol array:

- disks ``0 .. p-2``: data,
- disk ``p-1``: row parity,
- disk ``p``: diagonal parity.

Row parity set ``i``: all symbols of row ``i`` on disks ``0..p-1``.
Diagonal parity set ``d`` (``0 <= d <= p-2``): the symbols ``(i, j)``
with ``(i + j) mod p == d`` over disks ``0..p-1`` plus the parity symbol
``(d, p)``.  Diagonal ``p-1`` is the *missing diagonal* and has no
parity set.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import InvalidCodeParametersError
from repro.erasure.xorcodes.arraycode import ArrayCode, ParitySet, Symbol

__all__ = ["RDPCode", "is_prime"]


def is_prime(n: int) -> bool:
    """Primality test for the small moduli used by array codes."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class RDPCode(ArrayCode):
    """RDP over a prime ``p``: ``(k = p-1, m = 2)`` with XOR-only parity."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise InvalidCodeParametersError(f"RDP requires a prime p >= 3, got {p}")
        self.p = p
        self.rows = p - 1
        self.disks = p + 1

    @property
    def k(self) -> int:
        """Number of data disks."""
        return self.p - 1

    @property
    def m(self) -> int:
        """Number of parity disks (always 2)."""
        return 2

    @lru_cache(maxsize=None)
    def parity_sets(self) -> tuple[ParitySet, ...]:
        p = self.p
        sets: list[ParitySet] = []
        for i in range(p - 1):
            members = frozenset((i, j) for j in range(p))
            sets.append(ParitySet(kind="row", index=i, symbols=members))
        for d in range(p - 1):
            members = {
                ((d - j) % p, j)
                for j in range(p)
                if (d - j) % p <= p - 2
            }
            members.add((d, p))
            sets.append(ParitySet(kind="diagonal", index=d, symbols=frozenset(members)))
        return tuple(sets)

    def data_symbols(self) -> tuple[Symbol, ...]:
        return tuple(
            (r, d) for d in range(self.p - 1) for r in range(self.p - 1)
        )

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        p = self.p
        # Row parity (disk p-1) over the data disks.
        for i in range(p - 1):
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for j in range(p - 1):
                np.bitwise_xor(acc, stripe[i, j], out=acc)
            stripe[i, p - 1, :] = acc
        # Diagonal parity (disk p) over disks 0..p-1 including row parity.
        for d in range(p - 1):
            acc = np.zeros(stripe.shape[2], dtype=np.uint8)
            for j in range(p):
                i = (d - j) % p
                if i <= p - 2:
                    np.bitwise_xor(acc, stripe[i, j], out=acc)
            stripe[d, p, :] = acc
        return stripe
