"""Hybrid single-failure recovery for XOR array codes.

Implements the recovery-optimisation line of work the paper builds on:

- **Exhaustive enumeration** (Khan et al., FAST'12): try every
  combination of per-symbol parity-set choices and keep the one reading
  the fewest distinct symbols.  Exponential, only viable for small ``p``.
- **Greedy overlap search** (in the spirit of Zhu et al., MSST'12): pick
  parity sets one lost symbol at a time, preferring the choice that
  reuses already-read symbols.
- **Balanced split heuristic** (Xiang et al., SIGMETRICS'10 for RDP):
  rebuild roughly half the lost symbols from row parity and half from
  diagonal parity, which achieves the proven ~25 % I/O saving for RDP.

These exist so the benchmark suite can contrast *intra-stripe I/O
minimisation* (this module) with CAR's *cross-rack traffic minimisation*
— the paper's point is that the two objectives differ in a CFS.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InsufficientChunksError, RecoveryError
from repro.erasure.xorcodes.arraycode import ArrayCode, ParitySet, Symbol

__all__ = [
    "HybridSolution",
    "recovery_options",
    "conventional_reads",
    "enumerate_optimal",
    "greedy_hybrid",
    "balanced_split_rdp",
]


@dataclass(frozen=True)
class HybridSolution:
    """A per-symbol parity-set assignment and its read cost.

    Attributes:
        choice: lost symbol -> parity set used to rebuild it.
        reads: distinct surviving symbols read.
    """

    choice: dict[Symbol, ParitySet]
    reads: frozenset[Symbol]

    @property
    def read_count(self) -> int:
        """Number of distinct symbols read (the metric being minimised)."""
        return len(self.reads)


def recovery_options(
    code: ArrayCode, failed_disk: int
) -> list[tuple[Symbol, tuple[ParitySet, ...]]]:
    """For each lost symbol, the parity sets usable under a single failure.

    A parity set is usable iff, apart from the lost symbol itself, it
    touches no other symbol of the failed disk.
    """
    lost = [(r, failed_disk) for r in range(code.rows)]
    lost_set = set(lost)
    out: list[tuple[Symbol, tuple[ParitySet, ...]]] = []
    for sym in lost:
        usable = tuple(
            ps
            for ps in code.parity_sets_containing(sym)
            if not (ps.symbols - {sym}) & lost_set
        )
        if not usable:
            raise InsufficientChunksError(f"symbol {sym} is unrecoverable")
        out.append((sym, usable))
    return out


def _solution_from_choice(
    options: Sequence[tuple[Symbol, tuple[ParitySet, ...]]],
    picks: Sequence[ParitySet],
) -> HybridSolution:
    choice: dict[Symbol, ParitySet] = {}
    reads: set[Symbol] = set()
    for (sym, _), ps in zip(options, picks):
        choice[sym] = ps
        reads |= ps.peers_of(sym)
    return HybridSolution(choice=choice, reads=frozenset(reads))


def conventional_reads(code: ArrayCode, failed_disk: int) -> HybridSolution:
    """The conventional (non-hybrid) recovery: first usable set per symbol.

    For RDP this is all-row-parity recovery, reading ``(p-1)^2`` symbols
    — the baseline the hybrid literature improves on.
    """
    options = recovery_options(code, failed_disk)
    return _solution_from_choice(options, [opts[0] for _, opts in options])


def enumerate_optimal(
    code: ArrayCode, failed_disk: int, max_combinations: int = 1 << 16
) -> HybridSolution:
    """Exhaustively find the minimum-read hybrid solution.

    Raises:
        RecoveryError: if the search space exceeds ``max_combinations``
            (use :func:`greedy_hybrid` instead for large codes).
    """
    options = recovery_options(code, failed_disk)
    total = 1
    for _, opts in options:
        total *= len(opts)
    if total > max_combinations:
        raise RecoveryError(
            f"enumeration space {total} exceeds limit {max_combinations}"
        )
    best: HybridSolution | None = None
    for picks in itertools.product(*(opts for _, opts in options)):
        sol = _solution_from_choice(options, picks)
        if best is None or sol.read_count < best.read_count:
            best = sol
    assert best is not None  # options is non-empty for rows >= 1
    return best


def greedy_hybrid(code: ArrayCode, failed_disk: int) -> HybridSolution:
    """Greedy overlap-maximising hybrid recovery (near-optimal, fast).

    Processes lost symbols in order of fewest options first; for each,
    picks the parity set whose peers add the fewest *new* reads.
    """
    options = recovery_options(code, failed_disk)
    options.sort(key=lambda item: len(item[1]))
    choice: dict[Symbol, ParitySet] = {}
    reads: set[Symbol] = set()
    for sym, opts in options:
        best_ps = min(opts, key=lambda ps: len(ps.peers_of(sym) - reads))
        choice[sym] = best_ps
        reads |= best_ps.peers_of(sym)
    return HybridSolution(choice=choice, reads=frozenset(reads))


def balanced_split_rdp(code: ArrayCode, failed_disk: int) -> HybridSolution:
    """Xiang et al.'s balanced row/diagonal split for an RDP data disk.

    Rebuilds the first ``ceil(rows / 2)`` lost symbols via row parity and
    the rest via diagonal parity (when available), which for RDP attains
    the proven optimal ~3/4 of conventional reads asymptotically.
    """
    options = recovery_options(code, failed_disk)
    half = (len(options) + 1) // 2
    picks: list[ParitySet] = []
    for rank, (sym, opts) in enumerate(options):
        by_kind = {ps.kind: ps for ps in opts}
        if rank < half:
            picks.append(by_kind.get("row", opts[0]))
        else:
            picks.append(by_kind.get("diagonal", opts[0]))
    return _solution_from_choice(options, picks)
