"""Local Reconstruction Codes (LRC) — Huang et al., USENIX ATC 2012.

The paper's related work (Section II-B) cites LRC as the other main
answer to expensive single-failure repair: trade a little extra storage
for *locality*.  An ``LRC(k, l, g)`` code stores

- ``k`` data chunks, split into ``l`` equal local groups,
- ``l`` local parity chunks (one XOR parity per group), and
- ``g`` global parity chunks (Reed-Solomon-style rows),

so a lost data chunk is rebuilt from its ``k/l`` group mates plus the
group's local parity instead of ``k`` chunks.  The code is linear but
*not* MDS: decode succeeds for any erasure pattern whose surviving
generator rows span the data space (which covers all patterns of up to
``g + 1`` erasures with the construction below, the "Maximally
Recoverable" regime Azure targets for its (12, 2, 2) code).

Chunk index layout: ``0..k-1`` data, ``k..k+l-1`` local parities (group
order), ``k+l..k+l+g-1`` global parities.

The CFS angle (and why this lives in a CAR reproduction): aligning each
local group with one rack makes a data-chunk repair *zero* cross-rack
traffic — the storage-vs-bandwidth trade-off the ablation bench
contrasts with CAR-over-RS.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.cache import BoundedCache
from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
    SingularMatrixError,
)
from repro.erasure.code import ErasureCode
from repro.erasure.matrix import GFMatrix
from repro.gf.field import GaloisField, gf
from repro.gf.vector import buffer_dtype, dot_rows, matrix_apply

__all__ = ["LRCCode"]


class LRCCode(ErasureCode):
    """A systematic ``LRC(k, l, g)`` code over GF(2^w).

    Args:
        k: data chunks per stripe (must be divisible by ``l``).
        l: number of local groups / local parity chunks.
        g: number of global parity chunks.
        w: field width (default: smallest that fits ``k + l + g``).

    Attributes:
        m: total parity count ``l + g`` (the :class:`ErasureCode` view).
    """

    def __init__(self, k: int, l: int, g: int, w: int | None = None) -> None:
        if k < 1 or l < 1 or g < 0:
            raise InvalidCodeParametersError(
                f"invalid LRC parameters (k={k}, l={l}, g={g})"
            )
        if k % l != 0:
            raise InvalidCodeParametersError(
                f"k={k} must be divisible by the group count l={l}"
            )
        if w is None:
            w = 8 if (1 << 8) >= k + l + g + 1 else 16
        field = gf(w)
        if k + l + g + 1 > field.order:
            raise InvalidCodeParametersError(
                f"LRC(k={k}, l={l}, g={g}) does not fit GF(2^{w})"
            )
        self.k = k
        self.l = l
        self.g = g
        self.m = l + g
        self.w = w
        self.field: GaloisField = field
        self.group_size = k // l
        self.generator: GFMatrix = self._build_generator()
        self._repair_cache = BoundedCache(maxsize=1024, name="lrc.repair_vector")

    def __reduce__(self):
        # Rebuild from parameters (generator is deterministic; the repair
        # cache warms back up) so the code pickles for process pools.
        return (LRCCode, (self.k, self.l, self.g, self.w))

    # -- construction ----------------------------------------------------

    def _build_generator(self) -> GFMatrix:
        f = self.field
        rows = np.zeros((self.n, self.k), dtype=f.tables.dtype)
        rows[: self.k, : self.k] = np.eye(self.k, dtype=f.tables.dtype)
        # Local parity rows: XOR of the group's data chunks.
        for group in range(self.l):
            row = self.k + group
            for j in self.group_members(group):
                rows[row, j] = 1
        # Global parity rows: Vandermonde over distinct nonzero points,
        # offset past 0/1 so they are independent of the local rows for
        # the recoverable patterns.
        for i in range(self.g):
            alpha = 2 + i
            acc = 1
            for j in range(self.k):
                rows[self.k + self.l + i, j] = acc
                acc = f.mul(acc, alpha)
        return GFMatrix(f, rows)

    # -- structure queries ---------------------------------------------------

    @property
    def n(self) -> int:
        """Total chunks per stripe: ``k + l + g``."""
        return self.k + self.l + self.g

    def group_of(self, index: int) -> int | None:
        """Local group of a chunk; None for global parities."""
        if 0 <= index < self.k:
            return index // self.group_size
        if self.k <= index < self.k + self.l:
            return index - self.k
        if index < self.n:
            return None
        raise CodingError(f"chunk index {index} out of range for n={self.n}")

    def group_members(self, group: int) -> tuple[int, ...]:
        """Data chunk indices of one local group."""
        if not 0 <= group < self.l:
            raise CodingError(f"group {group} out of range (l={self.l})")
        start = group * self.group_size
        return tuple(range(start, start + self.group_size))

    def local_parity_index(self, group: int) -> int:
        """Chunk index of a group's local parity."""
        if not 0 <= group < self.l:
            raise CodingError(f"group {group} out of range (l={self.l})")
        return self.k + group

    def is_global_parity(self, index: int) -> bool:
        """True iff ``index`` is one of the ``g`` global parities."""
        return self.k + self.l <= index < self.n

    def minimal_repair_helpers(self, lost_index: int) -> tuple[int, ...]:
        """The locality-optimal helper set for a single lost chunk.

        Data chunk or local parity -> the rest of its local group
        (``k/l`` chunks).  Global parity -> all ``k`` data chunks.
        """
        group = self.group_of(lost_index)
        if group is None:
            return tuple(range(self.k))
        members = set(self.group_members(group)) | {
            self.local_parity_index(group)
        }
        members.discard(lost_index)
        return tuple(sorted(members))

    def storage_overhead(self) -> float:
        """Raw-to-useful storage ratio ``n / k`` (non-MDS premium)."""
        return self.n / self.k

    # -- encode / decode -------------------------------------------------------

    def _check_chunks(self, chunks: Sequence[np.ndarray]) -> None:
        sizes = {c.shape for c in chunks}
        if len(sizes) > 1:
            raise CodingError(f"chunks have differing shapes: {sizes}")
        dtype = buffer_dtype(self.field)
        for c in chunks:
            if c.dtype != dtype:
                raise CodingError(
                    f"chunk dtype {c.dtype} does not match field dtype {dtype}"
                )

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``l + g`` parity chunks."""
        if len(data_chunks) != self.k:
            raise CodingError(
                f"encode expects k={self.k} data chunks, got {len(data_chunks)}"
            )
        self._check_chunks(data_chunks)
        return matrix_apply(
            self.field, self.generator.data[self.k :, :], list(data_chunks)
        )

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """The full stripe: data chunks followed by local then global parity."""
        return list(data_chunks) + self.encode(data_chunks)

    def is_recoverable(self, available: Sequence[int]) -> bool:
        """True iff the available chunks span the data space."""
        rows = self.generator.take_rows(sorted(set(available)))
        return rows.rank() == self.k

    def decode(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct all data chunks from any spanning available set.

        Raises:
            InsufficientChunksError: if the surviving rows do not span
                the data space (the pattern is unrecoverable).
        """
        indices = sorted(available)
        for i in indices:
            if not 0 <= i < self.n:
                raise CodingError(f"chunk index {i} out of range for n={self.n}")
        sub = self.generator.take_rows(indices)
        basis = sub.independent_rows()
        if len(basis) < self.k:
            raise InsufficientChunksError(
                f"available chunks {indices} do not span the data space "
                f"(rank {len(basis)} < k={self.k})"
            )
        chosen = [indices[b] for b in basis[: self.k]]
        square = self.generator.take_rows(chosen)
        inverse = square.invert()
        bufs = [available[i] for i in chosen]
        self._check_chunks(bufs)
        return matrix_apply(self.field, inverse.data, bufs)

    # -- repair ----------------------------------------------------------------

    def _repair_vector_cached(
        self, lost_index: int, helpers: tuple[int, ...]
    ) -> tuple[int, ...]:
        sub = self.generator.take_rows(list(helpers))
        target = [int(v) for v in self.generator.row(lost_index)]
        try:
            return tuple(sub.solve_right(target))
        except SingularMatrixError as exc:
            raise InsufficientChunksError(
                f"chunk {lost_index} cannot be repaired from helpers {helpers}"
            ) from exc

    def repair_vector(
        self, lost_index: int, helper_indices: Sequence[int]
    ) -> list[int]:
        """Coefficients over an arbitrary-size helper set.

        Unlike MDS RS codes, the helper set may be *smaller* than ``k``
        (local repair) — it only needs to span the lost row.
        """
        if not 0 <= lost_index < self.n:
            raise CodingError(f"lost index {lost_index} out of range")
        helpers = tuple(helper_indices)
        if lost_index in helpers:
            raise CodingError("helper set must not contain the lost chunk")
        if len(set(helpers)) != len(helpers):
            raise CodingError("helper indices must be distinct")
        return list(
            self._repair_cache.get_or_build(
                (lost_index, helpers),
                lambda: self._repair_vector_cached(lost_index, helpers),
            )
        )

    def reconstruct(
        self, lost_index: int, helpers: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild one chunk from any spanning helper set."""
        indices = sorted(helpers)
        y = self.repair_vector(lost_index, indices)
        bufs = [helpers[i] for i in indices]
        self._check_chunks(bufs)
        return dot_rows(self.field, y, bufs)

    def __repr__(self) -> str:
        return f"LRCCode(k={self.k}, l={self.l}, g={self.g}, w={self.w})"
