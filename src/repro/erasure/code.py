"""Abstract interface for erasure codes used by the recovery layer.

The recovery algorithms in :mod:`repro.recovery` only need three things
from a code: its parameters ``(k, m)``, the ability to encode/decode, and
— crucially for CAR — a *repair vector*: the coefficients ``y`` such that
a lost chunk equals ``sum_i y_i * H'_i`` over the chosen ``k`` helpers
(Equation 6 of the paper).  Any linear MDS code can provide this.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["ErasureCode"]


class ErasureCode(abc.ABC):
    """A systematic ``(k, m)`` linear erasure code over GF(2^w).

    Chunk indices run ``0 .. k+m-1``: indices ``< k`` are data chunks,
    the rest are parity chunks.  Chunks are 1-D numpy buffers of the
    field's element dtype, all the same length within a stripe.
    """

    #: Number of data chunks per stripe.
    k: int
    #: Number of parity chunks per stripe.
    m: int
    #: Field width in bits.
    w: int

    @property
    def n(self) -> int:
        """Total chunks per stripe (``k + m``)."""
        return self.k + self.m

    @abc.abstractmethod
    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity chunks from the ``k`` data chunks."""

    @abc.abstractmethod
    def decode(self, available: Mapping[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct all ``k`` data chunks from any ``k`` available chunks.

        Args:
            available: chunk index -> buffer; at least ``k`` entries.

        Returns:
            The ``k`` data chunks in index order.
        """

    @abc.abstractmethod
    def repair_vector(
        self, lost_index: int, helper_indices: Sequence[int]
    ) -> list[int]:
        """Coefficients ``y`` with ``H_lost = sum_i y[i] * H'_{helpers[i]}``.

        Args:
            lost_index: index of the chunk to reconstruct.
            helper_indices: exactly ``k`` distinct surviving chunk indices
                (must not contain ``lost_index``).
        """

    def reconstruct(
        self, lost_index: int, helpers: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild one lost chunk from exactly ``k`` helper chunks.

        Default implementation combines :meth:`repair_vector` with a
        field linear combination; concrete codes may override.
        """
        from repro.gf.field import gf
        from repro.gf.vector import dot_rows

        indices = sorted(helpers)
        y = self.repair_vector(lost_index, indices)
        return dot_rows(gf(self.w), y, [helpers[i] for i in indices])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, m={self.m}, w={self.w})"
