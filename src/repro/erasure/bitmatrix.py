"""Cauchy Reed-Solomon bit-matrix coding (CRS) — XOR-only encoding.

Jerasure (the library the paper's testbed uses) implements RS coding in
two ways: table-lookup GF multiplication, and *bit-matrix* coding
(Blömer et al.'s CRS): expand every GF(2^w) coefficient into a ``w x w``
binary matrix, view each chunk as ``w`` bit-packets, and compute parity
with XORs alone.  The two are algebraically identical; bit-matrix
encoding trades multiplications for a (schedulable) XOR sequence.

This module provides:

- :func:`gf_bitmatrix` — the ``w x w`` GF(2) matrix of "multiply by a";
- :func:`chunk_to_bitpackets` / :func:`bitpackets_to_chunk` — the
  bit-striped chunk view;
- :class:`BitmatrixEncoder` — XOR-only encode equivalent (bit-for-bit)
  to :class:`~repro.erasure.rs.RSCode` with the Cauchy construction,
  plus a flattened XOR schedule and operation counting;
- density optimisation à la Jerasure's *good* Cauchy matrices (row
  scaling to minimise the number of ones, hence XORs).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import CodingError
from repro.erasure.rs import RSCode
from repro.gf.field import GaloisField, gf

__all__ = [
    "gf_bitmatrix",
    "chunk_to_bitpackets",
    "bitpackets_to_chunk",
    "XorOp",
    "BitmatrixEncoder",
]


def gf_bitmatrix(field: GaloisField, a: int) -> np.ndarray:
    """The ``w x w`` GF(2) matrix of multiplication by ``a``.

    Column ``j`` holds the bits of ``a * x^j`` (i.e. ``a * 2^j`` in the
    field), so for a symbol with bit-vector ``v``, ``M @ v`` (mod 2) is
    the bit-vector of ``a * symbol``.
    """
    field.check(a)
    w = field.w
    out = np.zeros((w, w), dtype=bool)
    for j in range(w):
        prod = field.mul(a, 1 << j)
        for i in range(w):
            out[i, j] = bool((prod >> i) & 1)
    return out


def chunk_to_bitpackets(field: GaloisField, chunk: np.ndarray) -> np.ndarray:
    """Split a chunk into ``w`` bit-packets: ``packets[j][i]`` is bit
    ``j`` of element ``i``.  Shape ``(w, len(chunk))``, dtype bool."""
    w = field.w
    shifts = np.arange(w, dtype=chunk.dtype.type)
    return ((chunk[None, :] >> shifts[:, None]) & 1).astype(bool)


def bitpackets_to_chunk(field: GaloisField, packets: np.ndarray) -> np.ndarray:
    """Inverse of :func:`chunk_to_bitpackets`."""
    w = field.w
    if packets.shape[0] != w:
        raise CodingError(
            f"expected {w} bit-packets, got {packets.shape[0]}"
        )
    dtype = field.tables.dtype
    out = np.zeros(packets.shape[1], dtype=dtype)
    for j in range(w):
        out |= packets[j].astype(dtype) << dtype.type(j)
    return out


@dataclass(frozen=True)
class XorOp:
    """One scheduled XOR: parity packet += data packet.

    Attributes:
        src_chunk / src_packet: data-side operand coordinates.
        dst_chunk / dst_packet: parity-side accumulation target.
    """

    src_chunk: int
    src_packet: int
    dst_chunk: int
    dst_packet: int


class BitmatrixEncoder:
    """XOR-only encoder for a Cauchy RS code.

    Args:
        k / m / w: code parameters (the underlying GF matrix is the
            Cauchy parity block of ``RSCode(k, m, w,
            construction="cauchy")``, so outputs are bit-identical to
            the table-lookup encoder).
        optimize: scale each parity row by the inverse of its first
            coefficient (Jerasure's *good* matrix trick), reducing ones
            in the bit-matrix and therefore XORs.  The optimised code is
            a different — still MDS — code; equivalence with
            :class:`RSCode` holds only when ``optimize=False``.
    """

    def __init__(self, k: int, m: int, w: int = 8, optimize: bool = False) -> None:
        self.k = k
        self.m = m
        self.w = w
        self.optimize = optimize
        self.field = gf(w)
        self.rs = RSCode(k, m, w=w, construction="cauchy")
        coeffs = self.rs.parity_rows.astype(np.int64).copy()
        if optimize:
            f = self.field
            for row in range(m):
                inv = f.inv(int(coeffs[row, 0]))
                for col in range(k):
                    coeffs[row, col] = f.mul(int(coeffs[row, col]), inv)
        self.coefficients = coeffs
        self.bitmatrix = self._expand(coeffs)
        self._schedule: tuple[XorOp, ...] | None = None

    def _expand(self, coeffs: np.ndarray) -> np.ndarray:
        w = self.w
        out = np.zeros((self.m * w, self.k * w), dtype=bool)
        for i in range(self.m):
            for j in range(self.k):
                out[i * w : (i + 1) * w, j * w : (j + 1) * w] = gf_bitmatrix(
                    self.field, int(coeffs[i, j])
                )
        return out

    # -- schedule ---------------------------------------------------------

    @property
    def schedule(self) -> tuple[XorOp, ...]:
        """The flattened XOR schedule (one op per one-bit)."""
        if self._schedule is None:
            ops = []
            w = self.w
            rows, cols = np.nonzero(self.bitmatrix)
            for r, c in zip(rows.tolist(), cols.tolist()):
                ops.append(
                    XorOp(
                        src_chunk=c // w,
                        src_packet=c % w,
                        dst_chunk=r // w,
                        dst_packet=r % w,
                    )
                )
            self._schedule = tuple(ops)
        return self._schedule

    def xor_count(self) -> int:
        """Total XOR-of-packet operations per encode (ones in the matrix)."""
        return int(self.bitmatrix.sum())

    def density(self) -> float:
        """Fraction of ones in the bit-matrix (lower = cheaper encode)."""
        return self.xor_count() / self.bitmatrix.size

    # -- encoding -----------------------------------------------------------

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity chunks with XORs only."""
        if len(data_chunks) != self.k:
            raise CodingError(
                f"encode expects k={self.k} chunks, got {len(data_chunks)}"
            )
        packets = [
            chunk_to_bitpackets(self.field, c) for c in data_chunks
        ]
        length = packets[0].shape[1]
        parity = [
            np.zeros((self.w, length), dtype=bool) for _ in range(self.m)
        ]
        for op in self.schedule:
            np.logical_xor(
                parity[op.dst_chunk][op.dst_packet],
                packets[op.src_chunk][op.src_packet],
                out=parity[op.dst_chunk][op.dst_packet],
            )
        return [bitpackets_to_chunk(self.field, p) for p in parity]

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Data chunks followed by XOR-computed parity."""
        return list(data_chunks) + self.encode(data_chunks)
