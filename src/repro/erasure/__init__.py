"""Erasure-coding substrate: matrices over GF(2^w), RS codes, repair algebra.

The recovery layer consumes the :class:`~repro.erasure.code.ErasureCode`
interface; :class:`~repro.erasure.rs.RSCode` is the production
implementation (the paper deploys RS codes).  The ``xorcodes``
subpackage holds the related-work array codes.
"""

from repro.erasure.code import ErasureCode
from repro.erasure.lrc import LRCCode
from repro.erasure.matrix import GFMatrix
from repro.erasure.repair import (
    AggregationGroup,
    PartialDecodePlan,
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.erasure.piggyback import PiggybackRSCode, balanced_groups
from repro.erasure.regenerating import PMMSRCode, RackAwareMSRCode
from repro.erasure.rs import RSCode, default_width_for

__all__ = [
    "ErasureCode",
    "LRCCode",
    "GFMatrix",
    "RSCode",
    "PMMSRCode",
    "RackAwareMSRCode",
    "PiggybackRSCode",
    "balanced_groups",
    "default_width_for",
    "AggregationGroup",
    "PartialDecodePlan",
    "split_repair_vector",
    "execute_partial_decode",
    "combine_partials",
]
