"""Piggybacked RS codes — Rashmi et al.'s bandwidth-saving construction.

The Facebook warehouse-cluster study (Rashmi et al., arXiv:1309.0186)
measures RS repair dominating cluster network traffic and proposes new
codes built on the *piggybacking framework*: take two instances of an
``(k + m, k)`` RS code — substripes ``a`` and ``b``, each chunk split
into two halves — and embed XOR functions of substripe ``a`` into the
``b``-side parities:

- data node ``i`` stores ``(a_i, b_i)``;
- parity ``0`` stores clean ``(f_0(a), f_0(b))``;
- parity ``t >= 1`` stores ``(f_t(a), f_t(b) + g_t(a))`` where
  ``g_t(a)`` XORs the ``a``-halves of data group ``G_t`` (the ``k``
  data indices are partitioned into ``m - 1`` balanced groups).

**Data repair** of node ``i`` in group ``G_t`` downloads only
half-chunks: the ``b``-halves of the other ``k - 1`` data nodes and of
parity ``0`` decode substripe ``b``; recomputing ``f_t(b)`` and
subtracting it from parity ``t``'s stored half exposes ``g_t(a)``, and
XOR-ing out the ``a``-halves of the other group members leaves ``a_i``.
Total download ``(k + |G_t|) / 2`` chunk units versus RS's ``k`` —
the ~25-45 % saving the paper measures, with plain MDS storage
overhead (parities repair as ordinary RS at cost ``k``).

Everything operates on real numpy half-chunk buffers, so repair
correctness is byte-checked, and the parity functions ride the batched
GF kernels through :class:`~repro.erasure.rs.RSCode`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.erasure.rs import RSCode
from repro.errors import (
    CodingError,
    InsufficientChunksError,
    InvalidCodeParametersError,
)
from repro.gf.vector import dot_rows, xor_into

__all__ = ["PiggybackRSCode", "balanced_groups"]


def balanced_groups(k: int, m: int) -> tuple[tuple[int, ...], ...]:
    """Partition data indices ``0..k-1`` into ``m - 1`` balanced groups.

    The first ``k % (m - 1)`` groups take the extra element, mirroring
    the paper's near-equal group sizes (smaller groups repair cheaper).
    """
    if m < 2:
        raise InvalidCodeParametersError(
            f"piggybacking needs m >= 2 parities, got m={m}"
        )
    num_groups = m - 1
    if k < num_groups:
        raise InvalidCodeParametersError(
            f"cannot split k={k} data chunks into {num_groups} groups"
        )
    base, extra = divmod(k, num_groups)
    groups: list[tuple[int, ...]] = []
    start = 0
    for g in range(num_groups):
        size = base + (1 if g < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


class PiggybackRSCode:
    """An ``(k + m, k)`` RS code over two substripes with XOR piggybacks.

    Args:
        k: data chunks per stripe.
        m: parity chunks (``m >= 2``: one clean parity plus at least one
            piggybacked parity).
        w: GF(2^w) width.

    Attributes:
        n: stripe width ``k + m``.
        groups: the balanced data-index partition ``G_1 .. G_{m-1}``.
    """

    #: Half-chunk labels: substripe a, substripe b (parity t >= 1 stores
    #: its piggybacked sum in the "b" slot).
    HALVES = ("a", "b")

    def __init__(self, k: int, m: int, w: int | None = None) -> None:
        self.groups = balanced_groups(k, m)
        self.rs = RSCode(k, m, w)
        self.k = k
        self.m = m
        self.n = k + m
        self.w = self.rs.w

    # -- structure ----------------------------------------------------------

    def group_of(self, data_index: int) -> int:
        """Which group ``G_t`` (0-based) a data index belongs to."""
        if not 0 <= data_index < self.k:
            raise CodingError(
                f"data index {data_index} out of range for k={self.k}"
            )
        for g, members in enumerate(self.groups):
            if data_index in members:
                return g
        raise CodingError(f"data index {data_index} is in no group")

    def piggy_parity_index(self, group: int) -> int:
        """Stripe index of the parity carrying group ``group``'s piggyback."""
        if not 0 <= group < len(self.groups):
            raise CodingError(f"group {group} out of range")
        return self.k + 1 + group

    def is_data(self, index: int) -> bool:
        """True iff ``index`` is a data chunk."""
        return 0 <= index < self.k

    # -- encode ------------------------------------------------------------

    def _parity_halves(
        self, a: Sequence[np.ndarray], b: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        pa = self.rs.encode(list(a))
        pb = self.rs.encode(list(b))
        parities: list[tuple[np.ndarray, np.ndarray]] = [(pa[0], pb[0])]
        for t in range(1, self.m):
            piggy = pb[t].copy()
            for i in self.groups[t - 1]:
                xor_into(piggy, a[i])
            parities.append((pa[t], piggy))
        return parities

    def encode(
        self, a: Sequence[np.ndarray], b: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Encode the two half-substripes into ``n`` node contents.

        Args:
            a / b: the ``k`` data half-chunks of each substripe.

        Returns:
            ``n`` pairs ``(a-half, b-half)``; entry ``i < k`` is the
            data node, entries ``k ..`` the parities (piggybacked in the
            ``b`` slot for parity index ``>= k + 1``).
        """
        if len(a) != self.k or len(b) != self.k:
            raise CodingError(
                f"encode expects k={self.k} half-chunks per substripe, "
                f"got {len(a)}/{len(b)}"
            )
        shapes = {buf.shape for buf in (*a, *b)}
        if len(shapes) > 1:
            raise CodingError(f"half-chunks have differing shapes: {shapes}")
        return [(a[i], b[i]) for i in range(self.k)] + self._parity_halves(a, b)

    # -- repair ------------------------------------------------------------

    def data_repair_sources(
        self, data_index: int
    ) -> tuple[tuple[int, str], ...]:
        """The half-chunks a data repair downloads: ``(node, half)`` pairs.

        ``k - 1`` data ``b``-halves + parity 0's ``b``-half decode
        substripe ``b``; the group parity's ``b``-half and the group
        peers' ``a``-halves then release ``a_i``.
        """
        group = self.group_of(data_index)
        sources: list[tuple[int, str]] = [
            (i, "b") for i in range(self.k) if i != data_index
        ]
        sources.append((self.k, "b"))
        sources.append((self.piggy_parity_index(group), "b"))
        sources.extend(
            (i, "a") for i in self.groups[group] if i != data_index
        )
        return tuple(sources)

    def data_repair_cost(self, data_index: int) -> float:
        """Download per data-node repair, in full-chunk units:
        ``(k + |G_t|) / 2``."""
        group = self.group_of(data_index)
        return (self.k + len(self.groups[group])) / 2.0

    def average_data_repair_cost(self) -> float:
        """Mean repair download over all data nodes, in chunk units."""
        return sum(
            self.data_repair_cost(i) for i in range(self.k)
        ) / self.k

    def repair_data(
        self,
        data_index: int,
        halves: Mapping[tuple[int, str], np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rebuild data node ``data_index`` from the downloaded halves.

        Args:
            halves: ``(node, half) -> buffer`` covering (at least) every
                pair from :meth:`data_repair_sources`.

        Returns:
            ``(a_i, b_i)``, byte-identical to the encoded content.
        """
        needed = self.data_repair_sources(data_index)
        missing = [src for src in needed if src not in halves]
        if missing:
            raise InsufficientChunksError(
                f"data repair of {data_index} is missing halves {missing}"
            )
        group = self.group_of(data_index)
        b_available = {
            i: halves[(i, "b")] for i in range(self.k) if i != data_index
        }
        b_available[self.k] = halves[(self.k, "b")]
        b_data = self.rs.decode(b_available)
        b_i = b_data[data_index]
        # f_t(b) is recomputed locally (CPU only, no download).
        t = group + 1
        f_t_b = dot_rows(
            self.rs.field,
            [int(v) for v in self.rs.parity_rows[t]],
            b_data,
        )
        piggy = halves[(self.piggy_parity_index(group), "b")].copy()
        xor_into(piggy, f_t_b)
        for i in self.groups[group]:
            if i != data_index:
                xor_into(piggy, halves[(i, "a")])
        return piggy, b_i

    def parity_repair_sources(self) -> tuple[tuple[int, str], ...]:
        """A parity repair falls back to full RS: both halves of every
        data node (``k`` chunk units — no piggyback saving)."""
        return tuple(
            (i, half) for i in range(self.k) for half in self.HALVES
        )

    def repair_parity(
        self,
        parity_index: int,
        halves: Mapping[tuple[int, str], np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rebuild a parity node from the full data halves.

        Args:
            parity_index: stripe index in ``k .. n-1``.
            halves: must cover :meth:`parity_repair_sources`.
        """
        if not self.k <= parity_index < self.n:
            raise CodingError(
                f"parity index {parity_index} out of range for n={self.n}"
            )
        missing = [
            src for src in self.parity_repair_sources() if src not in halves
        ]
        if missing:
            raise InsufficientChunksError(
                f"parity repair of {parity_index} is missing halves {missing}"
            )
        a = [halves[(i, "a")] for i in range(self.k)]
        b = [halves[(i, "b")] for i in range(self.k)]
        return self._parity_halves(a, b)[parity_index - self.k]

    def __reduce__(self):
        return (self.__class__, (self.k, self.m, self.w))

    def __repr__(self) -> str:
        return (
            f"PiggybackRSCode(k={self.k}, m={self.m}, w={self.w}, "
            f"groups={[len(g) for g in self.groups]})"
        )
