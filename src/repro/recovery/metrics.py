"""Traffic and balance metrics over multi-stripe recovery solutions.

Produces the numbers the paper's evaluation reports: cross-rack repair
traffic (per rack / total, chunks and bytes) and the load-balancing
rate λ, plus comparison helpers ("CAR reduces X % of cross-rack
traffic").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError
from repro.recovery.solution import MultiStripeSolution

__all__ = ["TrafficReport", "traffic_report", "reduction_ratio"]


@dataclass(frozen=True)
class TrafficReport:
    """Cross-rack traffic summary for one recovery solution.

    Attributes:
        strategy: name of the producing strategy.
        chunk_size_bytes: chunk size used to convert chunks to bytes.
        per_rack_chunks: ``t_{i,f}`` per rack, chunk units.
        failed_rack: index of ``A_f`` (whose entry is always 0).
        lambda_rate: the paper's λ.
        num_stripes: stripes repaired.
    """

    strategy: str
    chunk_size_bytes: int
    per_rack_chunks: tuple[int, ...]
    failed_rack: int
    lambda_rate: float
    num_stripes: int

    @property
    def total_chunks(self) -> int:
        """Total cross-rack traffic in chunk units."""
        return sum(self.per_rack_chunks)

    @property
    def total_bytes(self) -> int:
        """Total cross-rack traffic in bytes."""
        return self.total_chunks * self.chunk_size_bytes

    @property
    def per_rack_bytes(self) -> tuple[int, ...]:
        """Per-rack cross-rack traffic in bytes."""
        return tuple(c * self.chunk_size_bytes for c in self.per_rack_chunks)

    @property
    def max_rack_chunks(self) -> int:
        """The most-loaded intact rack's traffic, chunk units."""
        return max(self.per_rack_chunks)

    def per_stripe_chunks(self) -> float:
        """Average cross-rack chunks shipped per stripe (0 if none)."""
        if not self.num_stripes:
            return 0.0
        return self.total_chunks / self.num_stripes


def traffic_report(
    solution: MultiStripeSolution,
    chunk_size_bytes: int,
    strategy: str = "",
) -> TrafficReport:
    """Build a :class:`TrafficReport` from a solution."""
    if chunk_size_bytes <= 0:
        raise RecoveryError("chunk size must be positive")
    return TrafficReport(
        strategy=strategy,
        chunk_size_bytes=chunk_size_bytes,
        per_rack_chunks=tuple(solution.traffic_by_rack()),
        failed_rack=solution.failed_rack,
        lambda_rate=solution.load_balancing_rate(),
        num_stripes=len(solution),
    )


def reduction_ratio(baseline: TrafficReport, improved: TrafficReport) -> float:
    """Fractional saving of ``improved`` over ``baseline`` (0.669 = 66.9 %).

    Raises:
        RecoveryError: if the baseline shipped no traffic.
    """
    if baseline.total_chunks == 0:
        raise RecoveryError("baseline has zero traffic; ratio undefined")
    return 1.0 - improved.total_chunks / baseline.total_chunks
