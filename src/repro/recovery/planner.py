"""Turns recovery solutions into executable transfer/compute plans.

A :class:`RecoveryPlan` is the operational form of a
:class:`~repro.recovery.solution.MultiStripeSolution`: who reads what,
who sends what to whom (chunk-granular, so the network simulator can
schedule each flow), and who computes what (so the timing model can
charge GF arithmetic to the right CPU).

Plan construction follows the paper's methodology section:

- **CAR (aggregated)**: in every accessed intact rack, the replacement
  node designates a *delegate* — one of the nodes holding a retrieved
  chunk.  The rack's other holders send their chunks to the delegate
  (intra-rack); the delegate partially decodes them into one chunk and
  sends it across the core (one cross-rack flow per rack).  Survivors
  in the failed rack send intra-rack straight to the replacement node,
  which folds them in with their repair coefficients and XORs all
  partials together.
- **RR (direct)**: every helper node sends its chunk straight to the
  replacement node; flows from other racks cross the core.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.cluster.state import ClusterState, FailureEvent
from repro.errors import PlanError
from repro.obs import metrics as _metrics
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution

__all__ = [
    "Transfer",
    "ComputeTask",
    "StripePlan",
    "RecoveryPlan",
    "StreamingRecoveryPlan",
    "plan_recovery",
    "plan_recovery_streaming",
]


@dataclass(frozen=True)
class Transfer:
    """One chunk-sized flow between two nodes.

    Attributes:
        stripe_id: stripe this flow serves.
        src_node / dst_node: endpoints.
        src_rack / dst_rack: their racks (cached for the simulator).
        chunk_index: the stripe-local chunk carried, or None when the
            payload is a partially decoded chunk.
        volume: payload size as a fraction of one chunk (1.0 for plain
            chunk/partial flows; regenerating strategies ship sub-chunk
            packets).
    """

    stripe_id: int
    src_node: int
    dst_node: int
    src_rack: int
    dst_rack: int
    chunk_index: int | None
    volume: float = 1.0

    @property
    def cross_rack(self) -> bool:
        """True iff the flow traverses the over-subscribed core."""
        return self.src_rack != self.dst_rack

    @property
    def is_partial(self) -> bool:
        """True iff the payload is a partially decoded chunk."""
        return self.chunk_index is None


@dataclass(frozen=True)
class ComputeTask:
    """A GF linear combination charged to one node's CPU.

    Attributes:
        stripe_id: stripe this computation serves.
        node: where it runs.
        input_chunks: how many chunk-sized buffers are combined.
        kind: ``"partial"`` (rack delegate, Equation 7), ``"local"``
            (replacement node folding the failed rack's survivors) or
            ``"final"`` (replacement node XOR-combining partials /
            decoding raw chunks).
        chunks: the stripe-local raw chunk indices combined (empty for a
            ``"final"`` task that combines partially decoded buffers).
    """

    stripe_id: int
    node: int
    input_chunks: int
    kind: str
    chunks: tuple[int, ...] = ()


@dataclass(frozen=True)
class StripePlan:
    """Plan for one stripe: its transfers, compute tasks, and delegates."""

    stripe_id: int
    lost_chunk: int
    transfers: tuple[Transfer, ...]
    compute: tuple[ComputeTask, ...]
    delegates: dict[int, int] = field(default_factory=dict)

    @property
    def cross_rack_transfers(self) -> tuple[Transfer, ...]:
        """Flows crossing the core."""
        return tuple(t for t in self.transfers if t.cross_rack)


@dataclass(frozen=True)
class RecoveryPlan:
    """Executable plan for a whole multi-stripe recovery.

    Attributes:
        stripe_plans: one per affected stripe, stripe-sorted.
        replacement_node: destination of every reconstruction.
        aggregated: whether partial decoding is used.
    """

    stripe_plans: tuple[StripePlan, ...]
    replacement_node: int
    aggregated: bool

    def all_transfers(self) -> Iterator[Transfer]:
        """Every flow in the plan."""
        for sp in self.stripe_plans:
            yield from sp.transfers

    def iter_stripe_plans(self) -> Iterator[StripePlan]:
        """Per-stripe plans in stripe order.

        The eager counterpart of
        :meth:`StreamingRecoveryPlan.iter_stripe_plans`, so consumers can
        stream over either plan form without branching.
        """
        return iter(self.stripe_plans)

    def stripe_plan_for(self, stripe_id: int) -> StripePlan:
        """The per-stripe plan for ``stripe_id``.

        Raises:
            PlanError: if the stripe is not part of this plan.
        """
        for sp in self.stripe_plans:
            if sp.stripe_id == stripe_id:
                return sp
        raise PlanError(f"no stripe plan for stripe {stripe_id}")

    def all_compute(self) -> Iterator[ComputeTask]:
        """Every compute task in the plan."""
        for sp in self.stripe_plans:
            yield from sp.compute

    def cross_rack_chunks(self) -> int:
        """Cross-rack traffic in chunk units (must match the solution)."""
        return sum(1 for t in self.all_transfers() if t.cross_rack)

    def intra_rack_chunks(self) -> int:
        """Intra-rack traffic in chunk units."""
        return sum(1 for t in self.all_transfers() if not t.cross_rack)

    def cross_rack_by_rack(self, num_racks: int) -> list[int]:
        """Cross-rack chunks sourced from each rack (the plan's t_{i,f})."""
        out = [0] * num_racks
        for t in self.all_transfers():
            if t.cross_rack:
                out[t.src_rack] += 1
        return out

    def cross_rack_volume(self) -> float:
        """Cross-rack traffic in (fractional) chunk units — equals
        :meth:`cross_rack_chunks` for plans of full-chunk strategies."""
        return sum(t.volume for t in self.all_transfers() if t.cross_rack)

    def intra_rack_volume(self) -> float:
        """Intra-rack traffic in (fractional) chunk units."""
        return sum(
            t.volume for t in self.all_transfers() if not t.cross_rack
        )

    def cross_rack_volume_by_rack(self, num_racks: int) -> list[float]:
        """Cross-rack chunk units sourced from each rack."""
        out = [0.0] * num_racks
        for t in self.all_transfers():
            if t.cross_rack:
                out[t.src_rack] += t.volume
        return out


def plan_recovery(
    state: ClusterState,
    event: FailureEvent,
    solution: MultiStripeSolution,
    dead_nodes: frozenset[int] | set[int] = frozenset(),
) -> RecoveryPlan:
    """Build the executable plan for ``solution`` on ``state``.

    Args:
        dead_nodes: helper nodes that crashed mid-recovery (secondary
            failures).  The solution must not read from them; planning a
            transfer sourced at a dead node raises :class:`PlanError`.

    Raises:
        PlanError: if the solution references chunks the placement does
            not hold where expected, or reads from a dead node.
    """
    dead = frozenset(dead_nodes)
    plans = []
    for sol in solution.solutions:
        if solution.aggregated:
            plans.append(_plan_stripe_aggregated(state, event, sol, dead))
        else:
            plans.append(_plan_stripe_direct(state, event, sol, dead))
    result = RecoveryPlan(
        stripe_plans=tuple(plans),
        replacement_node=event.replacement_node,
        aggregated=solution.aggregated,
    )
    reg = _metrics.CURRENT
    if reg is not None:
        mode = "aggregated" if solution.aggregated else "direct"
        reg.counter("plan.stripes").inc(len(plans), mode=mode)
        racks = reg.histogram(
            "plan.racks_accessed", buckets=_metrics.COUNT_BUCKETS
        )
        for sol in solution.solutions:
            racks.observe(len(sol.chunks_by_rack))
        transfers = reg.counter("plan.transfers")
        for sp in plans:
            for t in sp.transfers:
                transfers.inc(scope="cross" if t.cross_rack else "intra")
    return result


def _plan_one(
    state: ClusterState,
    event: FailureEvent,
    sol: PerStripeSolution,
    aggregated: bool,
    dead: frozenset[int],
) -> StripePlan:
    if aggregated:
        return _plan_stripe_aggregated(state, event, sol, dead)
    return _plan_stripe_direct(state, event, sol, dead)


def _record_stripe_metrics(
    reg, sol: PerStripeSolution, sp: StripePlan, aggregated: bool
) -> None:
    """One stripe's share of the plan.* metrics.

    Recorded per stripe so the lazily built plan's totals are identical
    to the eager :func:`plan_recovery` totals for the same stripes.
    """
    mode = "aggregated" if aggregated else "direct"
    reg.counter("plan.stripes").inc(mode=mode)
    reg.histogram(
        "plan.racks_accessed", buckets=_metrics.COUNT_BUCKETS
    ).observe(len(sol.chunks_by_rack))
    transfers = reg.counter("plan.transfers")
    for t in sp.transfers:
        transfers.inc(scope="cross" if t.cross_rack else "intra")


class StreamingRecoveryPlan:
    """Lazy counterpart of :class:`RecoveryPlan` for bounded-memory runs.

    Instead of materialising one :class:`StripePlan` per affected stripe
    up front (at million-stripe scale the transfer dataclasses dominate
    the coordinator's heap), the streaming plan holds only the inputs —
    cluster state, failure event, per-stripe solutions — and builds each
    stripe's plan on demand inside :meth:`iter_stripe_plans`.  Memory is
    O(1) in the stripe count; the executor's window is the only buffer.

    The iterator is single-shot: per-stripe plans are yielded once, in
    solution order, and the ``plan.*`` metrics are recorded per stripe so
    a fully drained streaming plan leaves identical metric totals to the
    eager :func:`plan_recovery`.

    Attributes:
        replacement_node: destination of every reconstruction.
        aggregated: whether partial decoding is used.
    """

    def __init__(
        self,
        state: ClusterState,
        event: FailureEvent,
        solutions,
        *,
        aggregated: bool,
        dead_nodes: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        self._state = state
        self._event = event
        self._solutions = iter(solutions)
        self._dead = frozenset(dead_nodes)
        self._consumed = False
        self.replacement_node = event.replacement_node
        self.aggregated = aggregated

    def iter_stripe_plans(self) -> Iterator[tuple[PerStripeSolution, StripePlan]]:
        """Yield ``(solution, stripe_plan)`` pairs lazily, in order.

        Raises:
            PlanError: on a second call (the underlying solution iterator
                is consumed), or if a solution references chunks the
                placement does not hold where expected.
        """
        if self._consumed:
            raise PlanError("streaming plan already consumed (single-shot)")
        self._consumed = True
        for sol in self._solutions:
            sp = _plan_one(
                self._state, self._event, sol, self.aggregated, self._dead
            )
            reg = _metrics.CURRENT
            if reg is not None:
                _record_stripe_metrics(reg, sol, sp, self.aggregated)
            yield sol, sp


def plan_recovery_streaming(
    state: ClusterState,
    event: FailureEvent,
    solutions,
    *,
    aggregated: bool | None = None,
    dead_nodes: frozenset[int] | set[int] = frozenset(),
) -> StreamingRecoveryPlan:
    """Build a lazy :class:`StreamingRecoveryPlan` for ``solutions``.

    Args:
        solutions: a :class:`~repro.recovery.solution.MultiStripeSolution`
            (``aggregated`` is taken from it) or any iterable of
            :class:`~repro.recovery.solution.PerStripeSolution` — e.g. a
            generator produced by a strategy that solves stripes lazily —
            in which case ``aggregated`` must be given explicitly.
        dead_nodes: as for :func:`plan_recovery`.

    Raises:
        PlanError: if ``aggregated`` cannot be determined.
    """
    if isinstance(solutions, MultiStripeSolution):
        if aggregated is None:
            aggregated = solutions.aggregated
        solutions = solutions.solutions
    if aggregated is None:
        raise PlanError(
            "aggregated= is required when streaming from a bare solution "
            "iterable"
        )
    return StreamingRecoveryPlan(
        state, event, solutions, aggregated=aggregated, dead_nodes=dead_nodes
    )


def _holder(
    state: ClusterState,
    sol: PerStripeSolution,
    chunk: int,
    dead_nodes: frozenset[int] = frozenset(),
) -> int:
    node = state.placement.node_of(sol.stripe_id, chunk)
    if node == state.failed_node:
        raise PlanError(
            f"stripe {sol.stripe_id}: chunk {chunk} lives on the failed node"
        )
    if node in dead_nodes:
        raise PlanError(
            f"stripe {sol.stripe_id}: chunk {chunk} lives on dead node {node}"
        )
    return node


def _plan_stripe_aggregated(
    state: ClusterState,
    event: FailureEvent,
    sol: PerStripeSolution,
    dead_nodes: frozenset[int] = frozenset(),
) -> StripePlan:
    repl = event.replacement_node
    repl_rack = state.topology.rack_of(repl)
    transfers: list[Transfer] = []
    compute: list[ComputeTask] = []
    delegates: dict[int, int] = {}
    partials_at_repl = 0
    # Per-rack cross-rack payload in chunk units: 1 per intact rack for
    # plain aggregated solutions, fractional for weighted (regenerating)
    # solutions.
    units = sol.cross_rack_chunks(True)

    for rack in sorted(sol.chunks_by_rack):
        chunks = sol.chunks_from_rack(rack)
        holders = {c: _holder(state, sol, c, dead_nodes) for c in chunks}
        if rack == sol.failed_rack:
            # Survivors in A_f ship intra-rack to the replacement node,
            # which folds them locally (one more "partial" input).
            for c, node in sorted(holders.items()):
                if node != repl:
                    transfers.append(
                        Transfer(
                            stripe_id=sol.stripe_id,
                            src_node=node,
                            dst_node=repl,
                            src_rack=rack,
                            dst_rack=repl_rack,
                            chunk_index=c,
                        )
                    )
            compute.append(
                ComputeTask(
                    stripe_id=sol.stripe_id,
                    node=repl,
                    input_chunks=len(chunks),
                    kind="local",
                    chunks=tuple(chunks),
                )
            )
            partials_at_repl += 1
            continue
        # Intact rack: delegate = holder of the lowest retrieved chunk.
        delegate = holders[min(holders)]
        delegates[rack] = delegate
        for c, node in sorted(holders.items()):
            if node != delegate:
                transfers.append(
                    Transfer(
                        stripe_id=sol.stripe_id,
                        src_node=node,
                        dst_node=delegate,
                        src_rack=rack,
                        dst_rack=rack,
                        chunk_index=c,
                    )
                )
        compute.append(
            ComputeTask(
                stripe_id=sol.stripe_id,
                node=delegate,
                input_chunks=len(chunks),
                kind="partial",
                chunks=tuple(chunks),
            )
        )
        transfers.append(
            Transfer(
                stripe_id=sol.stripe_id,
                src_node=delegate,
                dst_node=repl,
                src_rack=rack,
                dst_rack=repl_rack,
                chunk_index=None,
                volume=float(units.get(rack, 1)),
            )
        )
        partials_at_repl += 1

    compute.append(
        ComputeTask(
            stripe_id=sol.stripe_id,
            node=repl,
            input_chunks=partials_at_repl,
            kind="final",
        )
    )
    return StripePlan(
        stripe_id=sol.stripe_id,
        lost_chunk=sol.lost_chunk,
        transfers=tuple(transfers),
        compute=tuple(compute),
        delegates=delegates,
    )


def _plan_stripe_direct(
    state: ClusterState,
    event: FailureEvent,
    sol: PerStripeSolution,
    dead_nodes: frozenset[int] = frozenset(),
) -> StripePlan:
    repl = event.replacement_node
    repl_rack = state.topology.rack_of(repl)
    transfers: list[Transfer] = []
    units = sol.cross_rack_chunks(False)
    for rack in sorted(sol.chunks_by_rack):
        chunks = sol.chunks_from_rack(rack)
        # Weighted solutions ship sub-chunk payloads; split the rack's
        # chunk-unit total evenly so per-rack volumes stay exact.
        volume = units.get(rack, len(chunks)) / len(chunks)
        for c in chunks:
            node = _holder(state, sol, c, dead_nodes)
            transfers.append(
                Transfer(
                    stripe_id=sol.stripe_id,
                    src_node=node,
                    dst_node=repl,
                    src_rack=rack,
                    dst_rack=repl_rack,
                    chunk_index=c,
                    volume=volume,
                )
            )
    compute = (
        ComputeTask(
            stripe_id=sol.stripe_id,
            node=repl,
            input_chunks=sol.helper_count,
            kind="final",
            chunks=sol.helpers,
        ),
    )
    return StripePlan(
        stripe_id=sol.stripe_id,
        lost_chunk=sol.lost_chunk,
        transfers=tuple(transfers),
        compute=compute,
        delegates={},
    )
