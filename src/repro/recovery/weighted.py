"""Bandwidth-aware load balancing for heterogeneous uplinks.

The paper's Algorithm 2 treats all racks alike, which is optimal when
every rack uplink has the same capacity.  Real clusters drift from that
(mixed switch generations; the paper itself cites Zhu et al.'s
cost-based heterogeneous recovery, DSN'12).  This module generalises
Algorithm 2: instead of balancing the raw chunk counts ``t_{i,f}``, it
balances the *drain time* ``t_{i,f} / capacity_i`` of each rack's
uplink — the quantity that actually bounds recovery completion.

The greedy substitution rule adapts accordingly: move one unit of
traffic from the rack with the maximum drain time to a rack whose drain
time stays below the current maximum after the move, which keeps the
maximum monotonically non-increasing (the weighted analogue of
Equation 8).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.cluster.state import StripeView
from repro.errors import ConfigurationError, RecoveryError
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution

__all__ = [
    "WeightedBalanceTrace",
    "BandwidthAwareBalancer",
    "drain_times",
    "solve_bandwidth_aware",
]


def drain_times(
    traffic: Sequence[int], capacities: Sequence[float]
) -> list[float]:
    """Per-rack uplink drain time: chunks divided by uplink capacity.

    Capacities are relative (any common unit); only ratios matter.
    """
    if len(traffic) != len(capacities):
        raise ConfigurationError(
            f"{len(traffic)} racks of traffic vs {len(capacities)} capacities"
        )
    if any(c <= 0 for c in capacities):
        raise ConfigurationError("capacities must be positive")
    return [t / c for t, c in zip(traffic, capacities)]


@dataclass
class WeightedBalanceTrace:
    """Record of one weighted balancing run.

    Attributes:
        max_drain_times: max per-rack drain time after 0, 1, ... moves.
        substitutions: substitutions applied.
        converged_at: iteration with no possible substitution (or None).
    """

    max_drain_times: list[float] = field(default_factory=list)
    substitutions: int = 0
    converged_at: int | None = None

    @property
    def initial(self) -> float:
        """Max drain time before balancing."""
        return self.max_drain_times[0]

    @property
    def final(self) -> float:
        """Max drain time after balancing."""
        return self.max_drain_times[-1]


class BandwidthAwareBalancer:
    """Algorithm 2 generalised to heterogeneous rack-uplink capacities.

    Args:
        capacities: per-rack uplink capacity (relative units).  With all
            capacities equal this reduces exactly to the paper's
            algorithm.
        iterations: substitution budget.
    """

    def __init__(
        self, capacities: Sequence[float], iterations: int = 50
    ) -> None:
        if any(c <= 0 for c in capacities):
            raise ConfigurationError("capacities must be positive")
        if iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        self.capacities = list(capacities)
        self.iterations = iterations

    def balance(
        self,
        views: dict[int, StripeView],
        initial: MultiStripeSolution,
        selector: CarSelector,
    ) -> tuple[MultiStripeSolution, WeightedBalanceTrace]:
        """Run the weighted greedy loop."""
        if not initial.aggregated:
            raise RecoveryError(
                "weighted balancing operates on aggregated solutions"
            )
        if len(self.capacities) != initial.num_racks:
            raise ConfigurationError(
                f"{len(self.capacities)} capacities for "
                f"{initial.num_racks} racks"
            )
        current = initial
        trace = WeightedBalanceTrace(
            max_drain_times=[self._max_drain(current)]
        )
        for it in range(self.iterations):
            substituted = self._try_substitute(views, current, selector)
            if substituted is None:
                trace.converged_at = it
                break
            current = substituted
            trace.substitutions += 1
            trace.max_drain_times.append(self._max_drain(current))
        return current, trace

    # -- internals -----------------------------------------------------

    def _intact(self, solution: MultiStripeSolution) -> list[int]:
        return [
            r
            for r in range(solution.num_racks)
            if r != solution.failed_rack
        ]

    def _max_drain(self, solution: MultiStripeSolution) -> float:
        times = drain_times(solution.traffic_by_rack(), self.capacities)
        intact = self._intact(solution)
        return max((times[r] for r in intact), default=0.0)

    def _try_substitute(
        self,
        views: dict[int, StripeView],
        current: MultiStripeSolution,
        selector: CarSelector,
    ) -> MultiStripeSolution | None:
        t = current.traffic_by_rack()
        times = drain_times(t, self.capacities)
        intact = self._intact(current)
        if not intact:
            return None
        l_rack = max(intact, key=lambda r: (times[r], -r))
        # Weighted analogue of Equation 8: after moving one chunk, the
        # target's drain time must stay strictly below the source's
        # current maximum — that keeps the max non-increasing and the
        # loop terminating.
        candidates = sorted(
            (
                r
                for r in intact
                if r != l_rack
                and (t[r] + 1) / self.capacities[r] < times[l_rack]
            ),
            key=lambda r: ((t[r] + 1) / self.capacities[r], r),
        )
        for i_rack in candidates:
            for sol in current.solutions:
                if not sol.uses_rack(l_rack):
                    continue
                view = views.get(sol.stripe_id)
                if view is None:
                    raise RecoveryError(
                        f"no stripe view for stripe {sol.stripe_id}"
                    )
                replacement = selector.substitute(view, sol, l_rack, i_rack)
                if replacement is not None:
                    return current.replace(replacement)
        return None


def solve_bandwidth_aware(
    state,
    capacities: Sequence[float],
    iterations: int = 50,
) -> tuple[MultiStripeSolution, WeightedBalanceTrace]:
    """End-to-end CAR with bandwidth-aware balancing.

    Per-stripe minimum-rack selection (Theorem 1) followed by the
    weighted greedy loop; the convenience composition mirroring
    :class:`~repro.recovery.baselines.CarStrategy`.
    """
    selector = CarSelector(state.topology, state.code.k)
    views = {v.stripe_id: v for v in state.views()}
    initial = MultiStripeSolution(
        [selector.initial_solution(v) for v in views.values()],
        num_racks=state.topology.num_racks,
        aggregated=True,
    )
    balancer = BandwidthAwareBalancer(capacities, iterations=iterations)
    return balancer.balance(views, initial, selector)
