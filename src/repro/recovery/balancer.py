"""Greedy multi-stripe load balancing — Algorithm 2 of the paper.

Starting from an initial multi-stripe solution, each iteration:

1. find the intact rack ``A_l`` with the highest cross-rack traffic
   ``t_{l,f}``;
2. look for another intact rack ``A_i`` with ``t_{l,f} - t_{i,f} >= 2``
   (Equation 8 — the condition that guarantees the maximum is
   monotonically non-increasing after moving one unit of traffic);
3. find a stripe whose current solution reads from ``A_l`` and admits a
   valid substitute that reads from ``A_i`` instead; substitute and move
   to the next iteration.

The loop stops after ``e`` iterations or at the first iteration with no
possible substitution.  The full λ trajectory is recorded in a
:class:`BalanceTrace` so Figure 8 can be regenerated directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.state import StripeView
from repro.errors import RecoveryError
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution

__all__ = ["BalanceTrace", "GreedyLoadBalancer"]


@dataclass
class BalanceTrace:
    """Record of one balancing run.

    Attributes:
        lambdas: λ after 0, 1, 2, ... iterations (index 0 = initial).
        substitutions: how many per-stripe substitutions were applied.
        converged_at: iteration index at which no substitution was
            possible (None if the iteration budget ran out first).
    """

    lambdas: list[float] = field(default_factory=list)
    substitutions: int = 0
    converged_at: int | None = None

    def lambda_after(self, iterations: int) -> float:
        """λ after the given number of iterations (clamped to the end).

        This is what Figure 8 plots at iteration checkpoints: once the
        algorithm converges, λ stays at its final value.
        """
        if not self.lambdas:
            raise RecoveryError("empty balance trace")
        return self.lambdas[min(iterations, len(self.lambdas) - 1)]

    @property
    def initial_lambda(self) -> float:
        """λ of the initial (unbalanced) solution."""
        return self.lambda_after(0)

    @property
    def final_lambda(self) -> float:
        """λ of the final solution."""
        return self.lambdas[-1]


class GreedyLoadBalancer:
    """Algorithm 2: iterative single-substitution load balancing.

    Args:
        iterations: the paper's ``e`` — the iteration budget.
        baseline_traffic: optional per-rack traffic offsets (chunk
            units) added to the current solution's ``t_{i,f}`` when
            choosing substitutions.  This is the *history-aware*
            extension: passing the cumulative cross-rack traffic of past
            repairs makes Algorithm 2 balance the long-run rack load,
            not just this event's (see
            :class:`repro.workloads.longrun.LongRunSimulator`).  The
            recorded λ trace is then computed over baseline + current.
    """

    def __init__(
        self,
        iterations: int = 50,
        baseline_traffic: list[int] | tuple[int, ...] | None = None,
    ) -> None:
        if iterations < 0:
            raise RecoveryError("iteration budget must be non-negative")
        self.iterations = iterations
        self.baseline_traffic = (
            None if baseline_traffic is None else list(baseline_traffic)
        )

    def _loaded_traffic(self, solution: MultiStripeSolution) -> list[int]:
        t = solution.traffic_by_rack()
        if self.baseline_traffic is None:
            return t
        if len(self.baseline_traffic) != len(t):
            raise RecoveryError(
                f"baseline has {len(self.baseline_traffic)} racks, "
                f"solution has {len(t)}"
            )
        return [a + b for a, b in zip(t, self.baseline_traffic)]

    def _lambda(self, solution: MultiStripeSolution) -> float:
        if self.baseline_traffic is None:
            return solution.load_balancing_rate()
        t = self._loaded_traffic(solution)
        intact = [
            t[i] for i in range(solution.num_racks) if i != solution.failed_rack
        ]
        total = sum(intact)
        if total == 0:
            return 1.0
        return max(intact) / (total / len(intact))

    def balance(
        self,
        views: dict[int, StripeView],
        initial: MultiStripeSolution,
        selector: CarSelector,
    ) -> tuple[MultiStripeSolution, BalanceTrace]:
        """Run the greedy balancing loop.

        Args:
            views: stripe_id -> :class:`StripeView` for every stripe in
                ``initial`` (needed to re-derive valid substitutes).
            initial: the starting multi-stripe solution (aggregated).
            selector: the per-stripe selector for substitution checks.

        Returns:
            The balanced solution and its :class:`BalanceTrace`.
        """
        if not initial.aggregated:
            raise RecoveryError(
                "load balancing operates on aggregated (CAR) solutions"
            )
        current = initial
        trace = BalanceTrace(lambdas=[self._lambda(current)])
        for it in range(self.iterations):
            substituted = self._try_substitute(views, current, selector)
            if substituted is None:
                trace.converged_at = it
                break
            current = substituted
            trace.substitutions += 1
            trace.lambdas.append(self._lambda(current))
        return current, trace

    def _try_substitute(
        self,
        views: dict[int, StripeView],
        current: MultiStripeSolution,
        selector: CarSelector,
    ) -> MultiStripeSolution | None:
        """One iteration body (steps 5-11); None if no substitution exists."""
        t = self._loaded_traffic(current)
        intact = [
            r for r in range(current.num_racks) if r != current.failed_rack
        ]
        if not intact:
            return None
        # Step 5: the most-loaded intact rack.  Ties by rack id.
        l_rack = max(intact, key=lambda r: (t[r], -r))
        # Step 6-7: candidate target racks, least-loaded first.
        candidates = sorted(
            (r for r in intact if r != l_rack and t[l_rack] - t[r] >= 2),
            key=lambda r: (t[r], r),
        )
        for i_rack in candidates:
            for sol in current.solutions_using(l_rack):
                view = views.get(sol.stripe_id)
                if view is None:
                    raise RecoveryError(
                        f"no stripe view supplied for stripe {sol.stripe_id}"
                    )
                replacement = selector.substitute(view, sol, l_rack, i_rack)
                if replacement is not None:
                    return current.replace(replacement)
        return None
