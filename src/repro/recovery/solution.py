"""Recovery-solution objects and their traffic accounting.

A *per-stripe recovery solution* fixes which ``k`` surviving chunks are
retrieved to rebuild one lost chunk, grouped by rack.  A *multi-stripe
solution* collects one per affected stripe; the paper's load-balancing
objective λ (Section III) is defined over it.

Traffic accounting follows the paper exactly:

- with **aggregation** (CAR): each accessed intact rack ships exactly
  one partially decoded chunk, so ``t_{i,f}`` = number of stripes whose
  solution touches rack ``i``;
- without aggregation (RR): every retrieved chunk in an intact rack is
  shipped individually, so ``t_{i,f}`` = number of chunks retrieved
  from rack ``i``.

Retrievals inside the failed rack ``A_f`` are intra-rack and never
counted as cross-rack traffic.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import RecoveryError

__all__ = ["PerStripeSolution", "WeightedStripeSolution", "MultiStripeSolution"]


@dataclass(frozen=True)
class PerStripeSolution:
    """Which chunks one stripe's repair retrieves, grouped by rack.

    Attributes:
        stripe_id: the stripe being repaired.
        lost_chunk: stripe-local index of the lost chunk.
        failed_rack: the paper's ``A_f`` (rack of the failed node).
        chunks_by_rack: rack_id -> retrieved chunk indices in that rack.
            Includes the failed rack's local retrievals.
    """

    stripe_id: int
    lost_chunk: int
    failed_rack: int
    chunks_by_rack: Mapping[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for rack, chunks in self.chunks_by_rack.items():
            if not chunks:
                raise RecoveryError(
                    f"stripe {self.stripe_id}: rack {rack} listed with no chunks"
                )
            for c in chunks:
                if c == self.lost_chunk:
                    raise RecoveryError(
                        f"stripe {self.stripe_id}: solution retrieves the lost chunk"
                    )
                if c in seen:
                    raise RecoveryError(
                        f"stripe {self.stripe_id}: chunk {c} retrieved twice"
                    )
                seen.add(c)

    @property
    def helpers(self) -> tuple[int, ...]:
        """All retrieved chunk indices, sorted (the RS helper set)."""
        out: list[int] = []
        for chunks in self.chunks_by_rack.values():
            out.extend(chunks)
        return tuple(sorted(out))

    @property
    def helper_count(self) -> int:
        """Total chunks retrieved (must equal ``k`` for an RS repair)."""
        return sum(len(c) for c in self.chunks_by_rack.values())

    @property
    def intact_racks_accessed(self) -> tuple[int, ...]:
        """Intact racks this solution reads from, sorted (size = ``d_j``)."""
        return tuple(
            sorted(r for r in self.chunks_by_rack if r != self.failed_rack)
        )

    @property
    def num_intact_racks(self) -> int:
        """The paper's ``d_j`` for this solution."""
        return len(self.intact_racks_accessed)

    def chunks_from_rack(self, rack_id: int) -> tuple[int, ...]:
        """Chunk indices retrieved from one rack (empty if unused)."""
        return tuple(self.chunks_by_rack.get(rack_id, ()))

    def uses_rack(self, rack_id: int) -> bool:
        """True iff the solution reads at least one chunk from ``rack_id``."""
        return rack_id in self.chunks_by_rack

    def cross_rack_chunks(self, aggregated: bool) -> dict[int, int]:
        """Cross-rack traffic per intact rack, in chunk units."""
        out: dict[int, int] = {}
        for rack, chunks in self.chunks_by_rack.items():
            if rack == self.failed_rack:
                continue
            out[rack] = 1 if aggregated else len(chunks)
        return out

    def rack_map(self) -> dict[int, int]:
        """chunk index -> rack id, for partial-decode grouping."""
        return {
            c: rack
            for rack, chunks in self.chunks_by_rack.items()
            for c in chunks
        }


@dataclass(frozen=True)
class WeightedStripeSolution(PerStripeSolution):
    """A per-stripe solution whose cross-rack payloads are fractional.

    Regenerating-code strategies ship sub-chunk payloads: a rack-aware
    MSR helper rack sends one ``beta``-sized packet
    (``1 / (kbar - 1)`` of a chunk), a piggybacked-RS helper ships
    half-chunks.  ``rack_units`` records, per intact rack, how many
    *chunk units* actually cross the core, overriding the integral
    chunk/partial accounting of :class:`PerStripeSolution` while
    keeping every other part of the solution/planner interface (rack
    grouping, λ, substitution bookkeeping) unchanged.

    Attributes:
        rack_units: intact rack id -> cross-rack chunk units shipped.
            Racks absent from the mapping (and the failed rack) ship
            nothing across the core.
    """

    rack_units: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        for rack, units in self.rack_units.items():
            if rack == self.failed_rack:
                raise RecoveryError(
                    f"stripe {self.stripe_id}: the failed rack {rack} "
                    f"cannot source cross-rack traffic"
                )
            if rack not in self.chunks_by_rack:
                raise RecoveryError(
                    f"stripe {self.stripe_id}: rack {rack} ships "
                    f"{units} units but retrieves no chunks"
                )
            if units < 0:
                raise RecoveryError(
                    f"stripe {self.stripe_id}: negative cross-rack "
                    f"units for rack {rack}"
                )

    def cross_rack_chunks(self, aggregated: bool) -> dict[int, float]:
        """Cross-rack traffic per intact rack, in (fractional) chunk
        units — ``aggregated`` is irrelevant once exact payload sizes
        are known."""
        return dict(self.rack_units)


class MultiStripeSolution:
    """One per-stripe solution for every affected stripe, plus λ math.

    Args:
        solutions: per-stripe solutions (any order; stored stripe-sorted).
        num_racks: the paper's ``r``.
        aggregated: whether intra-rack aggregation (partial decoding) is
            applied when counting cross-rack traffic.
    """

    def __init__(
        self,
        solutions: Sequence[PerStripeSolution],
        num_racks: int,
        aggregated: bool,
    ) -> None:
        if not solutions:
            raise RecoveryError("multi-stripe solution needs at least one stripe")
        failed_racks = {s.failed_rack for s in solutions}
        if len(failed_racks) != 1:
            raise RecoveryError(
                f"solutions disagree on the failed rack: {failed_racks}"
            )
        self.solutions = sorted(solutions, key=lambda s: s.stripe_id)
        self.num_racks = num_racks
        self.aggregated = aggregated
        self.failed_rack = failed_racks.pop()
        # Lazy caches: solutions never change after construction
        # (replace() builds a new object), so traffic totals and the
        # rack -> solutions index are computed at most once each.
        self._traffic: list[int] | None = None
        self._by_rack: dict[int, tuple[PerStripeSolution, ...]] | None = None

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self):
        return iter(self.solutions)

    def solution_for(self, stripe_id: int) -> PerStripeSolution:
        """The per-stripe solution for ``stripe_id``.

        Raises:
            RecoveryError: if the stripe is not part of this solution.
        """
        for s in self.solutions:
            if s.stripe_id == stripe_id:
                return s
        raise RecoveryError(f"no solution for stripe {stripe_id}")

    def replace(self, new: PerStripeSolution) -> "MultiStripeSolution":
        """A copy with the solution for ``new.stripe_id`` substituted."""
        rest = [s for s in self.solutions if s.stripe_id != new.stripe_id]
        if len(rest) == len(self.solutions):
            raise RecoveryError(f"no existing solution for stripe {new.stripe_id}")
        return MultiStripeSolution(
            rest + [new], num_racks=self.num_racks, aggregated=self.aggregated
        )

    # -- traffic metrics ----------------------------------------------------

    def traffic_by_rack(self) -> list[int]:
        """``t_{i,f}`` in chunk units for every rack ``i`` (0 at ``A_f``)."""
        if self._traffic is None:
            t = [0] * self.num_racks
            for sol in self.solutions:
                for rack, amount in sol.cross_rack_chunks(
                    self.aggregated
                ).items():
                    t[rack] += amount
            self._traffic = t
        return list(self._traffic)

    def solutions_using(self, rack_id: int) -> tuple[PerStripeSolution, ...]:
        """Per-stripe solutions that read from ``rack_id``, stripe-sorted.

        Backed by a lazily built rack -> solutions index so Algorithm 2
        does not rescan every stripe per substitution attempt.
        """
        if self._by_rack is None:
            index: dict[int, list[PerStripeSolution]] = {}
            for sol in self.solutions:
                for rack in sol.chunks_by_rack:
                    index.setdefault(rack, []).append(sol)
            self._by_rack = {r: tuple(s) for r, s in index.items()}
        return self._by_rack.get(rack_id, ())

    def total_cross_rack_traffic(self) -> int:
        """Total cross-rack repair traffic, in chunk units."""
        return sum(self.traffic_by_rack())

    def load_balancing_rate(self) -> float:
        """The paper's λ: max over intact racks / mean over intact racks.

        Defined as 1.0 when there is no cross-rack traffic at all.
        """
        t = self.traffic_by_rack()
        intact = [t[i] for i in range(self.num_racks) if i != self.failed_rack]
        total = sum(intact)
        if total == 0:
            return 1.0
        return max(intact) / (total / len(intact))

    def __repr__(self) -> str:
        return (
            f"MultiStripeSolution(stripes={len(self.solutions)}, "
            f"racks={self.num_racks}, aggregated={self.aggregated}, "
            f"traffic={self.total_cross_rack_traffic()}, "
            f"lambda={self.load_balancing_rate():.3f})"
        )
