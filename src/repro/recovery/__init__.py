"""CAR recovery layer: per-stripe selection, balancing, planning, execution."""

from repro.recovery.balancer import BalanceTrace, GreedyLoadBalancer
from repro.recovery.baselines import (
    CarStrategy,
    EnumerationBalancedStrategy,
    MinRackNoAggregationStrategy,
    RandomAggregatedStrategy,
    RandomRecoveryStrategy,
    RecoveryStrategy,
)
from repro.recovery.executor import ExecutionResult, PlanExecutor
from repro.recovery.lrc import LrcLocalRecoveryStrategy, lrc_groups_for_placement
from repro.recovery.metrics import TrafficReport, reduction_ratio, traffic_report
from repro.recovery.replacement import (
    LeastLoadedReplacementPolicy,
    ReplacementPolicy,
    SameNodeReplacementPolicy,
    SameRackReplacementPolicy,
    eligible_replacements,
    with_replacement,
)
from repro.recovery.planner import (
    ComputeTask,
    RecoveryPlan,
    StreamingRecoveryPlan,
    StripePlan,
    Transfer,
    plan_recovery,
    plan_recovery_streaming,
)
from repro.recovery.selector import (
    CarSelector,
    build_solution,
    iter_valid_rack_sets,
    min_racks_needed,
)
from repro.recovery.regenerating import (
    PiggybackStrategy,
    RackAwareMSRStrategy,
    rack_msr_params,
)
from repro.recovery.solution import (
    MultiStripeSolution,
    PerStripeSolution,
    WeightedStripeSolution,
)
from repro.recovery.weighted import (
    BandwidthAwareBalancer,
    WeightedBalanceTrace,
    drain_times,
    solve_bandwidth_aware,
)
from repro.recovery.rackfail import RackRecovery, RackRecoverySolution, StripeRackLoss

__all__ = [
    "BalanceTrace",
    "GreedyLoadBalancer",
    "RecoveryStrategy",
    "CarStrategy",
    "RandomRecoveryStrategy",
    "MinRackNoAggregationStrategy",
    "RandomAggregatedStrategy",
    "EnumerationBalancedStrategy",
    "ExecutionResult",
    "LrcLocalRecoveryStrategy",
    "lrc_groups_for_placement",
    "PlanExecutor",
    "TrafficReport",
    "traffic_report",
    "reduction_ratio",
    "ComputeTask",
    "RecoveryPlan",
    "StreamingRecoveryPlan",
    "StripePlan",
    "Transfer",
    "plan_recovery",
    "plan_recovery_streaming",
    "ReplacementPolicy",
    "SameNodeReplacementPolicy",
    "SameRackReplacementPolicy",
    "LeastLoadedReplacementPolicy",
    "eligible_replacements",
    "with_replacement",
    "CarSelector",
    "build_solution",
    "iter_valid_rack_sets",
    "min_racks_needed",
    "MultiStripeSolution",
    "PerStripeSolution",
    "WeightedStripeSolution",
    "RackAwareMSRStrategy",
    "PiggybackStrategy",
    "rack_msr_params",
    "BandwidthAwareBalancer",
    "WeightedBalanceTrace",
    "drain_times",
    "solve_bandwidth_aware",
    "RackRecovery",
    "RackRecoverySolution",
    "StripeRackLoss",
]
