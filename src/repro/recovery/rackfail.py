"""Whole-rack failure recovery (the event the placement constraint buys).

The paper constrains placement to ``c_{i,j} <= m`` per rack so that any
single *rack* failure leaves every stripe with at least ``k`` survivors
(Section IV-B).  This module exercises that guarantee end to end:

- a rack fails; a stripe may lose up to ``m`` chunks at once;
- for each affected stripe, helpers are drawn from the **minimum number
  of surviving racks** (the Theorem 1 rule without a local-rack term);
- each accessed rack partially decodes *one aggregate per lost chunk*
  (the repair vector of every target splits by rack independently), so
  cross-rack traffic per stripe is ``d_j * L_j`` aggregated versus
  ``k * L_j`` direct, with ``L_j`` lost chunks;
- rebuilt chunks land on replacement nodes chosen per stripe among
  nodes holding none of that stripe's chunks (least-loaded first).

Everything is verified on real bytes by :meth:`RackRecovery.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.state import ClusterState
from repro.erasure.repair import execute_partial_decode, split_repair_vector
from repro.errors import NoValidSolutionError, RecoveryError

__all__ = ["StripeRackLoss", "RackRecoverySolution", "RackRecovery"]


@dataclass(frozen=True)
class StripeRackLoss:
    """One stripe's share of a rack failure.

    Attributes:
        stripe_id: the stripe.
        lost_chunks: chunk indices that lived in the failed rack.
        helpers_by_rack: surviving rack -> helper chunk indices used.
        replacements: lost chunk -> node that will host the rebuilt copy.
    """

    stripe_id: int
    lost_chunks: tuple[int, ...]
    helpers_by_rack: dict[int, tuple[int, ...]]
    replacements: dict[int, int]

    @property
    def helper_count(self) -> int:
        """Total helpers retrieved (== k)."""
        return sum(len(c) for c in self.helpers_by_rack.values())

    @property
    def racks_accessed(self) -> tuple[int, ...]:
        """Surviving racks read from (size = the stripe's ``d_j``)."""
        return tuple(sorted(self.helpers_by_rack))

    def cross_rack_chunks(self, aggregated: bool) -> int:
        """Cross-rack traffic in chunk units for this stripe.

        Aggregated: each accessed rack ships one partial per lost chunk.
        Direct: each replacement node fetches all ``k`` raw helpers for
        its own decode (replacements sit in other racks, so every fetch
        crosses the core in the worst case this counts).
        """
        if aggregated:
            return len(self.racks_accessed) * len(self.lost_chunks)
        return self.helper_count * len(self.lost_chunks)


@dataclass
class RackRecoverySolution:
    """All per-stripe rack-loss solutions for one failed rack."""

    failed_rack: int
    stripes: list[StripeRackLoss] = field(default_factory=list)

    def total_cross_rack_chunks(self, aggregated: bool = True) -> int:
        """Total cross-rack traffic in chunk units."""
        return sum(s.cross_rack_chunks(aggregated) for s in self.stripes)

    @property
    def lost_chunk_count(self) -> int:
        """Chunks destroyed by the rack failure."""
        return sum(len(s.lost_chunks) for s in self.stripes)


class RackRecovery:
    """Plans and executes recovery from a whole-rack failure."""

    def __init__(self, state: ClusterState) -> None:
        self.state = state

    # -- planning ----------------------------------------------------------

    def solve(self, rack_id: int) -> RackRecoverySolution:
        """Choose helpers and replacements for every affected stripe.

        Raises:
            NoValidSolutionError: if some stripe cannot gather ``k``
                survivors (placement violated rack fault tolerance).
        """
        topo = self.state.topology
        placement = self.state.placement
        code = self.state.code
        solution = RackRecoverySolution(failed_rack=rack_id)
        load: dict[int, int] = {
            n.node_id: len(placement.chunks_on_node(n.node_id))
            for n in topo.nodes
        }
        for stripe in range(placement.num_stripes):
            layout = placement.stripe_layout(stripe)
            lost = tuple(
                sorted(
                    c
                    for c, node in layout.items()
                    if topo.rack_of(node) == rack_id
                )
            )
            if not lost:
                continue
            survivors_by_rack: dict[int, list[int]] = {}
            for c, node in sorted(layout.items()):
                r = topo.rack_of(node)
                if r != rack_id:
                    survivors_by_rack.setdefault(r, []).append(c)
            total = sum(len(v) for v in survivors_by_rack.values())
            if total < code.k:
                raise NoValidSolutionError(
                    f"stripe {stripe}: only {total} survivors outside "
                    f"rack {rack_id}"
                )
            # Theorem 1 without a local term: biggest racks first.
            helpers_by_rack: dict[int, tuple[int, ...]] = {}
            needed = code.k
            for r in sorted(
                survivors_by_rack, key=lambda r: -len(survivors_by_rack[r])
            ):
                if needed == 0:
                    break
                take = min(len(survivors_by_rack[r]), needed)
                helpers_by_rack[r] = tuple(survivors_by_rack[r][:take])
                needed -= take
            # Replacement nodes: outside the failed rack, not holding a
            # chunk of this stripe, least loaded first.
            used_nodes = set(layout.values())
            candidates = sorted(
                (
                    n.node_id
                    for n in topo.nodes
                    if topo.rack_of(n.node_id) != rack_id
                    and n.node_id not in used_nodes
                ),
                key=lambda n: (load[n], n),
            )
            if len(candidates) < len(lost):
                raise RecoveryError(
                    f"stripe {stripe}: not enough replacement nodes"
                )
            replacements = {}
            for c, node in zip(lost, candidates):
                replacements[c] = node
                load[node] += 1
            solution.stripes.append(
                StripeRackLoss(
                    stripe_id=stripe,
                    lost_chunks=lost,
                    helpers_by_rack=helpers_by_rack,
                    replacements=replacements,
                )
            )
        return solution

    # -- execution ------------------------------------------------------------

    def execute(self, solution: RackRecoverySolution) -> bool:
        """Rebuild every lost chunk on real bytes; True iff byte-exact.

        Each rack's delegate computes one partial per lost chunk
        (Equation 7 applied per target); each replacement node XORs its
        targets' partials.
        """
        if self.state.data is None:
            raise RecoveryError("execution requires a DataStore")
        code = self.state.code
        data = self.state.data
        for s in solution.stripes:
            helpers = sorted(
                c for chunks in s.helpers_by_rack.values() for c in chunks
            )
            group_of = {
                c: rack
                for rack, chunks in s.helpers_by_rack.items()
                for c in chunks
            }
            chunks = {c: data.chunk(s.stripe_id, c) for c in helpers}
            for lost in s.lost_chunks:
                plan = split_repair_vector(code, lost, helpers, group_of)
                partials = execute_partial_decode(code, plan, chunks)
                bufs = list(partials.values())
                rebuilt = bufs[0].copy()
                for buf in bufs[1:]:
                    np.bitwise_xor(rebuilt, buf, out=rebuilt)
                if not data.matches(s.stripe_id, lost, rebuilt):
                    return False
        return True
