"""Executes recovery plans on real chunk bytes and verifies the result.

This is the end-to-end correctness check of the whole pipeline: the
selector picks racks, the planner schedules flows, and the executor
performs the actual GF(2^w) arithmetic — rack delegates compute partial
decodes (Equation 7), the replacement node combines them — and compares
every reconstructed chunk byte-for-byte against the
:class:`~repro.cluster.state.DataStore` ground truth.

It also returns the per-node compute and per-scope transfer byte
counters that the timing model (:mod:`repro.sim`) consumes.

Execution is organised stripe-by-stripe around named *pipeline stages*
(:class:`PipelineStage`).  Before each stage the executor calls the
:meth:`PlanExecutor._checkpoint` hook with the acting node's identity —
a no-op here, but the fault-injection layer (:mod:`repro.faults`)
overrides it to crash helpers, stall disks, or drop flows at exactly
that point in the pipeline.

Two orthogonal durability features (both off by default, so the
fault-free fast path is unchanged):

- ``verify_integrity=True`` routes every transferred buffer — raw
  helper chunks and partially decoded aggregates alike — through
  :meth:`PlanExecutor._deliver`: checksummed at creation, passed
  through the :meth:`_transmit` hook (where the fault layer can corrupt
  bytes in flight), and verified on receipt.  A mismatch invokes
  :meth:`_on_corrupt` — here a hard :class:`IntegrityError`, in the
  robust executor a retransmit ladder — so no unverified byte is ever
  fed to a decode.
- ``journal=`` makes execution crash-resumable: a
  :class:`~repro.durable.journal.RecoveryJournal` receives an intent
  record before each stripe, stage records as cross-rack payloads ship
  and decodes land, and a commit record (with the rebuilt bytes and the
  stripe's traffic/compute deltas) once the stripe verifies.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.state import ClusterState
from repro.durable.checksum import chunk_checksum
from repro.erasure.repair import (
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.errors import IntegrityError, PlanError
from repro.obs import metrics as _metrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.recovery.planner import (
    RecoveryPlan,
    StreamingRecoveryPlan,
    StripePlan,
)
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durable.journal import RecoveryJournal
    from repro.obs.profile import ResourceSampler
    from repro.obs.progress import ProgressReporter

__all__ = ["PipelineStage", "ExecutionResult", "PlanExecutor"]


class PipelineStage(str, enum.Enum):
    """Named points of the per-stripe recovery pipeline.

    These are the stages a fault can be injected at.  Order within one
    stripe: every helper chunk is read (``DISK_READ``), raw chunks move
    to their delegate or the replacement node (``INTRA_TRANSFER`` /
    ``CROSS_TRANSFER``), each rack delegate partially decodes
    (``PARTIAL_DECODE``) and ships the partial across the core
    (``CROSS_TRANSFER`` with a partial payload), the replacement node
    folds the failed rack's survivors (``LOCAL_FOLD``) and combines
    everything (``FINAL_COMBINE``).
    """

    DISK_READ = "disk_read"
    INTRA_TRANSFER = "intra_transfer"
    CROSS_TRANSFER = "cross_transfer"
    PARTIAL_DECODE = "partial_decode"
    LOCAL_FOLD = "local_fold"
    FINAL_COMBINE = "final_combine"


#: Stages worth a write-ahead journal record: the expensive, externally
#: visible transitions (a payload crossed the core, a delegate decoded,
#: the replacement combined).  Disk reads and intra-rack moves are cheap
#: to redo on resume and would triple the journal for no recovery value.
_JOURNALED_STAGES = frozenset(
    {
        PipelineStage.CROSS_TRANSFER,
        PipelineStage.PARTIAL_DECODE,
        PipelineStage.FINAL_COMBINE,
    }
)


@dataclass
class ExecutionResult:
    """Outcome of executing a recovery plan on real data.

    Attributes:
        reconstructed: stripe_id -> rebuilt chunk buffer.
        per_stripe_ok: stripe_id -> byte-exact match against ground truth.
        bytes_computed_by_node: node -> GF input bytes processed (the
            quantity the computation-time model charges).
        cross_rack_bytes / intra_rack_bytes: transfer volume by scope.
    """

    reconstructed: dict[int, np.ndarray] = field(default_factory=dict)
    per_stripe_ok: dict[int, bool] = field(default_factory=dict)
    bytes_computed_by_node: dict[int, int] = field(default_factory=dict)
    cross_rack_bytes: int = 0
    intra_rack_bytes: int = 0

    @property
    def verified(self) -> bool:
        """True iff every stripe reconstructed byte-exactly."""
        return bool(self.per_stripe_ok) and all(self.per_stripe_ok.values())

    @property
    def total_compute_bytes(self) -> int:
        """Total GF input bytes across all nodes."""
        return sum(self.bytes_computed_by_node.values())

    def merge(self, other: "ExecutionResult") -> None:
        """Fold another result (e.g. one stripe's) into this one."""
        self.reconstructed.update(other.reconstructed)
        self.per_stripe_ok.update(other.per_stripe_ok)
        for node, nbytes in other.bytes_computed_by_node.items():
            self.bytes_computed_by_node[node] = (
                self.bytes_computed_by_node.get(node, 0) + nbytes
            )
        self.cross_rack_bytes += other.cross_rack_bytes
        self.intra_rack_bytes += other.intra_rack_bytes


class PlanExecutor:
    """Runs a :class:`RecoveryPlan` against a cluster's stored bytes."""

    def __init__(
        self,
        state: ClusterState,
        tracer: Tracer | NullTracer | None = None,
        *,
        journal: "RecoveryJournal | None" = None,
        verify_integrity: bool = False,
        profiler: "ResourceSampler | None" = None,
    ) -> None:
        if state.data is None:
            raise PlanError("executing a plan requires a DataStore")
        self.state = state
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal
        self.verify_integrity = verify_integrity
        # Optional background resource sampler bracketing execute /
        # execute_streaming.  One ``is None`` check per call; stripes
        # never see it.
        self.profiler = profiler

    def execute(
        self, plan: RecoveryPlan, solution: MultiStripeSolution
    ) -> ExecutionResult:
        """Execute and verify every stripe of the plan.

        Args:
            plan: the transfer/compute schedule.
            solution: the solution the plan was built from (supplies the
                helper grouping for the repair-vector split).
        """
        if self.profiler is not None:
            with self.profiler:
                return self._execute_eager(plan, solution)
        return self._execute_eager(plan, solution)

    def _execute_eager(
        self, plan: RecoveryPlan, solution: MultiStripeSolution
    ) -> ExecutionResult:
        result = ExecutionResult()
        # Indexed once: stripe_plan_for's linear scan is fine for a
        # stripe or two but quadratic over a whole plan.
        by_id = {sp.stripe_id: sp for sp in plan.stripe_plans}
        for sol in solution.solutions:
            sp = by_id.get(sol.stripe_id)
            if sp is None:
                raise PlanError(f"no stripe plan for stripe {sol.stripe_id}")
            self.execute_stripe(plan, sp, sol, result)
        return result

    def execute_streaming(
        self,
        plan: RecoveryPlan | StreamingRecoveryPlan,
        solution: MultiStripeSolution | None = None,
        *,
        window: int = 64,
        batch: bool = True,
        pipelined: bool = True,
        workers: int | None = None,
        shm: bool | None = None,
        sink=None,
        progress: "ProgressReporter | None" = None,
    ) -> ExecutionResult:
        """Execute a plan in bounded-memory stripe windows.

        Functionally identical to :meth:`execute` — byte-identical
        reconstructions, identical traffic/compute accounting, same
        journal intent/commit protocol — but organised for scale:

        - stripes are consumed ``window`` at a time from a lazy
          iterator, so coordinator memory is O(window) rather than
          O(stripes) (pair with a
          :class:`~repro.recovery.planner.StreamingRecoveryPlan` and a
          ``sink`` to keep even million-stripe runs flat);
        - each window's GF decodes are batched by repair signature
          (one kernel call per shared repair vector, see
          :mod:`repro.recovery.streaming`);
        - with ``pipelined=True`` the next window's decodes (stage A,
          a worker thread) overlap the previous window's shipping,
          accounting, and journalling (stage B, this thread).  The
          overlap is recorded as ``exec.stream.aggregate`` /
          ``exec.stream.ship`` spans when tracing is on.  Because the
          metrics registry is not thread-safe, an active registry
          disables the overlap (stages still batch; they just run
          sequentially).

        Args:
            plan: an eager :class:`RecoveryPlan` (pass its
                ``solution``) or a lazy :class:`StreamingRecoveryPlan`
                (pass ``solution=None``).
            window: stripes in flight at once (the memory bound).
            batch: group same-signature stripes into one kernel call.
            pipelined: overlap decode and shipping across windows.
            workers: fan windows over this many *processes* (fast path
                only; chunk data is shared zero-copy via
                :mod:`repro.io_shm` unless ``shm=False``).
            shm: force shared-memory (True) or pickled (False) chunk
                transport for ``workers > 1``; None picks shared memory.
            sink: optional ``sink(stripe_id, rebuilt, ok)`` callback.
                When given, rebuilt chunks are handed off instead of
                accumulated in ``result.reconstructed`` — the O(stripes)
                retention an eager result cannot avoid.
            progress: optional
                :class:`~repro.obs.progress.ProgressReporter`, updated
                once per shipped window (stripes done, windows, traffic,
                journal lag) and finished when the run completes.  The
                per-window cost with no reporter is one ``is None``
                check.

        Raises:
            PlanError: bad window, or plan/solution mismatch.
            ConfigurationError: ``workers > 1`` with a journal or
                integrity verification attached.
        """
        if self.profiler is not None:
            with self.profiler:
                return self._execute_streaming(
                    plan, solution, window=window, batch=batch,
                    pipelined=pipelined, workers=workers, shm=shm,
                    sink=sink, progress=progress,
                )
        return self._execute_streaming(
            plan, solution, window=window, batch=batch, pipelined=pipelined,
            workers=workers, shm=shm, sink=sink, progress=progress,
        )

    def _execute_streaming(
        self,
        plan: RecoveryPlan | StreamingRecoveryPlan,
        solution: MultiStripeSolution | None = None,
        *,
        window: int = 64,
        batch: bool = True,
        pipelined: bool = True,
        workers: int | None = None,
        shm: bool | None = None,
        sink=None,
        progress: "ProgressReporter | None" = None,
    ) -> ExecutionResult:
        from repro.recovery import streaming as _streaming

        if window < 1:
            raise PlanError(f"window must be >= 1, got {window}")
        pairs = self._stream_pairs(plan, solution)
        aggregated = plan.aggregated
        repl = plan.replacement_node
        if workers is not None and workers > 1:
            return _streaming.execute_parallel(
                self, pairs, aggregated, repl,
                window=window, workers=workers, batch=batch, shm=shm,
                sink=sink, progress=progress,
            )
        # The quiet path — no tracing, no metrics, no journal, no
        # integrity pipeline — ships each stripe with pure accounting:
        # every checkpoint/delivery hook would be a no-op, so the
        # per-stripe hook cascade is skipped wholesale.
        fast = (
            not self.tracer.enabled
            and _metrics.CURRENT is None
            and self.journal is None
            and not self.verify_integrity
            # A subclass that hooks checkpoints/delivery (fault
            # injection) needs the full per-stripe cascade to fire.
            and type(self)._checkpoint is PlanExecutor._checkpoint
            and type(self)._deliver is PlanExecutor._deliver
        )
        overlap = pipelined and _metrics.CURRENT is None
        result = ExecutionResult()
        code, data = self.state.code, self.state.data
        spans: list[tuple] = []
        intents = 0
        windows_done = 0
        pool = ThreadPoolExecutor(max_workers=1) if overlap else None
        try:
            pending = None
            for idx, win in enumerate(_streaming.windows(pairs, window)):
                if self.journal is not None:
                    # Intent for every stripe of the window up front:
                    # on a crash mid-window the un-committed stripes are
                    # exactly the journal's pending set.
                    for sol, _sp in win:
                        self.journal.stripe_intent(
                            sol.stripe_id,
                            aggregated=aggregated,
                            lost_chunk=sol.lost_chunk,
                        )
                    intents += len(win)
                if pool is not None:
                    computed = pool.submit(
                        _streaming.compute_window, code, data, win,
                        aggregated, batch=batch, keep_partials=not fast,
                    )
                else:
                    computed = _streaming.compute_window(
                        code, data, win, aggregated,
                        batch=batch, keep_partials=not fast,
                    )
                if pending is not None:
                    self._ship_window(
                        pending, result, aggregated, repl, fast, sink, spans
                    )
                    windows_done += 1
                    if progress is not None:
                        self._report_progress(
                            progress, result, windows_done, intents
                        )
                pending = (idx, computed)
            if pending is not None:
                self._ship_window(
                    pending, result, aggregated, repl, fast, sink, spans
                )
                windows_done += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        if progress is not None:
            self._report_progress(
                progress, result, windows_done, intents, final=True
            )
        if self.tracer.enabled:
            for idx, n, a0, a1, b0, b1, cross, intra in spans:
                self.tracer.emit_span(
                    "exec.stream.aggregate", a0, a1, window=idx, stripes=n
                )
                self.tracer.emit_span(
                    "exec.stream.ship", b0, b1, window=idx, stripes=n,
                    cross_rack_bytes=cross, intra_rack_bytes=intra,
                )
        return result

    def _report_progress(
        self,
        progress: "ProgressReporter",
        result: ExecutionResult,
        windows_done: int,
        intents: int,
        final: bool = False,
    ) -> None:
        """One rate-limited heartbeat from the current result totals.

        Journal lag is the crash-exposure window: intents written whose
        commits have not landed yet.
        """
        done = len(result.per_stripe_ok)
        update = progress.finish if final else progress.update
        update(
            done,
            windows_done=windows_done,
            cross_rack_bytes=result.cross_rack_bytes,
            intra_rack_bytes=result.intra_rack_bytes,
            journal_lag=max(0, intents - done) if self.journal else 0,
        )

    def _stream_pairs(
        self,
        plan: RecoveryPlan | StreamingRecoveryPlan,
        solution: MultiStripeSolution | None,
    ):
        """Normalise either plan form into a lazy (sol, sp) iterator."""
        if isinstance(plan, StreamingRecoveryPlan):
            if solution is not None:
                raise PlanError(
                    "a streaming plan carries its own solutions; "
                    "pass solution=None"
                )
            return plan.iter_stripe_plans()
        if solution is None:
            raise PlanError(
                "execute_streaming over an eager RecoveryPlan needs the "
                "MultiStripeSolution it was built from"
            )
        by_id = {sp.stripe_id: sp for sp in plan.stripe_plans}

        def gen():
            for sol in solution.solutions:
                sp = by_id.get(sol.stripe_id)
                if sp is None:
                    raise PlanError(
                        f"no stripe plan for stripe {sol.stripe_id}"
                    )
                yield sol, sp

        return gen()

    def _ship_window(
        self, pending, result, aggregated, repl, fast, sink, spans
    ) -> None:
        """Stage B: account, checkpoint, and commit one computed window."""
        idx, computed = pending
        if isinstance(computed, tuple):
            outcomes, a0, a1 = computed
        else:
            outcomes, a0, a1 = computed.result()
        b0 = time.perf_counter()
        before_cross = result.cross_rack_bytes
        before_intra = result.intra_rack_bytes
        for outcome in outcomes:
            if fast:
                self._ship_stripe_fast(outcome, result, aggregated, repl, sink)
            else:
                self._ship_stripe_full(outcome, result, aggregated, repl, sink)
        if self.tracer.enabled:
            spans.append(
                (idx, len(outcomes), a0, a1, b0, time.perf_counter(),
                 result.cross_rack_bytes - before_cross,
                 result.intra_rack_bytes - before_intra)
            )

    def _ship_stripe_fast(
        self, outcome, result, aggregated, repl, sink
    ) -> None:
        """Quiet-path shipping: the eager path's accounting, no hooks.

        Every hook skipped here (checkpoints, delivery, journal, span)
        is a strict no-op on the quiet path, so the resulting
        :class:`ExecutionResult` is identical to :meth:`execute`'s.
        """
        sol, sp = outcome.sol, outcome.sp
        chunk_bytes = self.state.data.chunk_size
        for t in sp.transfers:
            if t.cross_rack:
                result.cross_rack_bytes += chunk_bytes
            else:
                result.intra_rack_bytes += chunk_bytes
        charge = result.bytes_computed_by_node
        if aggregated:
            for group in outcome.groups:
                node = (
                    repl
                    if group.group_key == sol.failed_rack
                    else sp.delegates[group.group_key]
                )
                charge[node] = charge.get(node, 0) + group.size * chunk_bytes
            charge[repl] = (
                charge.get(repl, 0) + len(outcome.groups) * chunk_bytes
            )
        else:
            charge[repl] = charge.get(repl, 0) + sol.helper_count * chunk_bytes
        if sink is not None:
            sink(sol.stripe_id, outcome.rebuilt, outcome.ok)
        else:
            result.reconstructed[sol.stripe_id] = outcome.rebuilt
        result.per_stripe_ok[sol.stripe_id] = outcome.ok

    def _ship_stripe_full(
        self, outcome, result, aggregated, repl, sink
    ) -> None:
        """Instrumented shipping: the eager path's exact hook sequence.

        Fires the same checkpoints and deliveries, in the same order,
        as :meth:`execute_stripe` — traces, stage-counter metrics,
        journal stage/commit records, and integrity verification are
        indistinguishable from an eager run of the same stripe (only
        the decode itself already happened, batched, in stage A).
        """
        sol, sp = outcome.sol, outcome.sp
        chunk_bytes = self.state.data.chunk_size
        if self.journal is not None:
            before_cross = result.cross_rack_bytes
            before_intra = result.intra_rack_bytes
            before_compute = dict(result.bytes_computed_by_node)
        with self.tracer.span(
            "exec.stripe", stripe_id=sol.stripe_id, aggregated=aggregated
        ):
            for c in sol.helpers:
                node = self.state.placement.node_of(sol.stripe_id, c)
                self._checkpoint(
                    PipelineStage.DISK_READ,
                    stripe_id=sol.stripe_id,
                    node=node,
                    rack=self.state.topology.rack_of(node),
                    chunk=c,
                )
            for t in sp.transfers:
                if t.is_partial:
                    continue
                stage = (
                    PipelineStage.CROSS_TRANSFER
                    if t.cross_rack
                    else PipelineStage.INTRA_TRANSFER
                )
                self._deliver(
                    stage,
                    self.state.data.chunk(sol.stripe_id, t.chunk_index),
                    stripe_id=sol.stripe_id,
                    node=t.src_node,
                    rack=t.src_rack,
                    chunk=t.chunk_index,
                )
                if t.cross_rack:
                    result.cross_rack_bytes += chunk_bytes
                else:
                    result.intra_rack_bytes += chunk_bytes
            if aggregated:
                partial_transfers = [t for t in sp.transfers if t.is_partial]
                groups = sorted(
                    outcome.groups,
                    key=lambda g: (
                        g.group_key != sol.failed_rack, g.group_key
                    ),
                )
                for group in groups:
                    if group.group_key == sol.failed_rack:
                        node = repl
                        self._checkpoint(
                            PipelineStage.LOCAL_FOLD,
                            stripe_id=sol.stripe_id,
                            node=node,
                            rack=self.state.topology.rack_of(node),
                        )
                    else:
                        node = sp.delegates[group.group_key]
                        self._checkpoint(
                            PipelineStage.PARTIAL_DECODE,
                            stripe_id=sol.stripe_id,
                            node=node,
                            rack=group.group_key,
                            is_partial=True,
                        )
                        xfer = _partial_transfer_from(partial_transfers, node)
                        self._deliver(
                            PipelineStage.CROSS_TRANSFER
                            if xfer.cross_rack
                            else PipelineStage.INTRA_TRANSFER,
                            outcome.partials[group.group_key],
                            stripe_id=sol.stripe_id,
                            node=node,
                            rack=group.group_key,
                            is_partial=True,
                        )
                        if xfer.cross_rack:
                            result.cross_rack_bytes += chunk_bytes
                        else:
                            result.intra_rack_bytes += chunk_bytes
                    self._charge(result, node, group.size * chunk_bytes)
                self._charge(result, repl, len(outcome.groups) * chunk_bytes)
            else:
                self._charge(result, repl, sol.helper_count * chunk_bytes)
            self._checkpoint(
                PipelineStage.FINAL_COMBINE,
                stripe_id=sol.stripe_id,
                node=repl,
                rack=self.state.topology.rack_of(repl),
            )
            if sink is not None:
                sink(sol.stripe_id, outcome.rebuilt, outcome.ok)
            else:
                result.reconstructed[sol.stripe_id] = outcome.rebuilt
            result.per_stripe_ok[sol.stripe_id] = outcome.ok
        reg = _metrics.CURRENT
        if reg is not None:
            mode = "aggregated" if aggregated else "direct"
            reg.counter("exec.stripes").inc(mode=mode)
        if self.journal is not None:
            self.journal.stripe_commit(
                sol.stripe_id,
                outcome.rebuilt,
                lost_chunk=sol.lost_chunk,
                ok=outcome.ok,
                cross_rack_bytes=result.cross_rack_bytes - before_cross,
                intra_rack_bytes=result.intra_rack_bytes - before_intra,
                bytes_computed_by_node={
                    n: b - before_compute.get(n, 0)
                    for n, b in result.bytes_computed_by_node.items()
                    if b - before_compute.get(n, 0)
                },
            )

    def execute_stripe(
        self,
        plan: RecoveryPlan,
        sp: StripePlan,
        sol: PerStripeSolution,
        result: ExecutionResult,
    ) -> None:
        """Execute one stripe of the plan into ``result``.

        Pipeline-stage checkpoints fire in execution order; a checkpoint
        that raises aborts the stripe with ``result`` holding only the
        traffic consumed so far (the robust executor uses this to
        account wasted bytes of failed attempts).

        With a journal attached, an intent record precedes the stripe
        and a commit record — rebuilt bytes plus this stripe's traffic
        and compute deltas — follows its verification, so a resumed
        session replays the stripe from the commit without re-shipping
        anything.  An aborted attempt leaves intent without commit; the
        next attempt (or incarnation) writes a fresh intent.
        """
        if self.journal is not None:
            self.journal.stripe_intent(
                sol.stripe_id,
                aggregated=plan.aggregated,
                lost_chunk=sol.lost_chunk,
            )
            before_cross = result.cross_rack_bytes
            before_intra = result.intra_rack_bytes
            before_compute = dict(result.bytes_computed_by_node)
        with self.tracer.span(
            "exec.stripe",
            stripe_id=sol.stripe_id,
            aggregated=plan.aggregated,
        ):
            self._execute_stripe(plan, sp, sol, result)
        reg = _metrics.CURRENT
        if reg is not None:
            mode = "aggregated" if plan.aggregated else "direct"
            reg.counter("exec.stripes").inc(mode=mode)
        if self.journal is not None:
            self.journal.stripe_commit(
                sol.stripe_id,
                result.reconstructed[sol.stripe_id],
                lost_chunk=sol.lost_chunk,
                ok=result.per_stripe_ok[sol.stripe_id],
                cross_rack_bytes=result.cross_rack_bytes - before_cross,
                intra_rack_bytes=result.intra_rack_bytes - before_intra,
                bytes_computed_by_node={
                    n: b - before_compute.get(n, 0)
                    for n, b in result.bytes_computed_by_node.items()
                    if b - before_compute.get(n, 0)
                },
            )

    def _execute_stripe(
        self,
        plan: RecoveryPlan,
        sp: StripePlan,
        sol: PerStripeSolution,
        result: ExecutionResult,
    ) -> None:
        chunk_bytes = self.state.data.chunk_size
        # Disk reads: every helper chunk leaves a disk exactly once.
        for c in sol.helpers:
            node = self.state.placement.node_of(sol.stripe_id, c)
            self._checkpoint(
                PipelineStage.DISK_READ,
                stripe_id=sol.stripe_id,
                node=node,
                rack=self.state.topology.rack_of(node),
                chunk=c,
            )
        # Raw chunk transfers (partial-payload flows are checkpointed and
        # counted with their decode, below, to keep pipeline order).  The
        # received — integrity-verified — buffers are what the decodes
        # consume; a chunk that never crosses the network is read from
        # its disk directly.
        delivered: dict[int, np.ndarray] = {}
        for t in sp.transfers:
            if t.is_partial:
                continue
            stage = (
                PipelineStage.CROSS_TRANSFER
                if t.cross_rack
                else PipelineStage.INTRA_TRANSFER
            )
            delivered[t.chunk_index] = self._deliver(
                stage,
                self.state.data.chunk(sol.stripe_id, t.chunk_index),
                stripe_id=sol.stripe_id,
                node=t.src_node,
                rack=t.src_rack,
                chunk=t.chunk_index,
            )
            if t.cross_rack:
                result.cross_rack_bytes += chunk_bytes
            else:
                result.intra_rack_bytes += chunk_bytes
        if plan.aggregated:
            rebuilt = self._execute_stripe_aggregated(
                sol, plan, sp, result, delivered
            )
        else:
            rebuilt = self._execute_stripe_direct(sol, plan, result, delivered)
        self._checkpoint(
            PipelineStage.FINAL_COMBINE,
            stripe_id=sol.stripe_id,
            node=plan.replacement_node,
            rack=self.state.topology.rack_of(plan.replacement_node),
        )
        result.reconstructed[sol.stripe_id] = rebuilt
        result.per_stripe_ok[sol.stripe_id] = self.state.data.matches(
            sol.stripe_id, sol.lost_chunk, rebuilt
        )

    # -- internals ------------------------------------------------------

    def _checkpoint(
        self,
        stage: PipelineStage,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        chunk: int | None = None,
        is_partial: bool = False,
    ) -> None:
        """Stage hook; the fault-injection executor extends this.

        The base emits one ``exec.stage`` trace event (and a per-stage
        counter) per checkpoint when telemetry is enabled; it is a
        strict no-op otherwise.
        """
        if self.tracer.enabled:
            self.tracer.event(
                "exec.stage",
                stage=stage.value,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                chunk=chunk,
                is_partial=is_partial,
            )
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("exec.stage.checkpoints").inc(stage=stage.value)
        if self.journal is not None and stage in _JOURNALED_STAGES:
            self.journal.stage(
                stripe_id,
                stage.value,
                node=node,
                rack=rack,
                chunk=chunk,
                is_partial=is_partial,
            )

    def _deliver(
        self,
        stage: PipelineStage,
        buf: np.ndarray,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        chunk: int | None = None,
        is_partial: bool = False,
    ) -> np.ndarray:
        """Ship one buffer through a transfer stage, verified on receipt.

        The stage checkpoint fires first (preserving the fault layer's
        crash/stall/drop semantics and checkpoint ordering).  With
        integrity verification off this is the whole story and the
        sender's buffer is returned untouched.  With it on, the buffer
        is checksummed at creation, pushed through :meth:`_transmit`
        (where the fault layer may corrupt it), and re-checksummed on
        receipt; every mismatch calls :meth:`_on_corrupt` and, if that
        returns, retransmits.  Only a buffer whose received checksum
        matches the sender's is ever returned to a decode.
        """
        self._checkpoint(
            stage,
            stripe_id=stripe_id,
            node=node,
            rack=rack,
            chunk=chunk,
            is_partial=is_partial,
        )
        if not self.verify_integrity:
            return buf
        expected = chunk_checksum(buf)
        attempt = 0
        while True:
            received = self._transmit(
                stage,
                buf,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                attempt=attempt,
                is_partial=is_partial,
            )
            if chunk_checksum(received) == expected:
                reg = _metrics.CURRENT
                if reg is not None:
                    reg.counter("integrity.verified").inc(stage=stage.value)
                return received
            attempt += 1
            reg = _metrics.CURRENT
            if reg is not None:
                reg.counter("integrity.corruptions").inc(stage=stage.value)
            self._on_corrupt(
                stage,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                attempt=attempt,
                is_partial=is_partial,
            )

    def _transmit(
        self,
        stage: PipelineStage,
        buf: np.ndarray,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        attempt: int = 0,
        is_partial: bool = False,
    ) -> np.ndarray:
        """Network hook: what the receiver sees.

        The base network is perfect — the sender's buffer arrives as
        is.  The fault layer overrides this to corrupt bytes in flight
        (:attr:`~repro.faults.events.FaultKind.IN_FLIGHT_CORRUPT`).
        """
        return buf

    def _on_corrupt(
        self,
        stage: PipelineStage,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        attempt: int,
        is_partial: bool = False,
    ) -> None:
        """Checksum-mismatch hook; returning means "retransmit".

        Without a fault-handling layer a corrupt receipt is fatal — the
        plain executor has no retry policy, and silently re-reading
        would hide real faults.  The robust executor overrides this
        with the RETRY/ESCALATE ladder.
        """
        raise IntegrityError(
            f"checksum mismatch at {stage.value}: payload from node {node} "
            f"(stripe {stripe_id}, attempt {attempt})"
        )

    def _charge(self, result: ExecutionResult, node: int, nbytes: int) -> None:
        result.bytes_computed_by_node[node] = (
            result.bytes_computed_by_node.get(node, 0) + nbytes
        )

    def _chunks(
        self, stripe_id: int, indices, delivered=None
    ) -> dict[int, np.ndarray]:
        """Helper chunk buffers, preferring network-delivered copies.

        A chunk that moved over the network decodes from the verified
        received buffer; one that never left its node (the delegate's
        own chunk, co-located helpers) reads from disk.
        """
        if delivered is None:
            delivered = {}
        return {
            c: (
                delivered[c]
                if c in delivered
                else self.state.data.chunk(stripe_id, c)
            )
            for c in indices
        }

    def _execute_stripe_aggregated(
        self, sol, plan: RecoveryPlan, sp: StripePlan, result, delivered=None
    ):
        code = self.state.code
        chunk_bytes = self.state.data.chunk_size
        decode_plan = split_repair_vector(
            code, sol.lost_chunk, sol.helpers, sol.rack_map()
        )
        chunks = self._chunks(sol.stripe_id, sol.helpers, delivered)
        # Each rack's partial decode (Equation 7) happens at its
        # delegate; the buffers computed here are the payloads the
        # delivery step below ships — and possibly corrupts/verifies —
        # before the final combine may touch them.
        partials = execute_partial_decode(code, decode_plan, chunks)
        partial_transfers = [t for t in sp.transfers if t.is_partial]
        # Charge each rack's partial decode to its delegate (or to the
        # replacement node for the failed rack's local fold).
        groups = sorted(
            decode_plan.groups,
            key=lambda g: (g.group_key != sol.failed_rack, g.group_key),
        )
        for group in groups:
            if group.group_key == sol.failed_rack:
                node = plan.replacement_node
                self._checkpoint(
                    PipelineStage.LOCAL_FOLD,
                    stripe_id=sol.stripe_id,
                    node=node,
                    rack=self.state.topology.rack_of(node),
                )
            else:
                node = sp.delegates[group.group_key]
                self._checkpoint(
                    PipelineStage.PARTIAL_DECODE,
                    stripe_id=sol.stripe_id,
                    node=node,
                    rack=group.group_key,
                    is_partial=True,
                )
                xfer = _partial_transfer_from(partial_transfers, node)
                partials[group.group_key] = self._deliver(
                    PipelineStage.CROSS_TRANSFER
                    if xfer.cross_rack
                    else PipelineStage.INTRA_TRANSFER,
                    partials[group.group_key],
                    stripe_id=sol.stripe_id,
                    node=node,
                    rack=group.group_key,
                    is_partial=True,
                )
                if xfer.cross_rack:
                    result.cross_rack_bytes += chunk_bytes
                else:
                    result.intra_rack_bytes += chunk_bytes
            self._charge(result, node, group.size * chunk_bytes)
        # Final XOR of the per-rack partials at the replacement node.
        self._charge(
            result, plan.replacement_node, len(partials) * chunk_bytes
        )
        return combine_partials(code, partials)

    def _execute_stripe_direct(
        self, sol, plan: RecoveryPlan, result, delivered=None
    ):
        code = self.state.code
        chunk_bytes = self.state.data.chunk_size
        chunks = self._chunks(sol.stripe_id, sol.helpers, delivered)
        self._charge(
            result, plan.replacement_node, len(chunks) * chunk_bytes
        )
        return code.reconstruct(sol.lost_chunk, chunks)


def _partial_transfer_from(transfers, delegate: int):
    for t in transfers:
        if t.src_node == delegate:
            return t
    raise PlanError(f"no partial transfer leaves delegate {delegate}")
