"""Executes recovery plans on real chunk bytes and verifies the result.

This is the end-to-end correctness check of the whole pipeline: the
selector picks racks, the planner schedules flows, and the executor
performs the actual GF(2^w) arithmetic — rack delegates compute partial
decodes (Equation 7), the replacement node combines them — and compares
every reconstructed chunk byte-for-byte against the
:class:`~repro.cluster.state.DataStore` ground truth.

It also returns the per-node compute and per-scope transfer byte
counters that the timing model (:mod:`repro.sim`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.state import ClusterState
from repro.erasure.repair import (
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.errors import PlanError
from repro.recovery.planner import RecoveryPlan
from repro.recovery.solution import MultiStripeSolution

__all__ = ["ExecutionResult", "PlanExecutor"]


@dataclass
class ExecutionResult:
    """Outcome of executing a recovery plan on real data.

    Attributes:
        reconstructed: stripe_id -> rebuilt chunk buffer.
        per_stripe_ok: stripe_id -> byte-exact match against ground truth.
        bytes_computed_by_node: node -> GF input bytes processed (the
            quantity the computation-time model charges).
        cross_rack_bytes / intra_rack_bytes: transfer volume by scope.
    """

    reconstructed: dict[int, np.ndarray] = field(default_factory=dict)
    per_stripe_ok: dict[int, bool] = field(default_factory=dict)
    bytes_computed_by_node: dict[int, int] = field(default_factory=dict)
    cross_rack_bytes: int = 0
    intra_rack_bytes: int = 0

    @property
    def verified(self) -> bool:
        """True iff every stripe reconstructed byte-exactly."""
        return bool(self.per_stripe_ok) and all(self.per_stripe_ok.values())

    @property
    def total_compute_bytes(self) -> int:
        """Total GF input bytes across all nodes."""
        return sum(self.bytes_computed_by_node.values())


class PlanExecutor:
    """Runs a :class:`RecoveryPlan` against a cluster's stored bytes."""

    def __init__(self, state: ClusterState) -> None:
        if state.data is None:
            raise PlanError("executing a plan requires a DataStore")
        self.state = state

    def execute(
        self, plan: RecoveryPlan, solution: MultiStripeSolution
    ) -> ExecutionResult:
        """Execute and verify every stripe of the plan.

        Args:
            plan: the transfer/compute schedule.
            solution: the solution the plan was built from (supplies the
                helper grouping for the repair-vector split).
        """
        result = ExecutionResult()
        chunk_bytes = self.state.data.chunk_size
        for t in plan.all_transfers():
            if t.cross_rack:
                result.cross_rack_bytes += chunk_bytes
            else:
                result.intra_rack_bytes += chunk_bytes
        for sol in solution.solutions:
            if plan.aggregated:
                rebuilt = self._execute_stripe_aggregated(sol, plan, result)
            else:
                rebuilt = self._execute_stripe_direct(sol, plan, result)
            result.reconstructed[sol.stripe_id] = rebuilt
            result.per_stripe_ok[sol.stripe_id] = self.state.data.matches(
                sol.stripe_id, sol.lost_chunk, rebuilt
            )
        return result

    # -- internals ------------------------------------------------------

    def _charge(self, result: ExecutionResult, node: int, nbytes: int) -> None:
        result.bytes_computed_by_node[node] = (
            result.bytes_computed_by_node.get(node, 0) + nbytes
        )

    def _chunks(self, stripe_id: int, indices) -> dict[int, np.ndarray]:
        return {
            c: self.state.data.chunk(stripe_id, c) for c in indices
        }

    def _execute_stripe_aggregated(self, sol, plan: RecoveryPlan, result):
        code = self.state.code
        chunk_bytes = self.state.data.chunk_size
        decode_plan = split_repair_vector(
            code, sol.lost_chunk, sol.helpers, sol.rack_map()
        )
        chunks = self._chunks(sol.stripe_id, sol.helpers)
        partials = execute_partial_decode(code, decode_plan, chunks)
        # Charge each rack's partial decode to its delegate (or to the
        # replacement node for the failed rack's local fold).
        stripe_plan = next(
            sp for sp in plan.stripe_plans if sp.stripe_id == sol.stripe_id
        )
        for group in decode_plan.groups:
            if group.group_key == sol.failed_rack:
                node = plan.replacement_node
            else:
                node = stripe_plan.delegates[group.group_key]
            self._charge(result, node, group.size * chunk_bytes)
        # Final XOR of the per-rack partials at the replacement node.
        self._charge(
            result, plan.replacement_node, len(partials) * chunk_bytes
        )
        return combine_partials(code, partials)

    def _execute_stripe_direct(self, sol, plan: RecoveryPlan, result):
        code = self.state.code
        chunk_bytes = self.state.data.chunk_size
        chunks = self._chunks(sol.stripe_id, sol.helpers)
        self._charge(
            result, plan.replacement_node, len(chunks) * chunk_bytes
        )
        return code.reconstruct(sol.lost_chunk, chunks)
