"""Locality-based recovery strategy for LRC-coded clusters.

The LRC answer to the single-failure problem: repair each lost chunk
from its *local group* (``k/l`` helpers) rather than ``k`` helpers.
Combined with :class:`~repro.cluster.placement.GroupAlignedPlacementPolicy`
(each group in one rack), a data-chunk repair triggers **zero**
cross-rack traffic — the storage-for-bandwidth trade the paper's
related work (Huang et al. ATC'12, Sathiamoorthy et al. VLDB'13)
advocates, and the natural comparison point for CAR's
keep-MDS-optimise-the-recovery approach.

The strategy emits ordinary :class:`PerStripeSolution` objects (with
fewer than ``k`` helpers — LRC's repair vectors support that), so the
existing planner, executor, metrics, and simulators all apply
unchanged.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.erasure.lrc import LRCCode
from repro.errors import RecoveryError
from repro.recovery.baselines import RecoveryStrategy, _solution_from_helpers
from repro.recovery.solution import MultiStripeSolution

__all__ = ["LrcLocalRecoveryStrategy", "lrc_groups_for_placement"]


def lrc_groups_for_placement(code: LRCCode) -> list[tuple[int, ...]]:
    """The co-location groups a group-aligned placement should use:
    each local group's data chunks plus its local parity.  Global
    parities are left loose (the policy scatters them)."""
    return [
        code.group_members(g) + (code.local_parity_index(g),)
        for g in range(code.l)
    ]


class LrcLocalRecoveryStrategy(RecoveryStrategy):
    """Repair every lost chunk from its minimal local helper set.

    Args:
        aggregated: whether intra-rack aggregation applies when counting
            cross-rack traffic (True by default — an LRC repair inside
            one rack needs no aggregation, but a global-parity repair
            spanning racks still benefits).
    """

    name = "LRC-local"

    def __init__(self, aggregated: bool = True) -> None:
        self.aggregated = aggregated

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        code = state.code
        if not isinstance(code, LRCCode):
            raise RecoveryError(
                f"{type(self).__name__} requires an LRCCode, got {code!r}"
            )
        solutions = []
        for view in self._views(state):
            helpers = list(code.minimal_repair_helpers(view.lost_chunk))
            missing = [h for h in helpers if h not in view.surviving]
            if missing:
                raise RecoveryError(
                    f"stripe {view.stripe_id}: local helpers {missing} are "
                    f"unavailable (not a single-failure scenario)"
                )
            solutions.append(_solution_from_helpers(state, view, helpers))
        return MultiStripeSolution(
            solutions,
            num_racks=state.topology.num_racks,
            aggregated=self.aggregated,
        )
