"""Recovery strategies: CAR, the paper's RR baseline, and ablations.

Strategy objects turn a failed :class:`~repro.cluster.state.ClusterState`
into a :class:`~repro.recovery.solution.MultiStripeSolution`:

- :class:`CarStrategy` — the paper's contribution: Theorem-1 rack
  selection + partial decoding + Algorithm-2 balancing.
- :class:`RandomRecoveryStrategy` — the paper's RR baseline: ``k``
  random surviving chunks, shipped individually.
- :class:`MinRackNoAggregationStrategy` — ablation: CAR's rack
  selection *without* partial decoding.
- :class:`RandomAggregatedStrategy` — ablation: random helper choice
  *with* partial decoding.
- :class:`EnumerationBalancedStrategy` — exhaustive multi-stripe search
  for the λ-optimal solution (small instances; validates the greedy).
"""

from __future__ import annotations

import abc
import functools
import itertools
import random

from repro.cluster.state import ClusterState, StripeView
from repro.errors import (
    NoValidSolutionError,
    RecoveryError,
    ReproError,
    annotate_strategy,
)
from repro.recovery.balancer import BalanceTrace, GreedyLoadBalancer
from repro.recovery.selector import CarSelector, build_solution
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution

__all__ = [
    "RecoveryStrategy",
    "CarStrategy",
    "RandomRecoveryStrategy",
    "MinRackNoAggregationStrategy",
    "RandomAggregatedStrategy",
    "EnumerationBalancedStrategy",
]


class RecoveryStrategy(abc.ABC):
    """Turns a failed cluster state into a multi-stripe recovery solution."""

    #: Human-readable strategy name (used in reports).
    name: str = "abstract"
    #: Whether intra-rack aggregation applies to this strategy's traffic.
    aggregated: bool = False

    def __init_subclass__(cls, **kwargs) -> None:
        # Wrap each concrete solve() so any escaping library error names
        # the strategy that raised it (multi-strategy experiments would
        # otherwise surface anonymous failures).  Types and messages are
        # preserved; the name rides along as an attribute + note.
        super().__init_subclass__(**kwargs)
        solve = cls.__dict__.get("solve")
        if solve is None or getattr(solve, "__isabstractmethod__", False):
            return
        if getattr(solve, "_annotates_strategy", False):
            return

        @functools.wraps(solve)
        def wrapped(self, *args, **kw):
            try:
                return solve(self, *args, **kw)
            except ReproError as exc:
                annotate_strategy(exc, getattr(self, "name", cls.name))
                raise

        wrapped._annotates_strategy = True
        cls.solve = wrapped

    @abc.abstractmethod
    def solve(self, state: ClusterState) -> MultiStripeSolution:
        """Produce a solution for the current failure of ``state``."""

    def _views(self, state: ClusterState) -> list[StripeView]:
        views = state.views()
        if not views:
            raise NoValidSolutionError("the failed node stored no chunks")
        return views


def _solution_from_helpers(
    state: ClusterState, view: StripeView, helpers: list[int]
) -> PerStripeSolution:
    """Group an explicit helper-chunk list by rack into a solution."""
    chunks_by_rack: dict[int, list[int]] = {}
    for c in helpers:
        rack = state.topology.rack_of(view.surviving[c])
        chunks_by_rack.setdefault(rack, []).append(c)
    return PerStripeSolution(
        stripe_id=view.stripe_id,
        lost_chunk=view.lost_chunk,
        failed_rack=view.failed_rack,
        chunks_by_rack={r: tuple(sorted(cs)) for r, cs in chunks_by_rack.items()},
    )


class CarStrategy(RecoveryStrategy):
    """Cross-rack-aware recovery (the paper's CAR).

    Args:
        load_balance: run Algorithm 2 after the per-stripe selection
            (CAR without load balancing is Figure 8's dashed series).
        iterations: Algorithm 2's iteration budget ``e``.
        baseline_traffic: optional per-rack cumulative traffic from past
            repairs; when given, Algorithm 2 balances baseline + current
            (the history-aware long-run extension).
        warm_start: build the initial multi-stripe solution greedily —
            each stripe's ties broken toward the currently least-loaded
            rack — so Algorithm 2 starts near balance and needs far
            fewer substitutions.

    After :meth:`solve`, :attr:`last_trace` holds the balancing trace
    (a trivial single-point trace when ``load_balance`` is False).
    """

    aggregated = True

    def __init__(
        self,
        load_balance: bool = True,
        iterations: int = 50,
        baseline_traffic: list[int] | tuple[int, ...] | None = None,
        warm_start: bool = False,
    ) -> None:
        self.load_balance = load_balance
        self.iterations = iterations
        self.baseline_traffic = baseline_traffic
        self.warm_start = warm_start
        self.last_trace: BalanceTrace | None = None
        if baseline_traffic is not None:
            self.name = "CAR-history"
        else:
            self.name = "CAR" if load_balance else "CAR-noLB"

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        views = self._views(state)
        selector = CarSelector(state.topology, state.code.k)
        if self.warm_start:
            running = [0] * state.topology.num_racks
            if self.baseline_traffic is not None:
                running = list(self.baseline_traffic)
            solutions = []
            for v in views:
                sol = selector.initial_solution(v, traffic_hint=running)
                for rack, amount in sol.cross_rack_chunks(True).items():
                    running[rack] += amount
                solutions.append(sol)
        else:
            solutions = [selector.initial_solution(v) for v in views]
        initial = MultiStripeSolution(
            solutions,
            num_racks=state.topology.num_racks,
            aggregated=True,
        )
        if not self.load_balance:
            self.last_trace = BalanceTrace(
                lambdas=[initial.load_balancing_rate()]
            )
            return initial
        balancer = GreedyLoadBalancer(
            iterations=self.iterations,
            baseline_traffic=self.baseline_traffic,
        )
        balanced, trace = balancer.balance(
            {v.stripe_id: v for v in views}, initial, selector
        )
        self.last_trace = trace
        return balanced


class RandomRecoveryStrategy(RecoveryStrategy):
    """The paper's RR baseline: ``k`` random survivors, no aggregation."""

    name = "RR"
    aggregated = False

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        k = state.code.k
        solutions = []
        for view in self._views(state):
            survivors = sorted(view.surviving)
            if len(survivors) < k:
                raise NoValidSolutionError(
                    f"stripe {view.stripe_id} has {len(survivors)} < k survivors"
                )
            helpers = self.rng.sample(survivors, k)
            solutions.append(_solution_from_helpers(state, view, helpers))
        return MultiStripeSolution(
            solutions, num_racks=state.topology.num_racks, aggregated=False
        )


class MinRackNoAggregationStrategy(RecoveryStrategy):
    """Ablation: Theorem-1 rack selection, but chunks shipped individually.

    Isolates how much of CAR's saving comes from rack minimisation
    alone versus partial decoding.
    """

    name = "MinRack-noAgg"
    aggregated = False

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        selector = CarSelector(state.topology, state.code.k)
        solutions = [
            selector.initial_solution(v) for v in self._views(state)
        ]
        return MultiStripeSolution(
            solutions, num_racks=state.topology.num_racks, aggregated=False
        )


class RandomAggregatedStrategy(RecoveryStrategy):
    """Ablation: random helper choice, but with intra-rack aggregation.

    Isolates the value of partial decoding without rack minimisation.
    """

    name = "Random+Agg"
    aggregated = True

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        k = state.code.k
        solutions = []
        for view in self._views(state):
            survivors = sorted(view.surviving)
            helpers = self.rng.sample(survivors, k)
            solutions.append(_solution_from_helpers(state, view, helpers))
        return MultiStripeSolution(
            solutions, num_racks=state.topology.num_racks, aggregated=True
        )


class EnumerationBalancedStrategy(RecoveryStrategy):
    """Exhaustive multi-stripe optimum (Section IV-D's rejected approach).

    Enumerates the full cross product of valid per-stripe solutions and
    keeps the one minimising λ (ties: lower max traffic, then first
    found).  Exponential in the number of stripes — the paper's point —
    so guarded by ``max_combinations``.  Used to validate the greedy
    balancer's near-optimality on small instances.
    """

    name = "Enumeration"
    aggregated = True

    def __init__(self, max_combinations: int = 200_000) -> None:
        self.max_combinations = max_combinations
        self.combinations_tried = 0

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        views = self._views(state)
        selector = CarSelector(state.topology, state.code.k)
        per_stripe: list[list[PerStripeSolution]] = [
            selector.all_valid_solutions(v) for v in views
        ]
        total = 1
        for opts in per_stripe:
            if not opts:
                raise NoValidSolutionError("a stripe has no valid solution")
            total *= len(opts)
        if total > self.max_combinations:
            raise RecoveryError(
                f"enumeration space {total} exceeds {self.max_combinations}"
            )
        best: MultiStripeSolution | None = None
        best_key: tuple[float, int] | None = None
        num_racks = state.topology.num_racks
        for combo in itertools.product(*per_stripe):
            candidate = MultiStripeSolution(
                list(combo), num_racks=num_racks, aggregated=True
            )
            t = candidate.traffic_by_rack()
            key = (candidate.load_balancing_rate(), max(t))
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        self.combinations_tried = total
        assert best is not None
        return best
