"""Per-stripe solution finding: Theorem 1 and the valid-solution space.

Given a :class:`~repro.cluster.state.StripeView`, this module answers:

- :func:`min_racks_needed` — the paper's ``d_j``: sort intact racks by
  surviving-chunk count, take the largest until (together with the
  failed rack's survivors) at least ``k`` chunks are reachable.
- :func:`iter_valid_rack_sets` — every *valid* choice of ``d_j`` intact
  racks (Section IV-B: a solution is valid iff it recovers the stripe
  by accessing only ``d_j`` intact racks).
- :func:`build_solution` — materialise a concrete chunk selection for a
  chosen rack set: use all survivors in the failed rack (intra-rack
  retrieval is free), then fill up to ``k`` from the chosen racks,
  largest first, never emptying a chosen rack.
- :class:`CarSelector` — the per-stripe entry point CAR uses, including
  the initial pick of Algorithm 2 (the valid solution whose racks hold
  the most chunks).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import NoValidSolutionError, RecoveryError
from repro.cluster.state import StripeView
from repro.cluster.topology import ClusterTopology
from repro.obs import metrics as _metrics
from repro.recovery.solution import PerStripeSolution

__all__ = [
    "min_racks_needed",
    "iter_valid_rack_sets",
    "build_solution",
    "CarSelector",
]


def _intact_counts(view: StripeView) -> list[tuple[int, int]]:
    """(rack_id, surviving count) for intact racks with at least 1 chunk."""
    return [
        (rack, count)
        for rack, count in enumerate(view.rack_counts)
        if rack != view.failed_rack and count > 0
    ]


def min_racks_needed(view: StripeView, k: int) -> int:
    """The paper's ``d_j`` (Theorem 1).

    Sort the intact racks' surviving-chunk counts descending and find
    the smallest prefix whose sum, plus the failed rack's survivors
    ``c'_{f,j}``, reaches ``k``.

    Raises:
        NoValidSolutionError: if even all racks together hold fewer than
            ``k`` survivors (the stripe is unrecoverable).
    """
    local = view.rack_counts[view.failed_rack]
    if local >= k:
        return 0
    counts = sorted((c for _, c in _intact_counts(view)), reverse=True)
    acc = local
    for d, c in enumerate(counts, start=1):
        acc += c
        if acc >= k:
            return d
    raise NoValidSolutionError(
        f"stripe {view.stripe_id}: only {acc} survivors, need {k}"
    )


def iter_valid_rack_sets(view: StripeView, k: int) -> Iterator[tuple[int, ...]]:
    """Yield every valid set of ``d_j`` intact racks, as sorted tuples.

    A rack set ``S`` (|S| = d_j) is valid iff
    ``sum_{i in S} c_{i,j} + c'_{f,j} >= k`` (Section IV-B).
    """
    d = min_racks_needed(view, k)
    if d == 0:
        yield ()
        return
    local = view.rack_counts[view.failed_rack]
    intact = _intact_counts(view)
    for combo in itertools.combinations(intact, d):
        if local + sum(c for _, c in combo) >= k:
            yield tuple(sorted(rack for rack, _ in combo))


def build_solution(
    view: StripeView,
    rack_set: Sequence[int],
    k: int,
    topology: ClusterTopology,
) -> PerStripeSolution:
    """Materialise a per-stripe solution for a chosen intact-rack set.

    Chunk selection: take *all* survivors in the failed rack first
    (intra-rack, free), then fill the remaining need from the chosen
    racks in descending size order — taking everything from each rack
    except the last, which contributes only what is still needed.  Every
    chosen rack always contributes at least one chunk (otherwise the
    rack set would not be minimal/valid).

    Raises:
        RecoveryError: if the rack set cannot supply ``k`` helpers.
    """
    racks = list(rack_set)
    if view.failed_rack in racks:
        raise RecoveryError("rack set must contain intact racks only")
    local_chunks = view.chunks_in_rack(view.failed_rack, topology)
    chunks_by_rack: dict[int, tuple[int, ...]] = {}
    take_local = min(len(local_chunks), k)
    if take_local:
        chunks_by_rack[view.failed_rack] = tuple(local_chunks[:take_local])
    needed = k - take_local

    per_rack = {
        rack: view.chunks_in_rack(rack, topology) for rack in racks
    }
    available = sum(len(c) for c in per_rack.values())
    if needed > available:
        raise RecoveryError(
            f"stripe {view.stripe_id}: rack set {racks} holds {available} "
            f"chunks, need {needed}"
        )
    if needed == 0 and racks:
        raise RecoveryError(
            f"stripe {view.stripe_id}: rack set {racks} is unnecessary "
            f"(local survivors already suffice)"
        )
    # Largest racks first so the partially-used rack is the smallest.
    for rack in sorted(racks, key=lambda r: len(per_rack[r]), reverse=True):
        take = min(len(per_rack[rack]), needed)
        if take == 0:
            raise RecoveryError(
                f"stripe {view.stripe_id}: rack {rack} in the set would "
                f"contribute nothing (set is not minimal)"
            )
        chunks_by_rack[rack] = tuple(per_rack[rack][:take])
        needed -= take
    if needed:
        raise RecoveryError(
            f"stripe {view.stripe_id}: could not gather k={k} helpers"
        )
    return PerStripeSolution(
        stripe_id=view.stripe_id,
        lost_chunk=view.lost_chunk,
        failed_rack=view.failed_rack,
        chunks_by_rack=chunks_by_rack,
    )


class CarSelector:
    """Per-stripe solution selection for CAR.

    Args:
        topology: the cluster.
        k: data chunks per stripe (the decode threshold).
    """

    def __init__(self, topology: ClusterTopology, k: int) -> None:
        self.topology = topology
        self.k = k

    def min_racks(self, view: StripeView) -> int:
        """Theorem 1's ``d_j`` for one stripe."""
        return min_racks_needed(view, self.k)

    def initial_solution(
        self,
        view: StripeView,
        traffic_hint: Sequence[int] | None = None,
    ) -> PerStripeSolution:
        """Algorithm 2's step 2 pick: the racks with the most chunks.

        Ties are broken by rack id for determinism — unless a
        ``traffic_hint`` (current per-rack cross-rack traffic) is given,
        in which case equally-sized racks are taken least-loaded first.
        This *balance-aware initialisation* is an online-greedy warm
        start that leaves Algorithm 2 far fewer substitutions to make
        (measured in the warm-start ablation) without changing the
        per-stripe minimum ``d_j``.
        """
        d = min_racks_needed(view, self.k)
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("selector.solutions").inc()
            reg.histogram(
                "selector.racks_accessed", buckets=_metrics.COUNT_BUCKETS
            ).observe(d)
        intact = _intact_counts(view)
        if traffic_hint is None:
            intact.sort(key=lambda rc: (-rc[1], rc[0]))
        else:
            intact.sort(
                key=lambda rc: (-rc[1], traffic_hint[rc[0]], rc[0])
            )
        chosen = tuple(sorted(rack for rack, _ in intact[:d]))
        return build_solution(view, chosen, self.k, self.topology)

    def degraded_solution(
        self,
        view: StripeView,
        dead_nodes: Iterable[int],
        traffic_hint: Sequence[int] | None = None,
    ) -> PerStripeSolution:
        """Re-plan one stripe after secondary failures.

        Removes chunks stored on ``dead_nodes`` from the view and runs
        the normal Algorithm-2 initial pick on what is left, so the
        returned solution is Theorem-1 minimal over the *surviving*
        racks.  Raises :class:`NoValidSolutionError` if fewer than ``k``
        chunks survive (data loss).
        """
        from repro.cluster.failure import degraded_view

        return self.initial_solution(
            degraded_view(view, dead_nodes, self.topology),
            traffic_hint=traffic_hint,
        )

    def valid_rack_sets(self, view: StripeView) -> list[tuple[int, ...]]:
        """All valid ``d_j``-sized intact-rack sets."""
        return list(iter_valid_rack_sets(view, self.k))

    def all_valid_solutions(self, view: StripeView) -> list[PerStripeSolution]:
        """Materialised solutions for every valid rack set."""
        return [
            build_solution(view, rs, self.k, self.topology)
            for rs in self.valid_rack_sets(view)
        ]

    def substitute(
        self,
        view: StripeView,
        current: PerStripeSolution,
        avoid_rack: int,
        use_rack: int,
    ) -> PerStripeSolution | None:
        """Find ``R'_j``: same stripe, reads from ``use_rack`` not ``avoid_rack``.

        This is Algorithm 2's step 8: the replacement solution must keep
        the same (minimal) rack count, drop ``avoid_rack`` entirely, and
        include ``use_rack``.  Returns None if no such valid solution
        exists.
        """
        if not current.uses_rack(avoid_rack) or current.uses_rack(use_rack):
            return None
        if use_rack == view.failed_rack:
            return None
        new_set = tuple(
            sorted(
                [r for r in current.intact_racks_accessed if r != avoid_rack]
                + [use_rack]
            )
        )
        local = view.rack_counts[view.failed_rack]
        supply = sum(view.rack_counts[r] for r in new_set)
        if view.rack_counts[use_rack] == 0 or local + supply < self.k:
            return None
        return build_solution(view, new_set, self.k, self.topology)
