"""Regenerating-code recovery strategies: rack-aware MSR and piggybacked RS.

Both strategies ship *sub-chunk* payloads, so their solutions are
:class:`~repro.recovery.solution.WeightedStripeSolution` objects whose
``rack_units`` carry fractional cross-rack chunk units:

- :class:`RackAwareMSRStrategy` models the striped rack-aware MSR
  construction (Chen & Barg, arXiv:1901.04419; kernels in
  :class:`~repro.erasure.regenerating.RackAwareMSRCode`): ``dbar``
  helper racks each ship one beta-sized packet of
  ``1 / (kbar - 1)`` chunk units, computed locally inside the rack —
  ``dbar / (kbar - 1)`` cross-rack chunk units per stripe, meeting the
  rack-level cut-set bound
  :func:`~repro.analysis.bounds.rack_aware_msr_cross_rack` with
  equality at ``dbar = 2 kbar - 2``.
- :class:`PiggybackStrategy` models the piggybacked RS code (Rashmi et
  al., arXiv:1309.0186; kernels in
  :class:`~repro.erasure.piggyback.PiggybackRSCode`): a lost data chunk
  is rebuilt from half-chunks, ``(k + |G|) / 2`` chunk units instead of
  RS's ``k``; a lost parity falls back to a plain RS repair.

Unlike CAR — which adapts to any placement — the rack-aware MSR
strategy requires enough intact racks per stripe (``dbar`` of them
holding survivors); it raises :class:`~repro.errors.StrategyError`
naming itself when the cluster cannot satisfy that, which is why it is
paired with
:class:`~repro.cluster.placement.RackAlignedPlacementPolicy` in the
regen experiment.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.erasure.piggyback import PiggybackRSCode
from repro.errors import StrategyError
from repro.obs import metrics as _metrics
from repro.recovery.baselines import RecoveryStrategy
from repro.recovery.solution import MultiStripeSolution, WeightedStripeSolution

__all__ = [
    "RackAwareMSRStrategy",
    "PiggybackStrategy",
    "rack_msr_params",
]


def rack_msr_params(num_racks: int) -> tuple[int, int]:
    """Derive ``(kbar, dbar)`` for a rack-aware MSR deployment on
    ``num_racks`` racks.

    The striped product-matrix construction needs ``dbar = 2 kbar - 2``
    helper racks out of the ``num_racks - 1`` intact ones, so the
    largest usable rack-level reconstruction threshold is
    ``kbar = floor((num_racks + 1) / 2)``.

    Raises:
        StrategyError: if fewer than 3 racks (``kbar`` would drop
            below 2, where the product-matrix construction degenerates).
    """
    kbar = (num_racks + 1) // 2
    if kbar < 2:
        raise StrategyError(
            f"rack-aware MSR needs >= 3 racks, topology has {num_racks}",
            strategy=RackAwareMSRStrategy.name,
        )
    return kbar, 2 * kbar - 2


class RackAwareMSRStrategy(RecoveryStrategy):
    """Rack-aware MSR repair: ``dbar`` helper racks, one packet each.

    Every helper rack computes its beta-sized repair packet from chunks
    it already holds (zero *extra* intra-rack traffic in the striped
    construction) and ships ``1 / (kbar - 1)`` chunk units across the
    core.  Helper racks are chosen least-loaded-first against a running
    per-rack traffic tally, so the multi-stripe solution is born
    balanced — the regenerating analogue of CAR's Algorithm 2.

    Args:
        kbar: rack-level reconstruction threshold; default derives the
            largest feasible value from the topology via
            :func:`rack_msr_params`.

    After :meth:`solve`, :attr:`last_params` holds the ``(kbar, dbar)``
    actually used.
    """

    name = "RackMSR"
    aggregated = True

    def __init__(self, kbar: int | None = None) -> None:
        if kbar is not None and kbar < 2:
            raise StrategyError(
                f"kbar must be >= 2, got {kbar}", strategy=self.name
            )
        self.kbar = kbar
        self.last_params: tuple[int, int] | None = None

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        views = self._views(state)
        num_racks = state.topology.num_racks
        if self.kbar is None:
            kbar, dbar = rack_msr_params(num_racks)
        else:
            kbar, dbar = self.kbar, 2 * self.kbar - 2
        if dbar > num_racks - 1:
            raise StrategyError(
                f"kbar={kbar} needs dbar={dbar} helper racks, only "
                f"{num_racks - 1} intact racks exist",
                strategy=self.name,
            )
        self.last_params = (kbar, dbar)
        beta = 1.0 / (kbar - 1)
        running = [0.0] * num_racks
        solutions = []
        for view in views:
            members = view.rack_members(state.topology)
            candidates = [
                rack
                for rack, chunks in members.items()
                if rack != view.failed_rack and chunks
            ]
            if len(candidates) < dbar:
                raise StrategyError(
                    f"stripe {view.stripe_id}: only {len(candidates)} "
                    f"intact racks hold survivors, repair needs "
                    f"dbar={dbar} (use a rack-aligned placement)",
                    strategy=self.name,
                )
            candidates.sort(key=lambda rack: (running[rack], rack))
            helpers = candidates[:dbar]
            chunks_by_rack = {}
            rack_units = {}
            for rack in helpers:
                # One node per helper rack computes the packet; pin the
                # lowest surviving chunk as its representative input.
                chunks_by_rack[rack] = (min(members[rack]),)
                rack_units[rack] = beta
                running[rack] += beta
            solutions.append(
                WeightedStripeSolution(
                    stripe_id=view.stripe_id,
                    lost_chunk=view.lost_chunk,
                    failed_rack=view.failed_rack,
                    chunks_by_rack=chunks_by_rack,
                    rack_units=rack_units,
                )
            )
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("strategy.regen.stripes").inc(
                len(solutions), strategy=self.name
            )
            reg.counter("strategy.regen.cross_rack_units").inc(
                beta * dbar * len(solutions), strategy=self.name
            )
        return MultiStripeSolution(
            solutions, num_racks=num_racks, aggregated=True
        )


class PiggybackStrategy(RecoveryStrategy):
    """Piggybacked-RS repair: half-chunk downloads for lost data chunks.

    Rebuilding data chunk ``i`` fetches the ``b``-halves of the other
    ``k - 1`` data chunks, both substripes' worth of parity halves and
    the ``a``-halves of ``i``'s piggyback group peers — group peers ship
    a full chunk, everyone else half a chunk.  A lost *parity* chunk is
    rebuilt by a plain RS repair (``k`` full chunks), exactly the
    asymmetry of the Hitchhiker design.  Works on any placement; racks
    are whatever the placement made them.
    """

    name = "Piggyback"
    aggregated = False

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        k, m = state.code.k, state.code.m
        if m < 2:
            raise StrategyError(
                f"piggybacking needs m >= 2 parities, code has m={m}",
                strategy=self.name,
            )
        pb = PiggybackRSCode(k, m)
        solutions = []
        for view in self._views(state):
            per_chunk: dict[int, float] = {}
            if pb.is_data(view.lost_chunk):
                for c, _half in pb.data_repair_sources(view.lost_chunk):
                    per_chunk[c] = per_chunk.get(c, 0.0) + 0.5
            else:
                for c, _half in pb.parity_repair_sources():
                    per_chunk[c] = per_chunk.get(c, 0.0) + 0.5
            missing = sorted(c for c in per_chunk if c not in view.surviving)
            if missing:
                # Cannot happen for a single failure (sources never
                # include the lost chunk); guards multi-failure misuse.
                raise StrategyError(
                    f"stripe {view.stripe_id}: piggyback sources "
                    f"{missing} are not surviving",
                    strategy=self.name,
                )
            chunks_by_rack: dict[int, list[int]] = {}
            rack_units: dict[int, float] = {}
            for c, units in per_chunk.items():
                rack = state.topology.rack_of(view.surviving[c])
                chunks_by_rack.setdefault(rack, []).append(c)
                if rack != view.failed_rack:
                    rack_units[rack] = rack_units.get(rack, 0.0) + units
            solutions.append(
                WeightedStripeSolution(
                    stripe_id=view.stripe_id,
                    lost_chunk=view.lost_chunk,
                    failed_rack=view.failed_rack,
                    chunks_by_rack={
                        r: tuple(sorted(cs))
                        for r, cs in chunks_by_rack.items()
                    },
                    rack_units=rack_units,
                )
            )
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("strategy.regen.stripes").inc(
                len(solutions), strategy=self.name
            )
            reg.counter("strategy.regen.cross_rack_units").inc(
                sum(
                    sum(s.rack_units.values())
                    for s in solutions
                ),
                strategy=self.name,
            )
        return MultiStripeSolution(
            solutions, num_racks=state.topology.num_racks, aggregated=False
        )
