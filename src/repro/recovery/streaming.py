"""Windowed, batched stripe computation for the streaming executor.

This module is the compute half of
:meth:`~repro.recovery.executor.PlanExecutor.execute_streaming`:

- :func:`windows` slices a lazy ``(solution, stripe_plan)`` iterator
  into bounded windows, so coordinator memory is O(window) regardless of
  stripe count;
- :func:`compute_window` performs every GF decode of a window in one
  pass, **batched by repair signature**: stripes whose repairs use the
  same lost index, helper set, and rack grouping share one repair
  vector, so their chunk buffers are concatenated and each per-rack
  partial decode (Equation 7) becomes a single multi-stripe
  :func:`~repro.gf.vector.dot_rows` kernel call.  GF table lookups are
  elementwise, so the concatenated result sliced per stripe is
  byte-identical to per-stripe calls;
- the per-signature :class:`~repro.erasure.repair.PartialDecodePlan` is
  memoised in the named :data:`REPAIR_GROUP_CACHE`, whose hit/miss rates
  surface through the :mod:`repro.obs` metrics registry (the hit rate is
  exactly the batching opportunity the grouping exploits);
- :func:`execute_parallel` fans windows out over a process pool, with
  chunk data mapped zero-copy through :mod:`repro.io_shm` instead of
  pickled per task.

Everything here is *pure computation* over read-only state: no tracer,
metrics, journal, or data-store mutation.  That is a hard requirement —
the pipelined executor runs :func:`compute_window` on a worker thread
while the main thread ships the previous window (telemetry, journalling
and the GF scratch buffers are not thread-safe, so they stay on exactly
one thread each).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.cache import BoundedCache
from repro.erasure.repair import PartialDecodePlan, split_repair_vector
from repro.errors import ConfigurationError
from repro.gf.field import gf
from repro.gf.vector import dot_rows
from repro.recovery.planner import StripePlan
from repro.recovery.solution import PerStripeSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.executor import PlanExecutor

__all__ = [
    "REPAIR_GROUP_CACHE",
    "StripeOutcome",
    "repair_signature",
    "windows",
    "compute_window",
    "execute_parallel",
]

#: Memoised per-signature repair decompositions.  Named, so the cache
#: self-registers with the metrics registry: its hit rate quantifies how
#: often stripes share a repair vector (the batching payoff) and shows
#: up in ``repro-car metrics`` next to the GF table caches.
REPAIR_GROUP_CACHE = BoundedCache(4096, name="exec.repair_groups")


@dataclass
class StripeOutcome:
    """Everything stage B (shipping) needs about one computed stripe.

    Attributes:
        sol / sp: the stripe's solution and plan.
        rebuilt: the reconstructed chunk (owned copy, not a batch view).
        ok: byte-exact match against ground truth.
        groups: the repair decomposition's per-rack groups (aggregated
            mode; used for compute charging and checkpoint ordering).
        partials: rack key -> partially decoded buffer.  Only populated
            when the executor needs to ship them through the full
            checkpoint/delivery pipeline (telemetry, journal or
            integrity verification active).
    """

    sol: PerStripeSolution
    sp: StripePlan
    rebuilt: np.ndarray
    ok: bool
    groups: tuple = ()
    partials: dict | None = None


def repair_signature(sol: PerStripeSolution, aggregated: bool):
    """The key under which stripes share a repair vector.

    Two stripes with equal signatures repair with identical coefficient
    rows and identical rack grouping, so their decodes batch into one
    kernel call per rack.
    """
    if aggregated:
        return (
            sol.lost_chunk,
            sol.helpers,
            tuple(sorted(sol.rack_map().items())),
            sol.failed_rack,
        )
    return (sol.lost_chunk, sol.helpers)


def windows(pairs, window: int):
    """Slice an iterator of ``(sol, sp)`` pairs into lists of ``window``."""
    pairs = iter(pairs)
    while True:
        chunk = list(islice(pairs, window))
        if not chunk:
            return
        yield chunk


def _decode_plan(code, sol: PerStripeSolution) -> PartialDecodePlan:
    """The stripe's per-rack repair decomposition, memoised by signature."""
    key = (
        type(code).__name__,
        code.k,
        code.m,
        getattr(code, "w", 0),
        repair_signature(sol, True),
    )
    return REPAIR_GROUP_CACHE.get_or_build(
        key,
        lambda: split_repair_vector(
            code, sol.lost_chunk, sol.helpers, sol.rack_map()
        ),
    )


def _ok_flags(data, members, rebuilt_cat: np.ndarray, size: int) -> list[bool]:
    """Per-stripe ground-truth verdicts for one batched group.

    The common case — everything reconstructs — is one comparison over
    the concatenated buffers; only a mismatching group falls back to
    per-stripe comparisons (whose verdicts must match the eager path's
    exactly, stripe by stripe).
    """
    truth = [
        data.chunk(sol.stripe_id, sol.lost_chunk) for sol, _ in members
    ]
    if np.array_equal(rebuilt_cat, np.concatenate(truth) if len(truth) > 1 else truth[0]):
        return [True] * len(members)
    return [
        bool(np.array_equal(truth[i], rebuilt_cat[i * size : (i + 1) * size]))
        for i in range(len(members))
    ]


def _compute_group_aggregated(
    code, field, data, members, keep_partials: bool
) -> list[StripeOutcome]:
    """Batched aggregated decode of stripes sharing one signature."""
    sol0 = members[0][0]
    plan = _decode_plan(code, sol0)
    size = data.chunk(sol0.stripe_id, plan.groups[0].helper_indices[0]).shape[0]
    many = len(members) > 1
    partials_cat: dict = {}
    rebuilt_cat: np.ndarray | None = None
    for group in plan.groups:
        bufs = [
            np.concatenate(
                [data.chunk(sol.stripe_id, h) for sol, _ in members]
            )
            if many
            else data.chunk(members[0][0].stripe_id, h)
            for h in group.helper_indices
        ]
        partial = dot_rows(field, list(group.coefficients), bufs)
        partials_cat[group.group_key] = partial
        if rebuilt_cat is None:
            rebuilt_cat = partial.copy()
        else:
            np.bitwise_xor(rebuilt_cat, partial, out=rebuilt_cat)
    oks = _ok_flags(data, members, rebuilt_cat, size)
    out = []
    for i, (sol, sp) in enumerate(members):
        lo, hi = i * size, (i + 1) * size
        out.append(
            StripeOutcome(
                sol=sol,
                sp=sp,
                rebuilt=rebuilt_cat[lo:hi].copy(),
                ok=oks[i],
                groups=plan.groups,
                partials=(
                    {k: v[lo:hi] for k, v in partials_cat.items()}
                    if keep_partials
                    else None
                ),
            )
        )
    return out


def _compute_group_direct(code, field, data, members) -> list[StripeOutcome]:
    """Batched direct (RR) reconstruction of same-signature stripes.

    :meth:`RSCode.reconstruct` is ``dot_rows`` over the sorted helper
    set's repair vector; batching concatenates the helper buffers across
    stripes and issues that single combination once.
    """
    sol0 = members[0][0]
    helpers = sol0.helpers  # already sorted
    y = code.repair_vector(sol0.lost_chunk, list(helpers))
    many = len(members) > 1
    bufs = [
        np.concatenate([data.chunk(sol.stripe_id, h) for sol, _ in members])
        if many
        else data.chunk(sol0.stripe_id, h)
        for h in helpers
    ]
    rebuilt_cat = dot_rows(field, y, bufs)
    size = rebuilt_cat.shape[0] // len(members)
    oks = _ok_flags(data, members, rebuilt_cat, size)
    return [
        StripeOutcome(
            sol=sol,
            sp=sp,
            rebuilt=rebuilt_cat[i * size : (i + 1) * size].copy(),
            ok=oks[i],
        )
        for i, (sol, sp) in enumerate(members)
    ]


def compute_window(
    code,
    data,
    pairs: list[tuple[PerStripeSolution, StripePlan]],
    aggregated: bool,
    *,
    batch: bool = True,
    keep_partials: bool = False,
) -> tuple[list[StripeOutcome], float, float]:
    """Stage A: decode every stripe of one window, batched by signature.

    Returns the outcomes **in input order** plus the stage's wall-clock
    start/end (the executor emits them as a pipeline span — this
    function itself must stay telemetry-free, see the module docstring).
    """
    start = time.perf_counter()
    field = gf(code.w)
    by_sig: dict = {}
    for i, pair in enumerate(pairs):
        sig = repair_signature(pair[0], aggregated) if batch else i
        by_sig.setdefault(sig, []).append((i, pair))
    outcomes: list[StripeOutcome | None] = [None] * len(pairs)
    for entries in by_sig.values():
        members = [pair for _, pair in entries]
        if aggregated:
            computed = _compute_group_aggregated(
                code, field, data, members, keep_partials
            )
        else:
            computed = _compute_group_direct(code, field, data, members)
        for (i, _), outcome in zip(entries, computed):
            outcomes[i] = outcome
    return outcomes, start, time.perf_counter()


# -- multi-process execution ------------------------------------------------

#: Per-worker context installed by the pool initializer: (code, data
#: store, aggregated, batch, replacement node, shared store to close on
#: exit).  Module-global because ProcessPoolExecutor initializers cannot
#: return values.
_WORKER: dict | None = None


def _init_worker(payload: bytes) -> None:
    from repro.io_shm import SharedChunkStore

    global _WORKER
    ctx = pickle.loads(payload)
    if ctx["handle"] is not None:
        shared = SharedChunkStore.attach(ctx["handle"])
        data = shared.store()
    else:
        shared = None
        data = ctx["data"]
    _WORKER = {
        "code": ctx["code"],
        "data": data,
        "aggregated": ctx["aggregated"],
        "batch": ctx["batch"],
        "replacement_node": ctx["replacement_node"],
        "shared": shared,
    }


def _run_window(pairs: list) -> list[tuple]:
    """Worker task: stage A + fast-path accounting for one window.

    Returns per stripe ``(stripe_id, rebuilt, ok, cross_bytes,
    intra_bytes, charges)`` — plain picklable tuples, merged by the
    parent in submission order so results are order-stable for any
    worker count.
    """
    ctx = _WORKER
    outcomes, _, _ = compute_window(
        ctx["code"], ctx["data"], pairs, ctx["aggregated"],
        batch=ctx["batch"],
    )
    chunk_bytes = ctx["data"].chunk_size
    repl = ctx["replacement_node"]
    out = []
    for o in outcomes:
        cross = intra = 0
        for t in o.sp.transfers:
            if t.cross_rack:
                cross += chunk_bytes
            else:
                intra += chunk_bytes
        charges: dict[int, int] = {}
        if ctx["aggregated"]:
            for group in o.groups:
                node = (
                    repl
                    if group.group_key == o.sol.failed_rack
                    else o.sp.delegates[group.group_key]
                )
                charges[node] = charges.get(node, 0) + group.size * chunk_bytes
            charges[repl] = charges.get(repl, 0) + len(o.groups) * chunk_bytes
        else:
            charges[repl] = o.sol.helper_count * chunk_bytes
        out.append(
            (o.sol.stripe_id, o.rebuilt, o.ok, cross, intra, charges)
        )
    return out


def execute_parallel(
    executor: "PlanExecutor",
    pairs,
    aggregated: bool,
    replacement_node: int,
    *,
    window: int,
    workers: int,
    batch: bool,
    shm: bool | None,
    sink=None,
    progress=None,
):
    """Fan stripe windows out over worker processes (fast path only).

    The chunk store crosses the process boundary exactly once — as a
    shared-memory mapping by default (``shm=None``/``True``), or pickled
    into the initializer when ``shm=False`` — never per task.  Windows
    are submitted in order and folded in order.

    Raises:
        ConfigurationError: if a journal or integrity verification is
            attached — both are coordinator-local protocols that cannot
            span worker processes.
    """
    from repro.io_shm import SharedChunkStore
    from repro.recovery.executor import ExecutionResult

    if executor.journal is not None:
        raise ConfigurationError(
            "streaming with workers > 1 cannot journal: the write-ahead "
            "journal is single-writer (run workers=1 for durable sessions)"
        )
    if executor.verify_integrity:
        raise ConfigurationError(
            "streaming with workers > 1 skips the in-flight delivery "
            "pipeline; integrity verification requires workers=1"
        )
    use_shm = True if shm is None else shm
    shared = (
        SharedChunkStore.from_datastore(executor.state.data)
        if use_shm
        else None
    )
    ctx = {
        "code": executor.state.code,
        "handle": shared.handle if shared is not None else None,
        "data": None if shared is not None else executor.state.data,
        "aggregated": aggregated,
        "batch": batch,
        "replacement_node": replacement_node,
    }
    payload = pickle.dumps(ctx)
    result = ExecutionResult()
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_run_window, win) for win in windows(pairs, window)
            ]
            windows_done = 0
            for fut in futures:
                for sid, rebuilt, ok, cross, intra, charges in fut.result():
                    if sink is not None:
                        sink(sid, rebuilt, ok)
                    else:
                        result.reconstructed[sid] = rebuilt
                    result.per_stripe_ok[sid] = ok
                    result.cross_rack_bytes += cross
                    result.intra_rack_bytes += intra
                    for node, nbytes in charges.items():
                        result.bytes_computed_by_node[node] = (
                            result.bytes_computed_by_node.get(node, 0) + nbytes
                        )
                windows_done += 1
                if progress is not None:
                    progress.update(
                        len(result.per_stripe_ok),
                        windows_done=windows_done,
                        cross_rack_bytes=result.cross_rack_bytes,
                        intra_rack_bytes=result.intra_rack_bytes,
                    )
            if progress is not None:
                progress.finish(
                    len(result.per_stripe_ok),
                    windows_done=windows_done,
                    cross_rack_bytes=result.cross_rack_bytes,
                    intra_rack_bytes=result.intra_rack_bytes,
                )
    finally:
        if shared is not None:
            shared.close()
    return result
