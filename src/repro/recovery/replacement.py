"""Replacement-node selection policies.

The paper's methodology reuses the failed node as the replacement
("we use the same node as the replacement node").  In production the
operator has a choice, and the choice interacts with cross-rack
traffic: every reconstructed chunk must *land* on the replacement, so a
replacement outside the failed rack turns the failed rack's intra-rack
retrievals into cross-rack flows — and vice versa.

A replacement node is *eligible* only if it stores no chunk of any
affected stripe (a node may hold at most one chunk per stripe); the
failed node itself is always eligible.  Policies fall back to the
failed node when no other candidate qualifies — which is the common
case at realistic stripe counts, and exactly why the paper's setting is
the sensible default.

Traffic for a non-default replacement must be read from the *plan*
(:meth:`RecoveryPlan.cross_rack_chunks`), which accounts flows by their
actual endpoints; solution-level counters assume the paper's setting.
"""

from __future__ import annotations

import abc
import random

from repro.cluster.state import ClusterState, FailureEvent
from repro.errors import RecoveryError

__all__ = [
    "ReplacementPolicy",
    "SameNodeReplacementPolicy",
    "SameRackReplacementPolicy",
    "LeastLoadedReplacementPolicy",
    "eligible_replacements",
    "with_replacement",
]


def eligible_replacements(state: ClusterState, event: FailureEvent) -> list[int]:
    """Nodes that may host every reconstructed chunk of this failure.

    A node qualifies iff it holds no chunk of any affected stripe.  The
    failed node always qualifies (its chunks are the ones being
    rebuilt).
    """
    affected = set(event.stripes)
    out = [event.failed_node]
    for node in state.topology.nodes:
        if node.node_id == event.failed_node:
            continue
        held = {
            s for (s, _) in state.placement.chunks_on_node(node.node_id)
        }
        if not held & affected:
            out.append(node.node_id)
    return out


def with_replacement(event: FailureEvent, replacement: int) -> FailureEvent:
    """A copy of ``event`` targeting a different replacement node."""
    return FailureEvent(
        failed_node=event.failed_node,
        failed_rack=event.failed_rack,
        lost_chunks=event.lost_chunks,
        replacement_node=replacement,
    )


class ReplacementPolicy(abc.ABC):
    """Chooses where reconstructed chunks are written."""

    @abc.abstractmethod
    def choose(self, state: ClusterState, event: FailureEvent) -> int:
        """Return the replacement node id for this failure."""

    def apply(self, state: ClusterState, event: FailureEvent) -> FailureEvent:
        """Event with this policy's replacement filled in.

        Raises:
            RecoveryError: if the chosen node is not eligible.
        """
        choice = self.choose(state, event)
        if choice not in eligible_replacements(state, event):
            raise RecoveryError(
                f"node {choice} holds chunks of affected stripes and "
                f"cannot be the replacement"
            )
        return with_replacement(event, choice)


class SameNodeReplacementPolicy(ReplacementPolicy):
    """The paper's setting: rebuild in place on the failed node."""

    def choose(self, state: ClusterState, event: FailureEvent) -> int:
        return event.failed_node


class SameRackReplacementPolicy(ReplacementPolicy):
    """Prefer an eligible peer in the failed rack (hot spare in-rack).

    Keeps the failed rack's survivor retrievals intra-rack — the
    traffic-preserving alternative when the failed machine is truly
    dead.  Falls back to the failed node when no peer qualifies.
    """

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def choose(self, state: ClusterState, event: FailureEvent) -> int:
        candidates = [
            n
            for n in eligible_replacements(state, event)
            if n != event.failed_node
            and state.topology.rack_of(n) == event.failed_rack
        ]
        if not candidates:
            return event.failed_node
        return self.rng.choice(candidates)


class LeastLoadedReplacementPolicy(ReplacementPolicy):
    """Pick the eligible node storing the fewest chunks, any rack.

    Balances *storage* after recovery, at the price of potentially
    turning the failed rack's retrievals into cross-rack flows — the
    trade the replacement-policy bench quantifies.
    """

    def choose(self, state: ClusterState, event: FailureEvent) -> int:
        candidates = eligible_replacements(state, event)
        return min(
            candidates,
            key=lambda n: (len(state.placement.chunks_on_node(n)), n),
        )
