"""Failure injection helpers.

The paper's methodology: "we randomly select a node to erase its stored
chunks ... use the same node as the replacement node, and trigger the
recovery operation."  :class:`FailureInjector` reproduces that, plus a
rack-failure drill used by the fault-tolerance tests.
"""

from __future__ import annotations

import random

from repro.errors import NoFailureError
from repro.cluster.state import ClusterState, FailureEvent

__all__ = ["FailureInjector"]


class FailureInjector:
    """Randomised failure scenarios over a :class:`ClusterState`."""

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def candidate_nodes(self, state: ClusterState) -> list[int]:
        """Nodes that actually store at least one chunk."""
        return [
            node.node_id
            for node in state.topology.nodes
            if state.placement.chunks_on_node(node.node_id)
        ]

    def fail_random_node(self, state: ClusterState) -> FailureEvent:
        """Fail a uniformly random non-empty node (paper methodology).

        Raises:
            NoFailureError: if no node stores any chunk.
        """
        candidates = self.candidate_nodes(state)
        if not candidates:
            raise NoFailureError("no node stores any chunk; nothing to fail")
        return state.fail_node(self.rng.choice(candidates))

    def fail_node(self, state: ClusterState, node_id: int) -> FailureEvent:
        """Fail a specific node."""
        return state.fail_node(node_id)

    def simulate_rack_loss(self, state: ClusterState, rack_id: int) -> bool:
        """Check (without mutating) that every stripe survives losing a rack.

        Returns True iff each stripe retains at least ``k`` chunks
        outside ``rack_id`` — the rack-level fault-tolerance property
        the placement constraint ``c_{i,j} <= m`` guarantees.
        """
        k = state.code.k
        n = state.code.k + state.code.m
        for stripe in range(state.placement.num_stripes):
            inside = state.placement.rack_chunk_count(rack_id, stripe)
            if n - inside < k:
                return False
        return True
