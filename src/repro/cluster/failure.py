"""Failure injection helpers.

The paper's methodology: "we randomly select a node to erase its stored
chunks ... use the same node as the replacement node, and trigger the
recovery operation."  :class:`FailureInjector` reproduces that, plus a
rack-failure drill used by the fault-tolerance tests.

:func:`degraded_view` supports *secondary* failures during repair (the
:mod:`repro.faults` subsystem): it re-derives a stripe's solver view
after additional helper nodes have died, so the selector can re-plan
with Theorem-1 minimality over the surviving racks only.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import NoFailureError
from repro.cluster.state import ClusterState, FailureEvent, StripeView
from repro.cluster.topology import ClusterTopology

__all__ = ["FailureInjector", "degraded_view"]


def degraded_view(
    view: StripeView,
    dead_nodes: Iterable[int],
    topology: ClusterTopology,
) -> StripeView:
    """A copy of ``view`` with chunks on ``dead_nodes`` removed.

    The returned view's ``surviving`` map and ``rack_counts`` reflect
    only chunks on still-alive nodes, so every Theorem-1 quantity
    (``c_{i,j}``, ``c'_{f,j}``, ``d_j``) is computed over the surviving
    cluster.  The primary failure (``lost_chunk`` / ``failed_rack``) is
    unchanged.
    """
    dead = set(dead_nodes)
    surviving = {c: n for c, n in view.surviving.items() if n not in dead}
    counts = [0] * topology.num_racks
    for nid in surviving.values():
        counts[topology.rack_of(nid)] += 1
    return StripeView(
        stripe_id=view.stripe_id,
        lost_chunk=view.lost_chunk,
        surviving=surviving,
        rack_counts=tuple(counts),
        failed_rack=view.failed_rack,
    )


class FailureInjector:
    """Randomised failure scenarios over a :class:`ClusterState`."""

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def candidate_nodes(self, state: ClusterState) -> list[int]:
        """Nodes that actually store at least one chunk."""
        return [
            node.node_id
            for node in state.topology.nodes
            if state.placement.chunks_on_node(node.node_id)
        ]

    def fail_random_node(self, state: ClusterState) -> FailureEvent:
        """Fail a uniformly random non-empty node (paper methodology).

        Raises:
            NoFailureError: if no node stores any chunk.
        """
        candidates = self.candidate_nodes(state)
        if not candidates:
            raise NoFailureError("no node stores any chunk; nothing to fail")
        return state.fail_node(self.rng.choice(candidates))

    def fail_node(self, state: ClusterState, node_id: int) -> FailureEvent:
        """Fail a specific node."""
        return state.fail_node(node_id)

    def helper_candidates(
        self, state: ClusterState, event: FailureEvent
    ) -> list[int]:
        """Nodes that hold at least one chunk of an affected stripe.

        These are the nodes whose mid-repair crash (a *secondary*
        failure) actually perturbs the recovery — the candidate pool the
        fault-injection drills draw from.  The replacement node is
        excluded (its loss is not survivable in the single-replacement
        model).
        """
        involved: set[int] = set()
        for stripe in event.stripes:
            layout = state.placement.stripe_layout(stripe)
            involved.update(
                nid for nid in layout.values()
                if nid not in (state.failed_node, event.replacement_node)
            )
        return sorted(involved)

    def pick_secondary(
        self, state: ClusterState, event: FailureEvent
    ) -> int:
        """A random helper node to crash mid-repair.

        Raises:
            NoFailureError: if no helper node is involved in the repair.
        """
        candidates = self.helper_candidates(state, event)
        if not candidates:
            raise NoFailureError("no helper nodes involved in this recovery")
        return self.rng.choice(candidates)

    def simulate_rack_loss(self, state: ClusterState, rack_id: int) -> bool:
        """Check (without mutating) that every stripe survives losing a rack.

        Returns True iff each stripe retains at least ``k`` chunks
        outside ``rack_id`` — the rack-level fault-tolerance property
        the placement constraint ``c_{i,j} <= m`` guarantees.
        """
        k = state.code.k
        n = state.code.k + state.code.m
        for stripe in range(state.placement.num_stripes):
            inside = state.placement.rack_chunk_count(rack_id, stripe)
            if n - inside < k:
                return False
        return True
