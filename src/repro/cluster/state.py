"""Mutable cluster state: placed stripes, chunk data, and failures.

:class:`ClusterState` ties together a topology, an erasure code, and a
:class:`~repro.cluster.placement.Placement`, tracks which nodes are
failed, and answers the layout queries the CAR selector needs (the
``c_{i,j}`` and ``c'_{f,j}`` counters of Section IV-B).

:class:`DataStore` optionally materialises real chunk bytes so recovery
plans can be *executed* and verified byte-for-byte, not just counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    NoFailureError,
    PlacementError,
    UnknownChunkError,
    UnknownNodeError,
)
from repro.cluster.placement import ChunkKey, Placement
from repro.cluster.topology import ClusterTopology
from repro.erasure.code import ErasureCode
from repro.gf.field import gf
from repro.gf.vector import buffer_dtype

__all__ = ["DataStore", "FailureEvent", "StripeView", "ClusterState"]


class DataStore:
    """Holds the actual bytes of every chunk of every stripe.

    Data chunks are filled from a seeded RNG (deterministic per stripe),
    parity chunks are encoded with the stripe's code — so any
    reconstruction can be checked against ground truth.
    """

    def __init__(
        self, code: ErasureCode, num_stripes: int, chunk_size: int, seed: int = 0
    ) -> None:
        self.code = code
        self.chunk_size = chunk_size
        self.num_stripes = num_stripes
        dtype = buffer_dtype(gf(code.w))
        rng = np.random.default_rng(seed)
        self._chunks: dict[ChunkKey, np.ndarray] = {}
        high = int(np.iinfo(dtype).max) + 1
        elements = chunk_size if dtype == np.uint8 else chunk_size // 2
        for stripe in range(num_stripes):
            data = [
                rng.integers(0, high, elements, dtype=dtype)
                for _ in range(code.k)
            ]
            for idx, buf in enumerate(code.encode_stripe(data)):
                self._chunks[(stripe, idx)] = buf

    @classmethod
    def empty(cls, code: ErasureCode, chunk_size: int) -> "DataStore":
        """A store with no stripes yet (filled via :meth:`add_stripe`)."""
        return cls(code, num_stripes=0, chunk_size=chunk_size)

    def add_stripe(self, stripe_id: int, chunks: list[np.ndarray]) -> None:
        """Register the full chunk set of a new stripe.

        Raises:
            UnknownChunkError: if the stripe id is not the next dense id
                or the chunk set is malformed.
        """
        if stripe_id != self.num_stripes:
            raise UnknownChunkError(
                f"stripe ids must be dense; expected {self.num_stripes}, "
                f"got {stripe_id}"
            )
        if len(chunks) != self.code.k + self.code.m:
            raise UnknownChunkError(
                f"stripe needs {self.code.k + self.code.m} chunks, "
                f"got {len(chunks)}"
            )
        for buf in chunks:
            if buf.nbytes != self.chunk_size:
                raise UnknownChunkError(
                    f"chunk is {buf.nbytes} bytes, store uses {self.chunk_size}"
                )
        for idx, buf in enumerate(chunks):
            self._chunks[(stripe_id, idx)] = buf.copy()
        self.num_stripes += 1

    def chunk(self, stripe_id: int, chunk_index: int) -> np.ndarray:
        """The stored buffer for one chunk.

        Raises:
            UnknownChunkError: if the chunk does not exist.
        """
        try:
            return self._chunks[(stripe_id, chunk_index)]
        except KeyError:
            raise UnknownChunkError((stripe_id, chunk_index)) from None

    def matches(self, stripe_id: int, chunk_index: int, buf: np.ndarray) -> bool:
        """True iff ``buf`` equals the ground-truth chunk byte-for-byte."""
        return bool(np.array_equal(self.chunk(stripe_id, chunk_index), buf))

    def overwrite(self, stripe_id: int, chunk_index: int, buf: np.ndarray) -> None:
        """Replace one stored chunk (used by scrubbing repair).

        Raises:
            UnknownChunkError: if the chunk does not exist.
        """
        current = self.chunk(stripe_id, chunk_index)
        if buf.shape != current.shape or buf.dtype != current.dtype:
            raise UnknownChunkError(
                f"replacement buffer mismatch for stripe {stripe_id} "
                f"chunk {chunk_index}"
            )
        self._chunks[(stripe_id, chunk_index)] = buf.copy()

    def corrupt(
        self, stripe_id: int, chunk_index: int, seed: int = 0
    ) -> np.ndarray:
        """Flip bytes of one chunk in place (silent-corruption injection).

        Returns the pristine original so tests can compare.
        """
        original = self.chunk(stripe_id, chunk_index).copy()
        rng = np.random.default_rng(seed)
        corrupted = original.copy()
        pos = int(rng.integers(0, corrupted.size))
        # XOR with a nonzero mask guarantees the value changes.
        mask = corrupted.dtype.type(int(rng.integers(1, 255)))
        corrupted[pos] ^= mask
        self._chunks[(stripe_id, chunk_index)] = corrupted
        return original


@dataclass(frozen=True)
class FailureEvent:
    """A single node failure and the chunks it destroyed.

    Attributes:
        failed_node: id of the failed node.
        failed_rack: the paper's ``A_f``.
        lost_chunks: the (stripe, chunk) keys stored on the node, in
            stripe order; each stripe appears at most once (single
            failure implies one lost chunk per stripe).
        replacement_node: where reconstructed chunks are written; the
            paper's methodology reuses the failed node's slot.
    """

    failed_node: int
    failed_rack: int
    lost_chunks: tuple[ChunkKey, ...]
    replacement_node: int

    @property
    def stripes(self) -> tuple[int, ...]:
        """Affected stripe ids (the paper's ``s`` stripes)."""
        return tuple(s for s, _ in self.lost_chunks)

    @property
    def num_stripes(self) -> int:
        """Number of stripes needing repair."""
        return len(self.lost_chunks)


@dataclass(frozen=True)
class StripeView:
    """Everything the per-stripe solver needs to know about one stripe.

    Attributes:
        stripe_id: which stripe.
        lost_chunk: index of the lost chunk within the stripe.
        surviving: chunk_index -> node_id for every surviving chunk.
        rack_counts: surviving-chunk count per rack — ``c'_{f,j}`` at the
            failed rack and ``c_{i,j}`` elsewhere (Equation 1).
        failed_rack: the paper's ``A_f``.
    """

    stripe_id: int
    lost_chunk: int
    surviving: dict[int, int]
    rack_counts: tuple[int, ...]
    failed_rack: int

    def rack_members(
        self, topology: ClusterTopology
    ) -> dict[int, tuple[int, ...]]:
        """rack_id -> sorted surviving chunk indices, memoised per view.

        The CAR selector asks for per-rack membership once per candidate
        rack per candidate solution; computing the grouping once turns
        those queries into dict lookups.  The memo is keyed on topology
        identity (a view only ever meets one topology in practice).
        """
        cached = self.__dict__.get("_rack_members")
        if cached is None or self.__dict__.get("_rack_topology") is not topology:
            grouped: dict[int, list[int]] = {}
            for c, nid in sorted(self.surviving.items()):
                grouped.setdefault(topology.rack_of(nid), []).append(c)
            cached = {rack: tuple(cs) for rack, cs in grouped.items()}
            object.__setattr__(self, "_rack_members", cached)
            object.__setattr__(self, "_rack_topology", topology)
        return cached

    def chunks_in_rack(self, rack_id: int, topology: ClusterTopology) -> list[int]:
        """Surviving chunk indices of this stripe stored in ``rack_id``."""
        return list(self.rack_members(topology).get(rack_id, ()))

    def __getstate__(self):
        # Drop the memo (it holds a topology reference) so pickled views
        # stay small and rebuild their cache lazily after transfer.
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }

    def __setstate__(self, state):
        self.__dict__.update(state)


class ClusterState:
    """A CFS with placed stripes, optional data, and at most one failure.

    The paper's recovery problem is *single* failure: each stripe loses
    at most one chunk.  ``fail_node`` enforces that by allowing one
    failed node at a time; :meth:`heal` clears it.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        code: ErasureCode,
        placement: Placement,
        data: DataStore | None = None,
    ) -> None:
        if placement.topology is not topology:
            raise PlacementError("placement was built for a different topology")
        if (placement.k, placement.m) != (code.k, code.m):
            raise PlacementError(
                f"placement is for (k={placement.k}, m={placement.m}) but the "
                f"code is (k={code.k}, m={code.m})"
            )
        if data is not None and data.num_stripes < placement.num_stripes:
            raise PlacementError(
                "data store has fewer stripes than the placement"
            )
        self.topology = topology
        self.code = code
        self.placement = placement
        self.data = data
        self.failed_node: int | None = None

    # -- failure handling ----------------------------------------------------

    def fail_node(self, node_id: int) -> FailureEvent:
        """Mark ``node_id`` failed and return the resulting event.

        Raises:
            UnknownNodeError: if the node does not exist.
            NoFailureError: if another node is already failed (the model
                is single-failure; heal first).
        """
        self.topology.node(node_id)  # validates
        if self.failed_node is not None and self.failed_node != node_id:
            raise NoFailureError(
                f"node {self.failed_node} is already failed; heal() first"
            )
        self.failed_node = node_id
        lost = self.placement.chunks_on_node(node_id)
        return FailureEvent(
            failed_node=node_id,
            failed_rack=self.topology.rack_of(node_id),
            lost_chunks=tuple(sorted(lost)),
            replacement_node=node_id,
        )

    def heal(self) -> None:
        """Clear the failure (the node is repaired/replaced in place)."""
        self.failed_node = None

    # -- layout queries --------------------------------------------------------

    def stripe_view(self, stripe_id: int) -> StripeView:
        """Build the solver's view of one affected stripe.

        Raises:
            NoFailureError: if no node is failed.
            UnknownChunkError: if the stripe lost no chunk (it does not
                need recovery).
        """
        if self.failed_node is None:
            raise NoFailureError("no failed node")
        layout = self.placement.stripe_layout(stripe_id)
        lost = [c for c, nid in layout.items() if nid == self.failed_node]
        if not lost:
            raise UnknownChunkError(
                f"stripe {stripe_id} has no chunk on node {self.failed_node}"
            )
        lost_chunk = lost[0]
        surviving = {c: nid for c, nid in layout.items() if c != lost_chunk}
        counts = [0] * self.topology.num_racks
        for nid in surviving.values():
            counts[self.topology.rack_of(nid)] += 1
        return StripeView(
            stripe_id=stripe_id,
            lost_chunk=lost_chunk,
            surviving=surviving,
            rack_counts=tuple(counts),
            failed_rack=self.topology.rack_of(self.failed_node),
        )

    def affected_stripes(self) -> tuple[int, ...]:
        """Stripes that lost a chunk to the current failure."""
        if self.failed_node is None:
            raise NoFailureError("no failed node")
        return tuple(
            sorted({s for s, _ in self.placement.chunks_on_node(self.failed_node)})
        )

    def views(self) -> list[StripeView]:
        """StripeView for every affected stripe, in stripe order."""
        return [self.stripe_view(s) for s in self.affected_stripes()]
