"""File-level client API: the "file system" of the clustered file system.

Everything below this module thinks in stripes and chunks; real clients
think in files.  :class:`FileStore` bridges the two, the way GFS/HDFS
split files into fixed-size blocks:

- :meth:`write` pads a byte payload to whole stripes, erasure-codes it,
  and places the chunks rack-fault-tolerantly;
- :meth:`read` streams the data chunks back and trims the padding;
- :meth:`read_degraded` serves a read while a node is down, rebuilding
  the file's lost chunks on the fly through CAR's minimum-rack partial
  decoding (the degraded-read path of the Li et al. DSN'14 scenario);
- :meth:`cluster_state` exposes the underlying
  :class:`~repro.cluster.state.ClusterState`, so recovery strategies,
  scrubbing, and the simulators all run unmodified against stored
  files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.cluster.placement import (
    ChunkKey,
    Placement,
    PlacementPolicy,
    RandomPlacementPolicy,
)
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import ClusterTopology
from repro.erasure.code import ErasureCode
from repro.erasure.repair import (
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.errors import ClusterError, ConfigurationError
from repro.recovery.selector import CarSelector

__all__ = ["FileInfo", "FileStore"]


@dataclass(frozen=True)
class FileInfo:
    """Metadata of one stored file.

    Attributes:
        name: file name (unique within the store).
        size: payload bytes (without padding).
        stripe_ids: the stripes holding this file, in order.
    """

    name: str
    size: int
    stripe_ids: tuple[int, ...]

    @property
    def stripes(self) -> int:
        """Number of stripes the file occupies."""
        return len(self.stripe_ids)


class FileStore:
    """Erasure-coded file storage over a rack-aware cluster.

    Args:
        topology: the cluster.
        code: the erasure code (GF(2^8) codes only — files are bytes).
        chunk_size: bytes per chunk; a stripe holds ``k * chunk_size``
            payload bytes.
        policy: placement policy (default: the paper's random
            rack-fault-tolerant placement).
        rng: seed for the default policy.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        code: ErasureCode,
        chunk_size: int = 4096,
        policy: PlacementPolicy | None = None,
        rng: random.Random | int | None = None,
    ) -> None:
        if code.w != 8:
            raise ConfigurationError(
                "FileStore requires a GF(2^8) code (byte-oriented payloads)"
            )
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.topology = topology
        self.code = code
        self.chunk_size = chunk_size
        self.policy = policy or RandomPlacementPolicy(rng=rng)
        self._assignment: dict[ChunkKey, int] = {}
        self._data = DataStore.empty(code, chunk_size)
        self._files: dict[str, FileInfo] = {}
        self._num_stripes = 0

    # -- metadata ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def stat(self, name: str) -> FileInfo:
        """Metadata of one file.

        Raises:
            ClusterError: if the file does not exist.
        """
        try:
            return self._files[name]
        except KeyError:
            raise ClusterError(f"no such file: {name!r}") from None

    def files(self) -> list[FileInfo]:
        """All stored files, name-ordered."""
        return [self._files[n] for n in sorted(self._files)]

    @property
    def stripe_payload(self) -> int:
        """Payload bytes per stripe (``k * chunk_size``)."""
        return self.code.k * self.chunk_size

    # -- write --------------------------------------------------------------

    def write(self, name: str, payload: bytes) -> FileInfo:
        """Store a file: pad, stripe, encode, place.

        Raises:
            ClusterError: if the name is already taken.
            ConfigurationError: for empty payloads.
        """
        if name in self._files:
            raise ClusterError(f"file exists: {name!r}")
        if not payload:
            raise ConfigurationError("cannot store an empty file")
        per_stripe = self.stripe_payload
        num_stripes = -(-len(payload) // per_stripe)  # ceil division
        padded = payload + b"\0" * (num_stripes * per_stripe - len(payload))
        stripe_ids = []
        new_placement = self.policy.place(
            self.topology, num_stripes, self.code.k, self.code.m
        )
        for local in range(num_stripes):
            stripe_id = self._num_stripes
            offset = local * per_stripe
            data_chunks = [
                np.frombuffer(
                    padded[
                        offset + i * self.chunk_size
                        : offset + (i + 1) * self.chunk_size
                    ],
                    dtype=np.uint8,
                ).copy()
                for i in range(self.code.k)
            ]
            stripe = self.code.encode_stripe(data_chunks)
            self._data.add_stripe(stripe_id, stripe)
            for chunk_index in range(self.code.n):
                self._assignment[(stripe_id, chunk_index)] = (
                    new_placement.node_of(local, chunk_index)
                )
            stripe_ids.append(stripe_id)
            self._num_stripes += 1
        info = FileInfo(
            name=name, size=len(payload), stripe_ids=tuple(stripe_ids)
        )
        self._files[name] = info
        return info

    # -- read --------------------------------------------------------------

    def read(self, name: str) -> bytes:
        """Read a file back from its data chunks."""
        info = self.stat(name)
        parts = []
        for stripe_id in info.stripe_ids:
            for i in range(self.code.k):
                parts.append(self._data.chunk(stripe_id, i).tobytes())
        return b"".join(parts)[: info.size]

    def read_degraded(self, name: str, failed_node: int) -> bytes:
        """Read a file while ``failed_node`` is unavailable.

        Data chunks on the failed node are reconstructed on the fly via
        CAR's minimum-rack partial decoding; everything else is read
        directly.
        """
        info = self.stat(name)
        state = self.cluster_state()
        state.fail_node(failed_node)
        parts = []
        for stripe_id in info.stripe_ids:
            lost = [
                c
                for c in range(self.code.n)
                if self._assignment[(stripe_id, c)] == failed_node
            ]
            for i in range(self.code.k):
                if i not in lost:
                    parts.append(self._data.chunk(stripe_id, i).tobytes())
                    continue
                helpers, rack_map = self._degraded_helpers(state, stripe_id, i)
                plan = split_repair_vector(self.code, i, helpers, rack_map)
                chunks = {
                    c: self._data.chunk(stripe_id, c) for c in helpers
                }
                partials = execute_partial_decode(self.code, plan, chunks)
                parts.append(combine_partials(self.code, partials).tobytes())
        return b"".join(parts)[: info.size]

    def _degraded_helpers(
        self, state: ClusterState, stripe_id: int, lost_chunk: int
    ) -> tuple[tuple[int, ...], dict[int, int]]:
        """Helper set + rack map for rebuilding one chunk on the fly.

        Locality-aware codes (LRC) dictate their own minimal helper set;
        MDS codes get CAR's minimum-rack selection.
        """
        minimal = getattr(self.code, "minimal_repair_helpers", None)
        if minimal is not None:
            helpers = tuple(minimal(lost_chunk))
        else:
            selector = CarSelector(self.topology, self.code.k)
            view = state.stripe_view(stripe_id)
            helpers = selector.initial_solution(view).helpers
        rack_map = {
            c: self.topology.rack_of(self._assignment[(stripe_id, c)])
            for c in helpers
        }
        return helpers, rack_map

    # -- integration --------------------------------------------------------

    def cluster_state(self) -> ClusterState:
        """A :class:`ClusterState` over the store's current contents."""
        placement = Placement(
            self.topology, self.code.k, self.code.m, self._assignment
        )
        return ClusterState(self.topology, self.code, placement, self._data)
