"""Storage rebalancing after cluster expansion.

When operators add a node, existing chunks must migrate onto it or the
new capacity sits idle and the old nodes stay hot.  The
:class:`Rebalancer` computes a migration plan that evens out per-node
chunk counts while honouring the same constraints as placement:

- at most one chunk of a stripe per node;
- at most ``m`` chunks of a stripe per rack (rack fault tolerance);
- **intra-rack moves preferred** — the CAR theme again: a migration
  inside a rack costs cheap ToR bandwidth, a cross-rack migration
  crosses the over-subscribed core, so the planner exhausts same-rack
  donor/receiver pairs before reaching across racks.

Each move strictly shrinks the donor-receiver load gap, so the greedy
loop terminates; :meth:`Rebalancer.apply` materialises the resulting
:class:`~repro.cluster.placement.Placement` (re-validated from
scratch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.placement import ChunkKey, Placement
from repro.cluster.topology import ClusterTopology
from repro.errors import ClusterError

__all__ = ["Migration", "MigrationPlan", "Rebalancer"]


@dataclass(frozen=True)
class Migration:
    """One chunk move.

    Attributes:
        stripe_id / chunk_index: the chunk being moved.
        src_node / dst_node: endpoints.
        cross_rack: whether the move crosses the core.
    """

    stripe_id: int
    chunk_index: int
    src_node: int
    dst_node: int
    cross_rack: bool


@dataclass
class MigrationPlan:
    """An ordered list of migrations plus summary counters."""

    moves: list[Migration] = field(default_factory=list)

    @property
    def total_moves(self) -> int:
        """Chunks migrated."""
        return len(self.moves)

    @property
    def cross_rack_moves(self) -> int:
        """Migrations crossing the over-subscribed core."""
        return sum(1 for m in self.moves if m.cross_rack)

    @property
    def intra_rack_moves(self) -> int:
        """Migrations staying behind one ToR."""
        return self.total_moves - self.cross_rack_moves


class Rebalancer:
    """Plans storage rebalancing over a (possibly just-grown) topology.

    Args:
        topology: the cluster *after* any expansion.
        tolerance: permitted max-min load spread after rebalancing
            (1 means as even as integers allow).
    """

    def __init__(self, topology: ClusterTopology, tolerance: int = 1) -> None:
        if tolerance < 1:
            raise ClusterError("tolerance must be >= 1")
        self.topology = topology
        self.tolerance = tolerance

    def plan(self, placement: Placement) -> MigrationPlan:
        """Compute migrations that even out per-node chunk counts.

        The placement may be keyed on a smaller topology (before an
        expansion) as long as all its node ids exist here.
        """
        topo = self.topology
        assignment: dict[ChunkKey, int] = dict(placement.iter_chunks())
        load = {n.node_id: 0 for n in topo.nodes}
        holders: dict[tuple[int, int], set[int]] = {}
        rack_count: dict[tuple[int, int], int] = {}
        for (stripe, chunk), node in assignment.items():
            load[node] += 1
            holders.setdefault(("s", stripe), set()).add(node)
            key = (stripe, topo.rack_of(node))
            rack_count[key] = rack_count.get(key, 0) + 1
        m = placement.m
        plan = MigrationPlan()

        for _ in range(len(assignment) + 1):
            donor = max(load, key=lambda n: (load[n], n))
            receiver = min(load, key=lambda n: (load[n], n))
            if load[donor] - load[receiver] <= self.tolerance:
                break
            move = self._find_move(
                assignment, topo, load, holders, rack_count, m
            )
            if move is None:
                break
            plan.moves.append(move)
            self._apply_move(move, assignment, topo, load, holders, rack_count)
        return plan

    def _find_move(self, assignment, topo, load, holders, rack_count, m):
        mean = sum(load.values()) / len(load)
        donors = sorted(
            (n for n in load if load[n] > mean),
            key=lambda n: (-load[n], n),
        )
        receivers = sorted(
            (n for n in load if load[n] < mean),
            key=lambda n: (load[n], n),
        )
        # Two passes: same-rack pairs first, then cross-rack.
        for cross in (False, True):
            for donor in donors:
                for receiver in receivers:
                    if load[donor] - load[receiver] <= self.tolerance:
                        continue
                    is_cross = topo.rack_of(donor) != topo.rack_of(receiver)
                    if is_cross != cross:
                        continue
                    chunk = self._movable_chunk(
                        assignment, topo, donor, receiver, holders,
                        rack_count, m,
                    )
                    if chunk is not None:
                        stripe, idx = chunk
                        return Migration(
                            stripe_id=stripe,
                            chunk_index=idx,
                            src_node=donor,
                            dst_node=receiver,
                            cross_rack=is_cross,
                        )
        return None

    def _movable_chunk(
        self, assignment, topo, donor, receiver, holders, rack_count, m
    ):
        recv_rack = topo.rack_of(receiver)
        for (stripe, chunk), node in assignment.items():
            if node != donor:
                continue
            if receiver in holders[("s", stripe)]:
                continue  # one chunk per node per stripe
            if topo.rack_of(donor) != recv_rack:
                if rack_count.get((stripe, recv_rack), 0) >= m:
                    continue  # would break rack fault tolerance
            return (stripe, chunk)
        return None

    def _apply_move(self, move, assignment, topo, load, holders, rack_count):
        key = (move.stripe_id, move.chunk_index)
        assignment[key] = move.dst_node
        load[move.src_node] -= 1
        load[move.dst_node] += 1
        holders[("s", move.stripe_id)].discard(move.src_node)
        holders[("s", move.stripe_id)].add(move.dst_node)
        src_rack = topo.rack_of(move.src_node)
        dst_rack = topo.rack_of(move.dst_node)
        if src_rack != dst_rack:
            rack_count[(move.stripe_id, src_rack)] -= 1
            rack_count[(move.stripe_id, dst_rack)] = (
                rack_count.get((move.stripe_id, dst_rack), 0) + 1
            )

    def apply(self, placement: Placement, plan: MigrationPlan) -> Placement:
        """The placement after executing ``plan`` (fully re-validated)."""
        assignment = dict(placement.iter_chunks())
        for move in plan.moves:
            key = (move.stripe_id, move.chunk_index)
            if assignment.get(key) != move.src_node:
                raise ClusterError(
                    f"plan is stale: chunk {key} is not on node {move.src_node}"
                )
            assignment[key] = move.dst_node
        return Placement(self.topology, placement.k, placement.m, assignment)
