"""Clustered-file-system substrate: topology, placement, state, failures."""

from repro.cluster.failure import FailureInjector
from repro.cluster.filestore import FileInfo, FileStore
from repro.cluster.placement import (
    ChunkKey,
    FlatPlacementPolicy,
    GroupAlignedPlacementPolicy,
    Placement,
    PlacementPolicy,
    RandomPlacementPolicy,
    RoundRobinPlacementPolicy,
)
from repro.cluster.rebalance import Migration, MigrationPlan, Rebalancer
from repro.cluster.scrub import ScrubFinding, ScrubReport, Scrubber
from repro.cluster.transition import (
    RackAwareTransition,
    RandomTransition,
    ReplicatedBlock,
    ReplicatedStore,
    TransitionPlan,
)
from repro.cluster.state import ClusterState, DataStore, FailureEvent, StripeView
from repro.cluster.topology import BandwidthProfile, ClusterTopology, Node, Rack

__all__ = [
    "BandwidthProfile",
    "ClusterTopology",
    "Node",
    "Rack",
    "ChunkKey",
    "Placement",
    "PlacementPolicy",
    "RandomPlacementPolicy",
    "RoundRobinPlacementPolicy",
    "FlatPlacementPolicy",
    "GroupAlignedPlacementPolicy",
    "ClusterState",
    "DataStore",
    "FailureEvent",
    "StripeView",
    "FailureInjector",
    "FileStore",
    "FileInfo",
    "Scrubber",
    "ScrubReport",
    "ScrubFinding",
    "Rebalancer",
    "MigrationPlan",
    "Migration",
    "ReplicatedStore",
    "ReplicatedBlock",
    "TransitionPlan",
    "RackAwareTransition",
    "RandomTransition",
]
