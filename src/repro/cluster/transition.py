"""Replication-to-erasure-coding transition (Li, Hu, Lee — DSN 2015).

Reference [18] of the paper: production CFSes land data triple-
replicated for write/read performance, then *encode* cold data into RS
stripes to reclaim capacity.  The transition itself moves bulk data,
and — the same insight CAR applies to recovery — what matters is how
much of that movement crosses racks:

- ``k`` blocks are grouped into a stripe and an **encoder node** reads
  one replica of each block, computes the ``m`` parities, and
  distributes them;
- a block with a replica in the encoder's rack is fetched intra-rack
  (free in this model); every other block costs one cross-rack chunk;
- each parity chunk placed outside the encoder's rack costs another;
- finally the surplus replicas are deleted (no network cost).

:class:`RackAwareTransition` picks, per stripe, the encoder rack with
the most local replicas (and places parities respecting the ``m``
cap), versus :class:`RandomTransition` which picks blindly — the
ablation the cited paper's evaluation is built around.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.errors import ClusterError, ConfigurationError

__all__ = [
    "ReplicatedBlock",
    "ReplicatedStore",
    "TransitionPlan",
    "RandomTransition",
    "RackAwareTransition",
]


@dataclass(frozen=True)
class ReplicatedBlock:
    """One replicated block.

    Attributes:
        block_id: dense id.
        replica_nodes: nodes holding a copy (distinct racks by policy).
    """

    block_id: int
    replica_nodes: tuple[int, ...]

    @property
    def replication(self) -> int:
        """Number of copies."""
        return len(self.replica_nodes)


class ReplicatedStore:
    """A replica-placed block population (the pre-transition state).

    Args:
        topology: the cluster.
        num_blocks: blocks to place.
        replication: copies per block (default 3, HDFS-style).
        rng: seed/Random for placement.

    Placement puts each block's replicas on distinct nodes in distinct
    racks (rack-level fault tolerance for replicas), like HDFS's
    default policy.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        num_blocks: int,
        replication: int = 3,
        rng: random.Random | int | None = None,
    ) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()
        if replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if replication > topology.num_racks:
            raise ConfigurationError(
                f"replication {replication} exceeds {topology.num_racks} racks"
            )
        self.topology = topology
        self.replication = replication
        self.blocks: list[ReplicatedBlock] = []
        for block_id in range(num_blocks):
            racks = self.rng.sample(range(topology.num_racks), replication)
            nodes = tuple(
                self.rng.choice(topology.nodes_in_rack(r)) for r in racks
            )
            self.blocks.append(
                ReplicatedBlock(block_id=block_id, replica_nodes=nodes)
            )

    def replica_racks(self, block: ReplicatedBlock) -> set[int]:
        """Racks holding a copy of ``block``."""
        return {self.topology.rack_of(n) for n in block.replica_nodes}


@dataclass
class TransitionPlan:
    """Accounting for one full transition run.

    Attributes:
        stripes: number of stripes encoded.
        cross_rack_block_fetches: blocks fetched across racks.
        cross_rack_parity_sends: parity chunks shipped across racks.
        storage_reclaimed_chunks: replica chunks deleted minus parity
            chunks created (the transition's whole point).
    """

    stripes: int = 0
    cross_rack_block_fetches: int = 0
    cross_rack_parity_sends: int = 0
    storage_reclaimed_chunks: int = 0
    encoder_racks: list[int] = field(default_factory=list)

    @property
    def total_cross_rack_chunks(self) -> int:
        """Total cross-rack transition traffic, chunk units."""
        return self.cross_rack_block_fetches + self.cross_rack_parity_sends


class _TransitionBase:
    """Shared encoding loop; subclasses pick the encoder rack."""

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 1:
            raise ConfigurationError("k and m must be >= 1")
        self.k = k
        self.m = m

    def _encoder_rack(
        self, store: ReplicatedStore, group: Sequence[ReplicatedBlock]
    ) -> int:
        raise NotImplementedError

    def plan(self, store: ReplicatedStore) -> TransitionPlan:
        """Encode the store's blocks in groups of ``k``.

        Blocks are grouped in id order (the cited paper groups by file);
        a trailing group smaller than ``k`` is left replicated.
        """
        topo = store.topology
        if self.m > topo.num_racks - 1:
            raise ClusterError(
                f"m={self.m} parities cannot spread over "
                f"{topo.num_racks - 1} other racks at cap 1 each"
            )
        plan = TransitionPlan()
        blocks = store.blocks
        for start in range(0, len(blocks) - self.k + 1, self.k):
            group = blocks[start : start + self.k]
            encoder_rack = self._encoder_rack(store, group)
            local = sum(
                1
                for b in group
                if encoder_rack in store.replica_racks(b)
            )
            plan.stripes += 1
            plan.encoder_racks.append(encoder_rack)
            plan.cross_rack_block_fetches += self.k - local
            # Parities spread over other racks (rack cap: the data
            # copies kept in the encoder's rack count toward its cap).
            plan.cross_rack_parity_sends += self.m
            # Storage: k blocks shrink from `replication` copies to one
            # copy + their share of m parities.
            plan.storage_reclaimed_chunks += (
                self.k * (store.replication - 1) - self.m
            )
        return plan


class RandomTransition(_TransitionBase):
    """Baseline: encode at a uniformly random rack (placement-blind)."""

    def __init__(
        self, k: int, m: int, rng: random.Random | int | None = None
    ) -> None:
        super().__init__(k, m)
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def _encoder_rack(self, store, group):
        return self.rng.randrange(store.topology.num_racks)


class RackAwareTransition(_TransitionBase):
    """The cited paper's idea: encode where the most replicas already are.

    For each stripe, choose the rack holding replicas of the largest
    number of the group's blocks; every such block is fetched intra-rack
    for free.
    """

    def _encoder_rack(self, store, group):
        best_rack, best_local = 0, -1
        for rack in range(store.topology.num_racks):
            local = sum(
                1 for b in group if rack in store.replica_racks(b)
            )
            if local > best_local:
                best_rack, best_local = rack, local
        return best_rack
