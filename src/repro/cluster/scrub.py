"""Background scrubbing: detect and heal silent chunk corruption.

Production CFSes continuously verify stored data against its erasure
coding (GFS checksums every block; HDFS runs a block scanner).  This
module implements code-level scrubbing for the simulated cluster:

- **detection**: a stripe is consistent iff re-encoding the data chunks
  reproduces every parity chunk (systematic codes make this a direct
  check);
- **location**: with a single corrupted chunk, excluding each candidate
  in turn and re-deriving the stripe from ``k`` of the others isolates
  the culprit — the stripe is consistent without it and inconsistent
  without any other;
- **repair**: rebuild the located chunk from ``k`` healthy ones and
  overwrite it in the :class:`~repro.cluster.state.DataStore`.

Scrubbing is orthogonal to failure recovery (the paper's topic) but
shares all of its machinery, which is why it lives here: it exercises
decode paths on every chunk the way a real deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.state import ClusterState
from repro.errors import ClusterError
from repro.gf.vector import matrix_apply
from repro.obs import metrics as _metrics

__all__ = ["ScrubFinding", "ScrubReport", "Scrubber"]


@dataclass(frozen=True)
class ScrubFinding:
    """One detected-and-diagnosed corruption.

    Attributes:
        stripe_id: the inconsistent stripe.
        chunk_index: located corrupt chunk, or None if the corruption
            could not be isolated (more than one bad chunk).
        repaired: whether the chunk was rebuilt and overwritten.
    """

    stripe_id: int
    chunk_index: int | None
    repaired: bool


@dataclass
class ScrubReport:
    """Outcome of one scrubbing pass.

    Attributes:
        stripes_checked: stripes verified.
        clean_stripes: stripes found consistent.
        findings: diagnosed corruptions.
    """

    stripes_checked: int = 0
    clean_stripes: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)

    @property
    def corrupt_stripes(self) -> int:
        """Stripes with at least one corruption."""
        return len(self.findings)

    @property
    def all_repaired(self) -> bool:
        """True iff every finding was located and healed."""
        return all(f.repaired for f in self.findings)


class Scrubber:
    """Verifies and heals a cluster's stored chunks."""

    def __init__(self, state: ClusterState) -> None:
        if state.data is None:
            raise ClusterError("scrubbing requires a DataStore")
        self.state = state

    # -- checks -----------------------------------------------------------

    def stripe_is_consistent(self, stripe_id: int) -> bool:
        """Re-encode the data chunks and compare every parity chunk."""
        code = self.state.code
        data = self.state.data
        chunks = [data.chunk(stripe_id, i) for i in range(code.n)]
        return self._consistent(chunks)

    def _consistent(self, chunks: list[np.ndarray]) -> bool:
        code = self.state.code
        parity = matrix_apply(
            code.field, code.generator.data[code.k :, :], chunks[: code.k]
        )
        for got, stored in zip(parity, chunks[code.k :]):
            if not np.array_equal(got, stored):
                return False
        return True

    def locate_corruption(self, stripe_id: int) -> int | None:
        """Isolate a single corrupt chunk by exclusion.

        Returns the chunk index, or None when exclusion cannot isolate
        one chunk (i.e. multiple corruptions).
        """
        code = self.state.code
        data = self.state.data
        chunks = {i: data.chunk(stripe_id, i) for i in range(code.n)}
        culprits = []
        for candidate in range(code.n):
            rest = {i: b for i, b in chunks.items() if i != candidate}
            try:
                rebuilt_data = code.decode(rest)
            except ClusterError:  # pragma: no cover - defensive
                continue
            except Exception:
                # Non-MDS codes may not span without this chunk.
                continue
            full = code.encode_stripe(rebuilt_data)
            ok = all(
                np.array_equal(full[i], chunks[i])
                for i in range(code.n)
                if i != candidate
            )
            if ok:
                culprits.append(candidate)
        return culprits[0] if len(culprits) == 1 else None

    # -- healing -------------------------------------------------------------

    def heal_stripe(self, stripe_id: int) -> ScrubFinding:
        """Diagnose one inconsistent stripe and repair it if possible."""
        culprit = self.locate_corruption(stripe_id)
        if culprit is None:
            return ScrubFinding(
                stripe_id=stripe_id, chunk_index=None, repaired=False
            )
        code = self.state.code
        data = self.state.data
        healthy = {
            i: data.chunk(stripe_id, i)
            for i in range(code.n)
            if i != culprit
        }
        rebuilt = code.decode(healthy)
        full = code.encode_stripe(rebuilt)
        data.overwrite(stripe_id, culprit, full[culprit])
        return ScrubFinding(
            stripe_id=stripe_id, chunk_index=culprit, repaired=True
        )

    def scrub(self) -> ScrubReport:
        """One full pass over every stripe: verify, diagnose, heal.

        When a metrics registry is installed the pass is counted into
        ``scrub.stripes`` (by clean/corrupt outcome), ``scrub.findings``
        (by repaired/unrepairable), and ``scrub.passes``.
        """
        report = ScrubReport()
        for stripe in range(self.state.placement.num_stripes):
            report.stripes_checked += 1
            if self.stripe_is_consistent(stripe):
                report.clean_stripes += 1
                continue
            report.findings.append(self.heal_stripe(stripe))
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("scrub.passes").inc()
            reg.counter("scrub.stripes").inc(
                report.clean_stripes, outcome="clean"
            )
            reg.counter("scrub.stripes").inc(
                report.corrupt_stripes, outcome="corrupt"
            )
            for finding in report.findings:
                reg.counter("scrub.findings").inc(
                    outcome="repaired" if finding.repaired else "unrepairable"
                )
        return report
