"""Chunk placement policies with rack-level fault tolerance.

The paper requires (Section IV-B) that placement keep at most ``m``
chunks of any stripe inside one rack (``c_{i,j} <= m``) so that a whole
rack can fail and the stripe still has ``k`` survivors elsewhere — and,
trivially, at most one chunk of a stripe per node.

:class:`Placement` is the immutable result: a map from
``(stripe_id, chunk_index)`` to ``node_id`` plus the derived per-rack
chunk counters ``c_{i,j}`` the CAR selector consumes.  Policies:

- :class:`RandomPlacementPolicy` — the paper's methodology ("randomly
  distribute the data and parity chunks ... while ensuring single-rack
  fault tolerance").
- :class:`RoundRobinPlacementPolicy` — deterministic striping, handy for
  worked examples and tests.
- :class:`FlatPlacementPolicy` — random placement *without* the rack
  constraint, used by ablation benches to show what the constraint
  costs/buys.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Iterator, Mapping

from repro.errors import ConfigurationError, PlacementError
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ChunkKey",
    "Placement",
    "PlacementPolicy",
    "RandomPlacementPolicy",
    "RoundRobinPlacementPolicy",
    "FlatPlacementPolicy",
    "GroupAlignedPlacementPolicy",
    "RackAlignedPlacementPolicy",
]

#: Identifies one chunk: (stripe_id, chunk_index within the stripe).
ChunkKey = tuple[int, int]


class Placement:
    """An immutable assignment of stripe chunks to nodes.

    Attributes:
        topology: the cluster the chunks live in.
        k: data chunks per stripe.
        m: parity chunks per stripe.
        num_stripes: how many stripes were placed.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        k: int,
        m: int,
        assignment: Mapping[ChunkKey, int],
    ) -> None:
        self.topology = topology
        self.k = k
        self.m = m
        self._node_of = dict(assignment)
        stripe_ids = {s for s, _ in self._node_of}
        self.num_stripes = len(stripe_ids)
        if stripe_ids and stripe_ids != set(range(self.num_stripes)):
            raise PlacementError("stripe ids must be dense from 0")
        self._chunks_on_node: dict[int, list[ChunkKey]] = {}
        for key, nid in sorted(self._node_of.items()):
            self._chunks_on_node.setdefault(nid, []).append(key)
        self._validate()

    def _validate(self) -> None:
        n = self.k + self.m
        for stripe in range(self.num_stripes):
            keys = [(stripe, c) for c in range(n)]
            missing = [key for key in keys if key not in self._node_of]
            if missing:
                raise PlacementError(f"stripe {stripe} missing chunks {missing}")
            nodes = [self._node_of[key] for key in keys]
            if len(set(nodes)) != n:
                raise PlacementError(
                    f"stripe {stripe} places multiple chunks on one node"
                )

    # -- queries ----------------------------------------------------------

    def node_of(self, stripe_id: int, chunk_index: int) -> int:
        """Node storing the given chunk."""
        try:
            return self._node_of[(stripe_id, chunk_index)]
        except KeyError:
            raise PlacementError(
                f"no placement for stripe {stripe_id} chunk {chunk_index}"
            ) from None

    def rack_of_chunk(self, stripe_id: int, chunk_index: int) -> int:
        """Rack storing the given chunk."""
        return self.topology.rack_of(self.node_of(stripe_id, chunk_index))

    def chunks_on_node(self, node_id: int) -> tuple[ChunkKey, ...]:
        """All chunks stored on ``node_id`` (may span many stripes)."""
        return tuple(self._chunks_on_node.get(node_id, ()))

    def stripe_layout(self, stripe_id: int) -> dict[int, int]:
        """chunk_index -> node_id for one stripe."""
        return {
            c: self._node_of[(stripe_id, c)] for c in range(self.k + self.m)
        }

    def rack_chunk_count(self, rack_id: int, stripe_id: int) -> int:
        """The paper's ``c_{i,j}``: chunks of stripe ``j`` in rack ``i``."""
        return sum(
            1
            for c in range(self.k + self.m)
            if self.rack_of_chunk(stripe_id, c) == rack_id
        )

    def rack_counts(self, stripe_id: int) -> list[int]:
        """``c_{i,j}`` for every rack ``i`` of one stripe."""
        counts = [0] * self.topology.num_racks
        for c in range(self.k + self.m):
            counts[self.rack_of_chunk(stripe_id, c)] += 1
        return counts

    def iter_chunks(self) -> Iterator[tuple[ChunkKey, int]]:
        """Iterate ``((stripe_id, chunk_index), node_id)`` pairs."""
        return iter(sorted(self._node_of.items()))

    def max_rack_colocation(self) -> int:
        """Largest ``c_{i,j}`` over all racks and stripes."""
        return max(
            max(self.rack_counts(s)) for s in range(self.num_stripes)
        )

    def is_rack_fault_tolerant(self) -> bool:
        """True iff every stripe survives any single rack failure."""
        return self.max_rack_colocation() <= self.m

    def __repr__(self) -> str:
        return (
            f"Placement(stripes={self.num_stripes}, k={self.k}, m={self.m}, "
            f"racks={self.topology.num_racks})"
        )


class PlacementPolicy(abc.ABC):
    """Strategy object that places stripes onto a topology."""

    @abc.abstractmethod
    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        """Place ``num_stripes`` stripes of a ``(k, m)`` code."""

    @staticmethod
    def _check_fits(topology: ClusterTopology, k: int, m: int) -> None:
        if k + m > topology.num_nodes:
            raise PlacementError(
                f"stripe width k+m={k + m} exceeds {topology.num_nodes} nodes"
            )


class RandomPlacementPolicy(PlacementPolicy):
    """Uniform random placement under the rack fault-tolerance constraint.

    Args:
        rng: source of randomness (seed it for reproducible layouts).
        rack_tolerance: how many simultaneous rack failures placement
            must survive; the per-rack cap is ``floor(m / rack_tolerance)``.
            The paper's setting is 1 (cap ``m``).
        max_attempts: rejection-sampling retries per stripe before
            falling back to a constructive assignment.
    """

    def __init__(
        self,
        rng: random.Random | int | None = None,
        rack_tolerance: int = 1,
        max_attempts: int = 200,
    ) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()
        if rack_tolerance < 1:
            raise ConfigurationError("rack_tolerance must be >= 1")
        self.rack_tolerance = rack_tolerance
        self.max_attempts = max_attempts

    def _per_rack_cap(self, m: int) -> int:
        cap = m // self.rack_tolerance
        if cap < 1:
            raise PlacementError(
                f"cannot tolerate {self.rack_tolerance} rack failures with m={m}"
            )
        return cap

    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        self._check_fits(topology, k, m)
        cap = self._per_rack_cap(m)
        n = k + m
        min_racks_needed = -(-n // cap)  # ceil
        if min_racks_needed > topology.num_racks:
            raise PlacementError(
                f"k+m={n} with per-rack cap {cap} needs at least "
                f"{min_racks_needed} racks, topology has {topology.num_racks}"
            )
        assignment: dict[ChunkKey, int] = {}
        node_ids = [node.node_id for node in topology.nodes]
        for stripe in range(num_stripes):
            chosen = self._place_one_stripe(topology, node_ids, n, cap)
            for chunk_index, nid in enumerate(chosen):
                assignment[(stripe, chunk_index)] = nid
        return Placement(topology, k, m, assignment)

    def _place_one_stripe(
        self,
        topology: ClusterTopology,
        node_ids: list[int],
        n: int,
        cap: int,
    ) -> list[int]:
        for _ in range(self.max_attempts):
            sample = self.rng.sample(node_ids, n)
            per_rack: dict[int, int] = {}
            ok = True
            for nid in sample:
                rid = topology.rack_of(nid)
                per_rack[rid] = per_rack.get(rid, 0) + 1
                if per_rack[rid] > cap:
                    ok = False
                    break
            if ok:
                return sample
        # Constructive fallback: shuffle racks, take up to `cap` random
        # nodes from each until n chunks are placed.  Always succeeds
        # given the feasibility check in place().
        racks = list(topology.racks)
        self.rng.shuffle(racks)
        chosen: list[int] = []
        for rack in racks:
            take = min(cap, rack.size, n - len(chosen))
            chosen.extend(self.rng.sample(list(rack.node_ids), take))
            if len(chosen) == n:
                self.rng.shuffle(chosen)
                return chosen
        raise PlacementError(
            f"unable to place a stripe of width {n} with per-rack cap {cap}"
        )


class RoundRobinPlacementPolicy(PlacementPolicy):
    """Deterministic placement: chunk ``c`` of stripe ``s`` goes on node
    ``(s * (k + m) + c) mod num_nodes``, skipping nodes whose rack is full.

    Deterministic and rack-fault-tolerant; used by worked examples and
    tests that need a stable layout.
    """

    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        self._check_fits(topology, k, m)
        n = k + m
        num_nodes = topology.num_nodes
        assignment: dict[ChunkKey, int] = {}
        cursor = 0
        for stripe in range(num_stripes):
            used_nodes: set[int] = set()
            per_rack: dict[int, int] = {}
            placed = 0
            scanned = 0
            while placed < n:
                if scanned > 2 * num_nodes:
                    raise PlacementError(
                        f"round-robin cannot place stripe {stripe} "
                        f"(k+m={n}, cap m={m})"
                    )
                nid = cursor % num_nodes
                cursor += 1
                scanned += 1
                rid = topology.rack_of(nid)
                if nid in used_nodes or per_rack.get(rid, 0) >= m:
                    continue
                assignment[(stripe, placed)] = nid
                used_nodes.add(nid)
                per_rack[rid] = per_rack.get(rid, 0) + 1
                placed += 1
        return Placement(topology, k, m, assignment)


class FlatPlacementPolicy(PlacementPolicy):
    """Random placement with *no* rack constraint (ablation baseline).

    Still one chunk per node per stripe; a stripe may concentrate more
    than ``m`` chunks in one rack, sacrificing rack fault tolerance.
    """

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        self._check_fits(topology, k, m)
        n = k + m
        node_ids = [node.node_id for node in topology.nodes]
        assignment: dict[ChunkKey, int] = {}
        for stripe in range(num_stripes):
            for chunk_index, nid in enumerate(self.rng.sample(node_ids, n)):
                assignment[(stripe, chunk_index)] = nid
        return Placement(topology, k, m, assignment)


class RackAlignedPlacementPolicy(PlacementPolicy):
    """Rack-aligned placement for rack-aware regenerating codes.

    The chunk -> rack map is *identical for every stripe*: chunks are
    dealt round-robin over the racks (skipping racks whose per-stripe
    capacity ``min(rack size, m)`` is exhausted), so chunk ``c`` always
    lives in the same rack.  This is the geometry the striped rack-aware
    MSR construction assumes — each rack plays the role of one code
    node, and co-located chunks of a stripe are that node's ``alpha``
    packets — and it lets a repair strategy pick helper *racks* knowing
    exactly which chunk indices they hold.

    Node choice inside each rack is randomised per stripe, so failures
    still hit varied chunk positions across the stripe population.

    The round-robin deal never puts more than ``m`` chunks of a stripe
    in one rack, preserving single-rack fault tolerance whenever the
    capacity check passes.

    Args:
        rng: source of randomness for the per-stripe node choice.
    """

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()

    def chunk_rack_map(
        self, topology: ClusterTopology, k: int, m: int
    ) -> tuple[int, ...]:
        """The shared chunk -> rack assignment for a ``(k, m)`` stripe."""
        n = k + m
        racks = sorted(topology.racks, key=lambda r: r.rack_id)
        cap = {r.rack_id: min(r.size, m) for r in racks}
        if sum(cap.values()) < n:
            raise PlacementError(
                f"racks hold at most {sum(cap.values())} chunks per stripe "
                f"(cap m={m}), need {n}"
            )
        fill = {r.rack_id: 0 for r in racks}
        order = [r.rack_id for r in racks]
        out: list[int] = []
        cursor = 0
        while len(out) < n:
            rid = order[cursor % len(order)]
            cursor += 1
            if fill[rid] < cap[rid]:
                out.append(rid)
                fill[rid] += 1
        return tuple(out)

    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        self._check_fits(topology, k, m)
        rack_map = self.chunk_rack_map(topology, k, m)
        per_rack_chunks: dict[int, list[int]] = {}
        for c, rid in enumerate(rack_map):
            per_rack_chunks.setdefault(rid, []).append(c)
        rack_by_id = {r.rack_id: r for r in topology.racks}
        assignment: dict[ChunkKey, int] = {}
        for stripe in range(num_stripes):
            for rid, chunks in per_rack_chunks.items():
                nodes = self.rng.sample(
                    list(rack_by_id[rid].node_ids), len(chunks)
                )
                for c, nid in zip(chunks, nodes):
                    assignment[(stripe, c)] = nid
        return Placement(topology, k, m, assignment)


class GroupAlignedPlacementPolicy(PlacementPolicy):
    """Locality-aligned placement for codes with repair groups (LRC).

    Every *group* of chunk indices (e.g. an LRC local group plus its
    local parity) is placed entirely inside one rack, so a single
    failure inside the group is repaired with **zero** cross-rack
    traffic.  Chunks outside any group (e.g. global parities) are
    scattered over the remaining racks, at most one per rack where
    possible.

    The trade-off is deliberate and measurable: concentrating a group
    in one rack can sacrifice rack-level fault tolerance (losing that
    rack may erase more chunks than the code can rebuild) — the
    LRC-vs-CAR ablation bench quantifies both sides.

    Args:
        groups: disjoint chunk-index groups to co-locate; indices are
            stripe-local (``0 .. k+m-1``).
        rng: randomness for rack and node choice.
    """

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        rng: random.Random | int | None = None,
    ) -> None:
        if isinstance(rng, int):
            rng = random.Random(rng)
        self.rng = rng or random.Random()
        self.groups = [tuple(g) for g in groups]
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("placement groups must be non-empty")
            for c in group:
                if c in seen:
                    raise ConfigurationError(
                        f"chunk {c} appears in more than one group"
                    )
                seen.add(c)

    def place(
        self, topology: ClusterTopology, num_stripes: int, k: int, m: int
    ) -> Placement:
        self._check_fits(topology, k, m)
        n = k + m
        grouped = {c for g in self.groups for c in g}
        if grouped - set(range(n)):
            raise PlacementError(
                f"groups reference chunks outside 0..{n - 1}"
            )
        loose = [c for c in range(n) if c not in grouped]
        if max((len(g) for g in self.groups), default=0) > max(
            r.size for r in topology.racks
        ):
            raise PlacementError(
                "a group is larger than the largest rack"
            )
        assignment: dict[ChunkKey, int] = {}
        for stripe in range(num_stripes):
            for chunk, node in self._place_stripe(topology, n).items():
                assignment[(stripe, chunk)] = node
        return Placement(topology, k, m, assignment)

    def _place_stripe(
        self, topology: ClusterTopology, n: int
    ) -> dict[int, int]:
        used_nodes: set[int] = set()
        chunk_to_node: dict[int, int] = {}
        racks = list(topology.racks)
        self.rng.shuffle(racks)
        # Groups first, each into its own rack, largest group first so
        # big groups get big racks.
        rack_pool = sorted(racks, key=lambda r: -r.size)
        group_racks: set[int] = set()
        for group in sorted(self.groups, key=len, reverse=True):
            rack = next(
                (
                    r
                    for r in rack_pool
                    if r.rack_id not in group_racks and r.size >= len(group)
                ),
                None,
            )
            if rack is None:
                raise PlacementError(
                    f"no free rack can hold a group of {len(group)} chunks"
                )
            group_racks.add(rack.rack_id)
            nodes = self.rng.sample(list(rack.node_ids), len(group))
            for chunk, node in zip(group, nodes):
                chunk_to_node[chunk] = node
                used_nodes.add(node)
        # Loose chunks (global parities): prefer racks not used by any
        # group, then any node not already used.
        loose = [c for c in range(n) if c not in chunk_to_node]
        preferred = [
            nid
            for r in racks
            if r.rack_id not in group_racks
            for nid in r.node_ids
        ]
        fallback = [
            node.node_id
            for node in topology.nodes
            if node.node_id not in used_nodes
        ]
        candidates = [nid for nid in preferred if nid not in used_nodes]
        self.rng.shuffle(candidates)
        for chunk in loose:
            if not candidates:
                candidates = [
                    nid for nid in fallback if nid not in used_nodes
                ]
                self.rng.shuffle(candidates)
            if not candidates:
                raise PlacementError("not enough nodes for loose chunks")
            node = candidates.pop()
            chunk_to_node[chunk] = node
            used_nodes.add(node)
        return chunk_to_node
