"""CFS topology model: nodes grouped into racks with bandwidth diversity.

Mirrors the architecture of Figure 1 of the paper: every node connects
to its rack's top-of-rack (ToR) switch; ToR switches connect to a
network core.  The defining property is *bandwidth diversity*: the
intra-rack path (node -> ToR -> node) is fast, while each rack's uplink
into the core is over-subscribed and therefore scarce.

:class:`BandwidthProfile` captures the link speeds; the
:class:`ClusterTopology` is a static, immutable description that the
placement, recovery, and simulation layers all share.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, UnknownNodeError

__all__ = ["BandwidthProfile", "Node", "Rack", "ClusterTopology"]


@dataclass(frozen=True)
class BandwidthProfile:
    """Link capacities of the CFS fabric, in gigabits per second.

    Attributes:
        node_nic_gbps: capacity of each node's NIC (paper testbed: 1 GbE).
        rack_uplink_gbps: capacity of one rack's uplink into the core.
            Over-subscription is expressed here: with ``n`` nodes per
            rack and uplink == NIC speed, the rack is ``n:1``
            over-subscribed, which matches a single-switch-port uplink
            like the paper's TP-LINK setup.
        core_gbps: aggregate switching capacity of the network core;
            ``float('inf')`` models a non-blocking core.
        per_rack_uplink_gbps: optional per-rack uplink overrides (mixed
            switch generations); entry ``i`` replaces
            ``rack_uplink_gbps`` for rack ``i``.  Must match the rack
            count of the topology it is used with.
    """

    node_nic_gbps: float = 1.0
    rack_uplink_gbps: float = 1.0
    core_gbps: float = float("inf")
    per_rack_uplink_gbps: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        for name in ("node_nic_gbps", "rack_uplink_gbps", "core_gbps"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.per_rack_uplink_gbps is not None:
            if isinstance(self.per_rack_uplink_gbps, list):
                object.__setattr__(
                    self,
                    "per_rack_uplink_gbps",
                    tuple(self.per_rack_uplink_gbps),
                )
            if any(v <= 0 for v in self.per_rack_uplink_gbps):
                raise ConfigurationError(
                    "per_rack_uplink_gbps entries must be positive"
                )

    def uplink_for(self, rack_id: int) -> float:
        """The uplink capacity of one rack (override or default)."""
        if (
            self.per_rack_uplink_gbps is not None
            and rack_id < len(self.per_rack_uplink_gbps)
        ):
            return self.per_rack_uplink_gbps[rack_id]
        return self.rack_uplink_gbps

    @property
    def oversubscription(self) -> float:
        """NIC-to-uplink speed ratio (per node sharing the uplink)."""
        return self.node_nic_gbps / self.rack_uplink_gbps


@dataclass(frozen=True)
class Node:
    """A storage node.

    Attributes:
        node_id: globally unique id, dense from 0.
        rack_id: id of the rack the node lives in.
        index_in_rack: position within the rack (0-based).
    """

    node_id: int
    rack_id: int
    index_in_rack: int

    @property
    def name(self) -> str:
        """Human-readable label, e.g. ``"A1.n0"`` (racks are 1-based A_i)."""
        return f"A{self.rack_id + 1}.n{self.index_in_rack}"


@dataclass(frozen=True)
class Rack:
    """A rack: an ordered collection of nodes behind one ToR switch."""

    rack_id: int
    node_ids: tuple[int, ...] = field(default_factory=tuple)

    @property
    def name(self) -> str:
        """Paper-style label ``A1, A2, ...``."""
        return f"A{self.rack_id + 1}"

    @property
    def size(self) -> int:
        """Number of nodes in the rack."""
        return len(self.node_ids)


class ClusterTopology:
    """Immutable description of a CFS: racks, nodes, and link speeds.

    Build one with :meth:`from_rack_sizes`, e.g. the paper's CFS1 is
    ``ClusterTopology.from_rack_sizes([4, 3, 3])``.
    """

    def __init__(
        self,
        racks: Sequence[Rack],
        nodes: Sequence[Node],
        bandwidth: BandwidthProfile | None = None,
    ) -> None:
        if not racks:
            raise ConfigurationError("a topology needs at least one rack")
        self._racks = tuple(racks)
        self._nodes = tuple(nodes)
        self.bandwidth = bandwidth or BandwidthProfile()
        self._rack_of = {n.node_id: n.rack_id for n in nodes}
        if len(self._rack_of) != len(nodes):
            raise ConfigurationError("duplicate node ids in topology")
        for rack in racks:
            for nid in rack.node_ids:
                if self._rack_of.get(nid) != rack.rack_id:
                    raise ConfigurationError(
                        f"node {nid} rack assignment is inconsistent"
                    )

    @classmethod
    def from_rack_sizes(
        cls,
        rack_sizes: Iterable[int],
        bandwidth: BandwidthProfile | None = None,
    ) -> "ClusterTopology":
        """Build a topology with the given number of nodes per rack."""
        sizes = list(rack_sizes)
        if not sizes or any(s < 1 for s in sizes):
            raise ConfigurationError(
                f"rack sizes must be positive, got {sizes}"
            )
        nodes: list[Node] = []
        racks: list[Rack] = []
        next_id = 0
        for rack_id, size in enumerate(sizes):
            ids = []
            for idx in range(size):
                nodes.append(
                    Node(node_id=next_id, rack_id=rack_id, index_in_rack=idx)
                )
                ids.append(next_id)
                next_id += 1
            racks.append(Rack(rack_id=rack_id, node_ids=tuple(ids)))
        return cls(racks=racks, nodes=nodes, bandwidth=bandwidth)

    # -- queries ----------------------------------------------------------

    @property
    def racks(self) -> tuple[Rack, ...]:
        """All racks, ordered by id."""
        return self._racks

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes, ordered by id."""
        return self._nodes

    @property
    def num_racks(self) -> int:
        """Number of racks (the paper's ``r``)."""
        return len(self._racks)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self._nodes)

    def rack_of(self, node_id: int) -> int:
        """Rack id of ``node_id``.

        Raises:
            UnknownNodeError: if the node does not exist.
        """
        try:
            return self._rack_of[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def node(self, node_id: int) -> Node:
        """The :class:`Node` with the given id."""
        if not 0 <= node_id < len(self._nodes):
            raise UnknownNodeError(node_id)
        return self._nodes[node_id]

    def rack(self, rack_id: int) -> Rack:
        """The :class:`Rack` with the given id."""
        if not 0 <= rack_id < len(self._racks):
            raise UnknownNodeError(rack_id)
        return self._racks[rack_id]

    def nodes_in_rack(self, rack_id: int) -> tuple[int, ...]:
        """Node ids in rack ``rack_id``."""
        return self.rack(rack_id).node_ids

    def peers_in_rack(self, node_id: int) -> tuple[int, ...]:
        """Other node ids sharing ``node_id``'s rack."""
        rid = self.rack_of(node_id)
        return tuple(n for n in self.nodes_in_rack(rid) if n != node_id)

    def rack_sizes(self) -> tuple[int, ...]:
        """Per-rack node counts, ordered by rack id."""
        return tuple(r.size for r in self._racks)

    def with_extra_node(self, rack_id: int) -> "ClusterTopology":
        """A copy of this topology with one new node appended to a rack.

        The new node receives the next dense id (``num_nodes``), so all
        existing node ids — and any placement keyed on them — remain
        valid in the new topology.
        """
        target = self.rack(rack_id)
        new_node = Node(
            node_id=self.num_nodes,
            rack_id=rack_id,
            index_in_rack=target.size,
        )
        racks = [
            Rack(
                rack_id=r.rack_id,
                node_ids=r.node_ids + ((new_node.node_id,) if r.rack_id == rack_id else ()),
            )
            for r in self._racks
        ]
        return ClusterTopology(
            racks=racks,
            nodes=list(self._nodes) + [new_node],
            bandwidth=self.bandwidth,
        )

    def __repr__(self) -> str:
        return (
            f"ClusterTopology(racks={self.rack_sizes()}, "
            f"nodes={self.num_nodes})"
        )
